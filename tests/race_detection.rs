//! The race-detection corpus: four seeded racy mini-programs, each the
//! smallest version of a bug class the vector-clock oracle must catch,
//! paired with a race-free twin that differs only by the missing
//! synchronisation. Every racy program must be flagged under both DFS
//! and PCT exploration with a report naming both conflicting access
//! sites; every twin must stay silent (zero false positives). A failing
//! schedule's trace must replay byte-for-byte and reproduce the same
//! race — the reproduction contract of `aomp-check`'s other oracles,
//! extended to races.
//!
//! The final tests guard the cost contract: with no checker armed, a
//! tracked accessor pays one relaxed gate load and nothing else.

use aomp_check as check;
use aomplib::prelude::*;
use aomplib::runtime::cell::SyncSlice;
use aomplib::runtime::check::Tracked;
use aomplib::runtime::deps::{Dep, DepGroup};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The corpus. Racy programs and their twins are free functions so the
// DFS and PCT tests drive the identical code.
// ---------------------------------------------------------------------------

/// BUG: two phases on a shared array with no barrier between them. Each
/// member writes its own half, then reads the *other* half; without the
/// barrier the cross-half read races the owner's writes on every
/// schedule.
fn racy_missing_barrier() {
    let mut data = vec![0usize; 4];
    let arr = SyncSlice::tracked(&mut data, "racy.phased");
    region::parallel_with(RegionConfig::new().threads(2), || {
        let me = thread_id();
        unsafe {
            arr.set(2 * me, me + 1);
            arr.set(2 * me + 1, me + 10);
        }
        // BUG: no `barrier()` here.
        let other = 1 - me;
        let _ = unsafe { arr.read(2 * other) + arr.read(2 * other + 1) };
    });
}

/// Twin: the same two phases separated by the barrier.
fn twin_barrier_separated() {
    let mut data = vec![0usize; 4];
    let arr = SyncSlice::tracked(&mut data, "ok.phased");
    region::parallel_with(RegionConfig::new().threads(2), || {
        let me = thread_id();
        // SAFETY: indices 2·me.. are owned by this member in this phase.
        unsafe {
            arr.set(2 * me, me + 1);
            arr.set(2 * me + 1, me + 10);
        }
        barrier();
        let other = 1 - me;
        // SAFETY: the barrier ordered the other member's writes.
        let _ = unsafe { arr.read(2 * other) + arr.read(2 * other + 1) };
    });
}

/// BUG: a dynamic loop whose body writes `x[i]` *and* `x[i+1]` under
/// `chunk = 1` — neighbouring chunks overlap by one element, and chunk
/// handouts carry no happens-before edge. Any schedule that hands
/// adjacent chunks to different members races on the shared boundary.
fn racy_overlapping_chunks() {
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let mut data = vec![0usize; 5];
    let arr = SyncSlice::tracked(&mut data, "racy.chunks");
    region::parallel_with(RegionConfig::new().threads(2), || {
        for_c.execute(LoopRange::upto(0, 4), |lo, _hi, _step| {
            let i = lo as usize;
            // BUG: writes past the chunk's own element.
            unsafe {
                arr.set(i, 1);
                arr.set(i + 1, 2);
            }
        });
    });
}

/// Twin: the body touches only the chunk's own elements.
fn twin_disjoint_chunks() {
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let mut data = vec![0usize; 5];
    let arr = SyncSlice::tracked(&mut data, "ok.chunks");
    region::parallel_with(RegionConfig::new().threads(2), || {
        for_c.execute(LoopRange::upto(0, 4), |lo, hi, _step| {
            let mut i = lo as usize;
            // SAFETY: the schedule owns [lo, hi) on this member.
            while i < hi as usize {
                unsafe { arr.set(i, 1) };
                i += 1;
            }
        });
    });
}

/// BUG: a shared scalar flag written by member 0 and read by member 1
/// with no synchronisation at all (no spin — under the serialised
/// checker the read simply sees whatever is there; the *race* is the
/// point, not the value).
fn racy_unsynchronised_flag() {
    let flag = Tracked::new("racy.flag", 0u32);
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            unsafe { flag.set(1) };
        } else {
            let _ = unsafe { flag.read() };
        }
    });
}

/// Twin: the flag handoff ordered by a barrier.
fn twin_flag_over_barrier() {
    let flag = Tracked::new("ok.flag", 0u32);
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            // SAFETY: sole accessor before the barrier.
            unsafe { flag.set(1) };
        }
        barrier();
        if thread_id() == 1 {
            // SAFETY: the barrier ordered the write.
            assert_eq!(unsafe { flag.read() }, 1);
        }
    });
}

/// BUG: a critical section protecting only the writer. The reader skips
/// the lock, so no release→acquire edge orders the pair — the classic
/// "half-locked" bug.
fn racy_critical_writer_only() {
    let h = CriticalHandle::new();
    let cell = Tracked::new("racy.cell", 0u64);
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            h.run(|| unsafe { cell.set(42) });
        } else {
            // BUG: read outside the critical section.
            let _ = unsafe { cell.read() };
        }
    });
}

/// Twin: reader and writer both inside the critical section.
fn twin_critical_both_sides() {
    let h = CriticalHandle::new();
    let cell = Tracked::new("ok.cell", 0u64);
    region::parallel_with(RegionConfig::new().threads(2), || {
        if thread_id() == 0 {
            // SAFETY: exclusive inside the critical section.
            h.run(|| unsafe { cell.set(42) });
        } else {
            // SAFETY: exclusive inside the critical section; either order
            // of the two sections is race-free (the value may be 0 or 42,
            // which is nondeterminism, not a race).
            h.run(|| {
                let _ = unsafe { cell.read() };
            });
        }
    });
}

/// BUG: a producer and a consumer task in one dependence group with no
/// `depend` clauses. Group membership alone orders nothing between
/// siblings — the tracker's dependence edges are per node, not a
/// conservative whole-group join — so any schedule that hands the two
/// tasks to different members races on the cell.
fn racy_missing_depend() {
    let cell = Arc::new(Tracked::new("racy.depend", 0u64));
    let group = DepGroup::new();
    let (w, rd) = (Arc::clone(&cell), Arc::clone(&cell));
    region::parallel_with(RegionConfig::new().threads(2), move || {
        if thread_id() == 0 {
            let w = Arc::clone(&w);
            let rd = Arc::clone(&rd);
            // BUG: neither task names the handoff tag.
            group.spawn([], move || unsafe { w.set(7) });
            group.spawn([], move || {
                let _ = unsafe { rd.read() };
            });
            group.close();
        }
        group.run().expect("no cycles");
    });
}

/// Twin: the same pair, differing only by the `depend` clauses — the
/// producer's `out` and the consumer's `in` on one tag give the tracker
/// a release→acquire edge whichever members run them.
fn twin_depend_ordered() {
    let cell = Arc::new(Tracked::new("ok.depend", 0u64));
    let group = DepGroup::new();
    let (w, rd) = (Arc::clone(&cell), Arc::clone(&cell));
    region::parallel_with(RegionConfig::new().threads(2), move || {
        if thread_id() == 0 {
            let w = Arc::clone(&w);
            let rd = Arc::clone(&rd);
            // SAFETY: the in-tag orders the read after the writer task.
            group.spawn([Dep::output("handoff")], move || unsafe { w.set(7) });
            group.spawn([Dep::input("handoff")], move || {
                assert_eq!(unsafe { rd.read() }, 7);
            });
            group.close();
        }
        group.run().expect("no cycles");
    });
}

type Program = fn();

const RACY: [(&str, Program, &str); 5] = [
    ("missing barrier", racy_missing_barrier, "racy.phased"),
    ("overlapping chunks", racy_overlapping_chunks, "racy.chunks"),
    ("unsynchronised flag", racy_unsynchronised_flag, "racy.flag"),
    (
        "critical writer only",
        racy_critical_writer_only,
        "racy.cell",
    ),
    ("missing depend", racy_missing_depend, "racy.depend"),
];

const TWINS: [(&str, Program); 5] = [
    ("barrier separated", twin_barrier_separated),
    ("disjoint chunks", twin_disjoint_chunks),
    ("flag over barrier", twin_flag_over_barrier),
    ("critical both sides", twin_critical_both_sides),
    ("depend ordered", twin_depend_ordered),
];

/// At least one explored schedule reported a race; the failure names the
/// race, both access kinds, and the tracked site.
fn assert_race_found(what: &str, report: &check::Report, site: &str) {
    let hit = report
        .runs
        .iter()
        .find(|r| r.race.is_some())
        .unwrap_or_else(|| {
            panic!(
                "{what}: no race found across {} explored schedules",
                report.schedules()
            )
        });
    let msg = hit
        .failure
        .as_deref()
        .expect("a race must fail its schedule");
    assert!(msg.contains("data race"), "{what}: {msg}");
    assert!(
        msg.contains(site),
        "{what}: report must name the tracked site `{site}`: {msg}"
    );
    let race = hit.race.as_ref().expect("found above");
    // The report names *both* conflicting accesses, at least one a write.
    assert!(
        race.prior.is_write || race.current.is_write,
        "{what}: a race needs at least one write: {race}"
    );
    assert_eq!(race.prior.name, race.current.name, "{what}: same site");
}

// ---------------------------------------------------------------------------
// Detection: every racy program flagged under both strategies.
// ---------------------------------------------------------------------------

#[test]
fn dfs_flags_every_racy_program() {
    for (what, f, site) in RACY {
        let report = check::Explorer::new().races(true).dfs(2_000, 64, f);
        assert_race_found(what, &report, site);
    }
}

#[test]
fn pct_flags_every_racy_program() {
    for (i, (what, f, site)) in RACY.into_iter().enumerate() {
        let seed = 0xbad_ace ^ (i as u64) << 8;
        let report = check::Explorer::new()
            .races(true)
            .pct(check::seeds_from_env(12), seed, 3, f);
        assert_race_found(what, &report, site);
    }
}

// ---------------------------------------------------------------------------
// Soundness: zero false positives on the race-free twins.
// ---------------------------------------------------------------------------

#[test]
fn dfs_race_free_twins_stay_silent() {
    for (what, f) in TWINS {
        let report = check::Explorer::new().races(true).dfs(2_000, 64, f);
        assert!(report.schedules() > 1, "{what}: exploration too shallow");
        report.assert_ok();
    }
}

#[test]
fn pct_race_free_twins_stay_silent() {
    for (i, (_what, f)) in TWINS.into_iter().enumerate() {
        let seed = 0x5afe ^ (i as u64) << 8;
        check::Explorer::new()
            .races(true)
            .pct(check::seeds_from_env(12), seed, 3, f)
            .assert_ok();
    }
}

// ---------------------------------------------------------------------------
// Reproduction: a race report's trace replays byte-for-byte and finds
// the same conflicting pair.
// ---------------------------------------------------------------------------

#[test]
fn race_report_replays_byte_for_byte() {
    let explorer = check::Explorer::new().races(true);
    for (what, f, _site) in RACY {
        let report = explorer.random(check::seeds_from_env(8), 0x2ace_5eed, f);
        let failing = report
            .runs
            .iter()
            .find(|r| r.race.is_some())
            .unwrap_or_else(|| panic!("{what}: no racy schedule to replay"));
        let replayed = explorer.replay(&failing.trace, f);
        assert_eq!(
            replayed.trace.digest(),
            failing.trace.digest(),
            "{what}: replay must reproduce the schedule byte-for-byte"
        );
        let (a, b) = (
            failing.race.as_ref().expect("found above"),
            replayed
                .race
                .as_ref()
                .expect("replay must re-find the race"),
        );
        // Same logical pair: site, index, thread, kind, event position.
        // (The raw `addr` differs run to run — each run allocates afresh.)
        assert_eq!(
            (a.prior.to_string(), a.current.to_string()),
            (b.prior.to_string(), b.current.to_string()),
            "{what}: replayed race must name the same access pair"
        );
    }
}

// ---------------------------------------------------------------------------
// Cost contract: when no checker is armed, the gate is cold.
// ---------------------------------------------------------------------------

#[test]
fn unarmed_tracked_accessors_are_plain_memory_operations() {
    // No exploration in this test, so nothing arms the process-global
    // sink: `armed()` (the one relaxed load every tracked access gates
    // on) must read false before, throughout, and after.
    assert!(!aomplib::runtime::check::armed());
    let mut data = vec![0u64; 64];
    let arr = SyncSlice::tracked(&mut data, "gate.probe");
    let cell = Tracked::new("gate.cell", 0u64);
    for i in 0..64 {
        // SAFETY: single-threaded test body.
        unsafe {
            arr.set(i, i as u64);
            assert_eq!(arr.read(i), i as u64);
            cell.set(i as u64);
            assert_eq!(cell.read(), i as u64);
        }
    }
    assert!(!aomplib::runtime::check::armed());
    assert_eq!(cell.into_inner(), 63);
}

#[test]
fn unarmed_gate_overhead_is_negligible() {
    // Wall-clock-sensitive; the CI schedule-check job (saturated runners)
    // sets AOMP_CHECK_NO_WALLCLOCK and skips it — the race-check leg runs
    // it with the variable cleared.
    let disabled = std::env::var_os("AOMP_CHECK_NO_WALLCLOCK").is_some_and(|v| v != "0");
    if disabled {
        eprintln!("unarmed_gate_overhead_is_negligible: skipped (AOMP_CHECK_NO_WALLCLOCK)");
        return;
    }
    assert!(!aomplib::runtime::check::armed());
    const N: usize = 400_000;
    let mut a = vec![1u64; 256];
    let mut b = vec![1u64; 256];
    let time = |slice: &SyncSlice<'_, u64>| {
        let t0 = Instant::now();
        let mut sum = 0u64;
        for i in 0..N {
            // SAFETY: single-threaded test body.
            sum = sum.wrapping_add(unsafe { slice.read(i & 255) });
        }
        black_box(sum);
        t0.elapsed()
    };
    let plain = SyncSlice::new(&mut a);
    let tracked = SyncSlice::tracked(&mut b, "gate.bench");
    // Warm both paths once, then measure.
    let (_, _) = (time(&plain), time(&tracked));
    let base = time(&plain);
    let gated = time(&tracked);
    // The tracked-but-unarmed path adds one relaxed load + a never-taken
    // branch per access; 10x plus scheduling slop is far beyond anything
    // that single load can legitimately cost.
    assert!(
        gated <= base * 10 + Duration::from_millis(20),
        "unarmed tracked access is too slow: tracked {gated:?} vs untracked {base:?}"
    );
}
