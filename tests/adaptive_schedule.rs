//! Exploration suite for `Schedule::Adaptive` — the self-refining
//! dispenser is the only schedule whose handout stream depends on
//! *observed latency*, so its checker story needs its own proofs:
//!
//! 1. Under an armed hook the dispenser stops sampling wall-clock
//!    (every thread stays cold), so the handout stream is a pure
//!    function of the explored interleaving — DFS enumeration stays
//!    duplicate-free and a replayed seed reproduces the stream
//!    byte-for-byte.
//! 2. Every explored interleaving still partitions the iteration space
//!    exactly once (including the steal path), keeps the race oracle
//!    silent on a tracked array written through disjoint chunks, and
//!    agrees with sequential semantics.
//! 3. The locality model the dispenser steals by matches the simcore
//!    Xeon's socket geometry, so simulated NUMA claims and runtime
//!    behaviour use the same topology.

use aomp_check as check;
use aomplib::prelude::*;
use aomplib::runtime::cell::SyncSlice;
use aomplib::runtime::schedule;
use aomplib::simcore::Machine;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn dfs_adaptive_handouts_partition_exactly_once() {
    let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 2 });
    let report = check::Explorer::new().races(true).dfs(20_000, 64, || {
        let seen: Vec<AtomicU32> = (0..17).map(|_| AtomicU32::new(0)).collect();
        region::parallel_with(RegionConfig::new().threads(2), || {
            for_c.execute(LoopRange::upto(0, 17), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    seen[i as usize].fetch_add(1, Ordering::SeqCst);
                    i += step;
                }
            });
        });
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::SeqCst),
                1,
                "iteration {i} must run exactly once in every interleaving"
            );
        }
    });
    report.assert_ok();
    assert!(
        report.schedules() > 1,
        "the dispenser must actually branch, got {}",
        report.schedules()
    );
    assert_eq!(
        report.distinct_schedules(),
        report.schedules(),
        "DFS enumerated a duplicate interleaving — the adaptive dispenser \
         leaked wall-clock into the explored state"
    );
}

#[test]
fn adaptive_exploration_replays_byte_for_byte() {
    // The body records the handout stream (owner, lo, hi) in arrival
    // order — the most schedule-sensitive observable the dispenser has.
    // Replaying a seed must reproduce both the trace digest and the
    // stream itself; across seeds the stream must actually vary, or
    // this proves nothing.
    let run_once = |seed: u64| -> (String, u64) {
        let log = Mutex::new(String::new());
        let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 2 });
        let run = check::Explorer::new().races(true).replay_random(seed, || {
            let handouts: Mutex<Vec<(usize, i64, i64)>> = Mutex::new(Vec::new());
            region::parallel_with(RegionConfig::new().threads(2), || {
                for_c.execute(LoopRange::upto(0, 23), |lo, hi, _step| {
                    handouts.lock().unwrap().push((thread_id(), lo, hi));
                });
            });
            *log.lock().unwrap() = format!("{:?}", handouts.lock().unwrap());
        });
        assert!(run.failure.is_none(), "{:?}", run.failure);
        (log.into_inner().unwrap(), run.trace.digest())
    };
    let mut streams = HashSet::new();
    for seed in 0..10u64 {
        let (a, da) = run_once(seed);
        let (b, db) = run_once(seed);
        assert_eq!(da, db, "seed {seed} did not replay the same schedule");
        assert_eq!(a, b, "seed {seed} gave two different handout streams");
        streams.insert(a);
    }
    assert!(
        streams.len() >= 2,
        "the handout stream must vary across seeds (got {} distinct); \
         otherwise replay determinism is vacuous",
        streams.len()
    );
}

#[test]
fn random_adaptive_chunks_keep_the_race_oracle_silent() {
    // A tracked shared array written strictly through the handed-out
    // chunks: disjoint by the partition invariant, so the vector-clock
    // oracle must stay silent on every explored interleaving — steals
    // included (min_chunk 1 maximises refinement and steal traffic).
    let for_c = ForConstruct::new(Schedule::Adaptive { min_chunk: 1 });
    let report =
        check::Explorer::new()
            .races(true)
            .random(check::seeds_from_env(32), 0xADA9, || {
                let mut data = vec![0usize; 11];
                {
                    let arr = SyncSlice::tracked(&mut data, "adaptive.disjoint");
                    region::parallel_with(RegionConfig::new().threads(2), || {
                        for_c.execute(LoopRange::upto(0, 11), |lo, hi, step| {
                            let mut i = lo;
                            while i < hi {
                                // SAFETY: the dispenser hands iteration i to
                                // exactly one thread.
                                unsafe { arr.set(i as usize, i as usize + 1) };
                                i += step;
                            }
                        });
                    });
                }
                for (i, v) in data.iter().enumerate() {
                    assert_eq!(*v, i + 1);
                }
            });
    report.assert_ok();
    assert!(report.schedules() > 1);
}

#[test]
fn pct_adaptive_strided_loop_matches_sequential() {
    // Three threads, strided range, PCT's adversarial priorities: the
    // differential oracle against a sequential fold of the same range.
    let for_c = ForConstruct::new(Schedule::ADAPTIVE);
    let seq: usize = {
        let mut sum = 0usize;
        let mut i = 3i64;
        while i < 50 {
            sum += (i * i) as usize;
            i += 2;
        }
        sum
    };
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(24), 0xADA7, 3, || {
            let total = AtomicUsize::new(0);
            region::parallel_with(RegionConfig::new().threads(3), || {
                for_c.execute(LoopRange::new(3, 50, 2), |lo, hi, step| {
                    let mut local = 0usize;
                    let mut i = lo;
                    while i < hi {
                        local += (i * i) as usize;
                        i += step;
                    }
                    total.fetch_add(local, Ordering::SeqCst);
                });
            });
            assert_eq!(
                total.load(Ordering::SeqCst),
                seq,
                "adaptive loop diverged from sequential semantics"
            );
        })
        .assert_ok();
}

#[test]
fn steal_order_matches_xeon_socket_geometry() {
    // The runtime's compact-placement topology and the simcore Xeon must
    // agree on who is "near": same-socket victims (per the machine's
    // cores_per_socket grouping) come first, remote ones after, and
    // together they cover every other thread exactly once.
    let m = Machine::xeon();
    let n = m.cores;
    let sockets = m.sockets();
    assert_eq!(sockets, 2, "the Xeon model is the dual-socket case");
    for tid in 0..n {
        assert_eq!(
            schedule::socket_of(tid, n, sockets),
            tid / m.cores_per_socket,
            "compact placement must group like the machine model"
        );
        let order = schedule::steal_order(tid, n, sockets);
        assert_eq!(order.len(), n - 1);
        let near = m.cores_per_socket - 1;
        for (k, &v) in order.iter().enumerate() {
            let same = v / m.cores_per_socket == tid / m.cores_per_socket;
            assert_eq!(
                same,
                k < near,
                "tid {tid}: victim {v} at position {k} breaks near-first order"
            );
        }
        let unique: HashSet<usize> = order.iter().copied().collect();
        assert_eq!(unique.len(), n - 1);
        assert!(!unique.contains(&tid));
    }
}
