//! Randomised property tests over the extension crates (evolib,
//! irregular) and the simulator pair — invariants that must hold for
//! arbitrary inputs. Seeded deterministic loops (no proptest; the
//! workspace builds offline).

use aomplib::evolib::{self, Problem};
use aomplib::irregular::{bfs, triangles, CsrGraph, GraphKind};
use aomplib::simcore::{EventSimulator, Machine, Program, Simulator, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_graph(rng: &mut StdRng) -> CsrGraph {
    let n = rng.gen_range(2usize..80);
    let deg = rng.gen_range(1usize..6);
    let seed = rng.gen_range(0u64..500);
    let kind = if rng.gen_bool(0.5) {
        GraphKind::PowerLaw
    } else {
        GraphKind::Uniform
    };
    CsrGraph::generate(kind, n, deg, seed)
}

#[test]
fn bfs_levels_satisfy_edge_relaxation() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let g = arb_graph(&mut rng);
        let levels = bfs::reference(&g, 0);
        // Every edge (v, w) with v reached implies level[w] <= level[v]+1.
        for v in 0..g.vertices() {
            if levels[v] < 0 {
                continue;
            }
            for &w in g.neighbours(v) {
                let lw = levels[w as usize];
                assert!(
                    lw >= 0,
                    "case {case}: neighbour of a reached vertex is reached"
                );
                assert!(
                    lw <= levels[v] + 1,
                    "case {case}: edge relaxation: {} -> {}",
                    levels[v],
                    lw
                );
            }
        }
        // Parallel BFS agrees.
        let par =
            aomplib::weaver::Weaver::global().with_deployed(bfs::aspect(3), || bfs::run(&g, 0));
        assert_eq!(par, levels, "case {case}");
    }
}

#[test]
fn triangle_count_is_schedule_invariant() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let g = arb_graph(&mut rng);
        let expect = triangles::reference(&g);
        let oriented = triangles::orient(&g);
        for sched in [
            triangles::TriSchedule::Dynamic,
            triangles::TriSchedule::DegreeBalanced,
        ] {
            let got = aomplib::weaver::Weaver::global()
                .with_deployed(triangles::aspect(3, sched, &oriented), || {
                    triangles::count_oriented(&oriented)
                });
            assert_eq!(got, expect, "case {case}: {}", sched.name());
        }
    }
}

#[test]
fn orientation_is_acyclic_by_rank() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let g = arb_graph(&mut rng);
        // Every oriented edge points to an equal-or-higher-degree vertex
        // (ties broken by id): no 2-cycles survive.
        let o = triangles::orient(&g);
        for v in 0..o.vertices() {
            for &w in o.neighbours(v) {
                assert!(
                    !o.neighbours(w as usize).contains(&(v as u32)),
                    "case {case}: 2-cycle {v}<->{w}"
                );
            }
        }
    }
}

#[test]
fn ga_history_is_monotone_with_elitism() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(400 + case);
        let seed = rng.gen_range(0u64..1000);
        let dims = rng.gen_range(2usize..6);
        let p = evolib::Sphere { dims };
        let cfg = evolib::ga::GaConfig {
            generations: 12,
            pop_size: 20,
            seed,
            ..Default::default()
        };
        let r = evolib::ga::run(&p, &cfg);
        assert!(
            r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "case {case}"
        );
        assert!(r.best.fitness.is_finite(), "case {case}");
        // Genes stay in bounds.
        let (lo, hi) = p.bounds();
        assert!(
            r.best.genes.iter().all(|g| (lo..=hi).contains(g)),
            "case {case}"
        );
    }
}

#[test]
fn de_selection_never_regresses() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(500 + case);
        let seed = rng.gen_range(0u64..1000);
        let p = evolib::Rastrigin { dims: 3 };
        let cfg = evolib::de::DeConfig {
            generations: 10,
            pop_size: 12,
            seed,
            ..Default::default()
        };
        let r = evolib::de::run(&p, &cfg);
        assert!(
            r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "case {case}"
        );
    }
}

#[test]
fn simulators_agree_on_barrier_separated_programs() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(600 + case);
        let phases = rng.gen_range(1usize..8);
        let t = rng.gen_range(1usize..25);
        let mut steps = Vec::new();
        for _ in 0..phases {
            let ops = rng.gen_range(1e5f64..1e9);
            let bytes = rng.gen_range(0f64..1e7);
            steps.push(Step::Parallel {
                ops,
                bytes,
                imbalance: 1.0,
            });
            steps.push(Step::Barrier);
        }
        let p = Program::new("prop", steps);
        let m = Machine::xeon();
        let bulk = Simulator::new(m.clone()).run(&p, t);
        let event = EventSimulator::new(m).run(&p, t);
        assert!(
            (bulk - event).abs() / bulk < 1e-9,
            "case {case}: bulk {bulk} vs event {event}"
        );
    }
}

#[test]
fn event_simulator_never_exceeds_bulk() {
    for case in 0..32 {
        let mut rng = StdRng::seed_from_u64(700 + case);
        let phases = rng.gen_range(1usize..6);
        let t = rng.gen_range(2usize..13);
        // Without barriers the event executor can only do better (it
        // relaxes synchronisation).
        let mut steps = Vec::new();
        for _ in 0..phases {
            let ops = rng.gen_range(1e5f64..1e8);
            if rng.gen_bool(0.5) {
                steps.push(Step::Serial { ops, bytes: 0.0 });
            } else {
                steps.push(Step::Parallel {
                    ops,
                    bytes: 0.0,
                    imbalance: 1.0,
                });
            }
        }
        steps.push(Step::Barrier);
        let p = Program::new("prop", steps);
        let m = Machine::xeon();
        let bulk = Simulator::new(m.clone()).run(&p, t);
        let event = EventSimulator::new(m).run(&p, t);
        assert!(
            event <= bulk + 1e-9,
            "case {case}: event {event} > bulk {bulk}"
        );
    }
}

#[test]
fn montecarlo_tasks_match_for_loop_variant() {
    use aomplib::jgf::{montecarlo, Size};
    let d = montecarlo::generate(Size::Small);
    let by_for = montecarlo::aomp::run(&d, 3);
    let by_tasks = montecarlo::tasks::run(&d);
    assert_eq!(by_for.results, by_tasks.results);
}
