//! Property tests over the extension crates (evolib, irregular) and the
//! simulator pair — invariants that must hold for arbitrary inputs.

use aomplib::evolib::{self, Problem};
use aomplib::irregular::{bfs, triangles, CsrGraph, GraphKind};
use aomplib::simcore::{EventSimulator, Machine, Program, Simulator, Step};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..80, 1usize..6, 0u64..500, prop::bool::ANY).prop_map(|(n, deg, seed, power)| {
        let kind = if power { GraphKind::PowerLaw } else { GraphKind::Uniform };
        CsrGraph::generate(kind, n, deg, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_levels_satisfy_edge_relaxation(g in arb_graph()) {
        let levels = bfs::reference(&g, 0);
        // Every edge (v, w) with v reached implies level[w] <= level[v]+1.
        for v in 0..g.vertices() {
            if levels[v] < 0 {
                continue;
            }
            for &w in g.neighbours(v) {
                let lw = levels[w as usize];
                prop_assert!(lw >= 0, "neighbour of a reached vertex is reached");
                prop_assert!(lw <= levels[v] + 1, "edge relaxation: {} -> {}", levels[v], lw);
            }
        }
        // Parallel BFS agrees.
        let par = aomplib::weaver::Weaver::global()
            .with_deployed(bfs::aspect(3), || bfs::run(&g, 0));
        prop_assert_eq!(par, levels);
    }

    #[test]
    fn triangle_count_is_schedule_invariant(g in arb_graph()) {
        let expect = triangles::reference(&g);
        let oriented = triangles::orient(&g);
        for sched in [triangles::TriSchedule::Dynamic, triangles::TriSchedule::DegreeBalanced] {
            let got = aomplib::weaver::Weaver::global()
                .with_deployed(triangles::aspect(3, sched, &oriented), || {
                    triangles::count_oriented(&oriented)
                });
            prop_assert_eq!(got, expect, "{}", sched.name());
        }
    }

    #[test]
    fn orientation_is_acyclic_by_rank(g in arb_graph()) {
        // Every oriented edge points to an equal-or-higher-degree vertex
        // (ties broken by id): no 2-cycles survive.
        let o = triangles::orient(&g);
        for v in 0..o.vertices() {
            for &w in o.neighbours(v) {
                prop_assert!(!o.neighbours(w as usize).contains(&(v as u32)), "2-cycle {v}<->{w}");
            }
        }
    }

    #[test]
    fn ga_history_is_monotone_with_elitism(seed in 0u64..1000, dims in 2usize..6) {
        let p = evolib::Sphere { dims };
        let cfg = evolib::ga::GaConfig { generations: 12, pop_size: 20, seed, ..Default::default() };
        let r = evolib::ga::run(&p, &cfg);
        prop_assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        prop_assert!(r.best.fitness.is_finite());
        // Genes stay in bounds.
        let (lo, hi) = p.bounds();
        prop_assert!(r.best.genes.iter().all(|g| (lo..=hi).contains(g)));
    }

    #[test]
    fn de_selection_never_regresses(seed in 0u64..1000) {
        let p = evolib::Rastrigin { dims: 3 };
        let cfg = evolib::de::DeConfig { generations: 10, pop_size: 12, seed, ..Default::default() };
        let r = evolib::de::run(&p, &cfg);
        prop_assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn simulators_agree_on_barrier_separated_programs(
        phases in prop::collection::vec((1e5f64..1e9, 0f64..1e7), 1..8),
        t in 1usize..25,
    ) {
        let mut steps = Vec::new();
        for (ops, bytes) in phases {
            steps.push(Step::Parallel { ops, bytes, imbalance: 1.0 });
            steps.push(Step::Barrier);
        }
        let p = Program::new("prop", steps);
        let m = Machine::xeon();
        let bulk = Simulator::new(m.clone()).run(&p, t);
        let event = EventSimulator::new(m).run(&p, t);
        prop_assert!((bulk - event).abs() / bulk < 1e-9, "bulk {bulk} vs event {event}");
    }

    #[test]
    fn event_simulator_never_exceeds_bulk(
        phases in prop::collection::vec((1e5f64..1e8, prop::bool::ANY), 1..6),
        t in 2usize..13,
    ) {
        // Without barriers the event executor can only do better (it
        // relaxes synchronisation).
        let mut steps = Vec::new();
        for (ops, serial) in phases {
            if serial {
                steps.push(Step::Serial { ops, bytes: 0.0 });
            } else {
                steps.push(Step::Parallel { ops, bytes: 0.0, imbalance: 1.0 });
            }
        }
        steps.push(Step::Barrier);
        let p = Program::new("prop", steps);
        let m = Machine::xeon();
        let bulk = Simulator::new(m.clone()).run(&p, t);
        let event = EventSimulator::new(m).run(&p, t);
        prop_assert!(event <= bulk + 1e-9, "event {event} > bulk {bulk}");
    }
}

#[test]
fn montecarlo_tasks_match_for_loop_variant() {
    use aomplib::jgf::{montecarlo, Size};
    let d = montecarlo::generate(Size::Small);
    let by_for = montecarlo::aomp::run(&d, 3);
    let by_tasks = montecarlo::tasks::run(&d);
    assert_eq!(by_for.results, by_tasks.results);
}
