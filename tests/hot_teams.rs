//! Hot teams under failure: the pooled region path (the default since
//! the hot-team cache landed) must survive cancellation, member panics
//! and stall diagnoses without poisoning the cache for the next region,
//! and the shared task executor behind `task::spawn` must stay live when
//! tasks block on each other or the pool is disabled.

use aomp_check as check;
use aomplib::prelude::*;
use aomplib::runtime::clock::VirtualClock;
use aomplib::runtime::pool::hot_team_stats;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Tests that toggle the global pool kill switch or assert on the global
/// hot-team counters serialise here, so a disabled pool in one test
/// cannot turn another test's pooled region into a spawned one.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn top_level_regions_use_the_hot_team_cache() {
    let _s = serial();
    let before = hot_team_stats();
    for _ in 0..4 {
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(5), || {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }
    let after = hot_team_stats();
    assert!(
        after.pooled_regions >= before.pooled_regions + 4,
        "top-level regions should take the pooled path: {before:?} -> {after:?}"
    );
}

#[test]
fn pooled_false_forces_the_spawn_path() {
    let _s = serial();
    let before = hot_team_stats();
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(4).pooled(false), || {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4);
    let after = hot_team_stats();
    assert!(after.spawned_regions > before.spawned_regions);
    assert_eq!(after.pooled_regions, before.pooled_regions);
}

#[test]
fn kill_switch_forces_the_spawn_path() {
    let _s = serial();
    runtime::set_pool_enabled(false);
    let before = hot_team_stats();
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(3), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    runtime::set_pool_enabled(true);
    assert_eq!(hits.load(Ordering::SeqCst), 3);
    let after = hot_team_stats();
    assert!(after.spawned_regions > before.spawned_regions);
    assert_eq!(after.pooled_regions, before.pooled_regions);
}

#[test]
fn nested_regions_fall_back_to_spawning() {
    let _s = serial();
    let before = hot_team_stats();
    let inner_hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(2), || {
        region::parallel_with(RegionConfig::new().threads(2), || {
            inner_hits.fetch_add(1, Ordering::SeqCst);
        });
    });
    // 2 outer members × 2 inner members each.
    assert_eq!(inner_hits.load(Ordering::SeqCst), 4);
    let after = hot_team_stats();
    assert!(
        after.pooled_regions > before.pooled_regions,
        "the outer region should be pooled"
    );
    assert!(
        after.spawned_regions >= before.spawned_regions + 2,
        "both inner regions should spawn (nesting fallback)"
    );
}

#[test]
fn cancelled_pooled_region_leaves_the_cache_clean() {
    let _s = serial();
    for round in 0..3 {
        let r = region::try_parallel_with(RegionConfig::new().threads(4).cancellable(true), || {
            if thread_id() == 1 {
                cancel_team();
            }
            while cancellation_point().is_ok() {
                std::thread::yield_now();
            }
        });
        assert_eq!(r, Err(RegionError::Cancelled), "round {round}");
        // The same team size must come back healthy from the cache.
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(4), || {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4, "round {round}");
    }
}

#[test]
fn member_panic_does_not_poison_the_cache() {
    let _s = serial();
    for round in 0..3 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            region::parallel_with(RegionConfig::new().threads(4), || {
                if thread_id() == 2 {
                    panic!("injected pooled-member failure");
                }
                barrier();
            });
        }));
        assert!(r.is_err(), "round {round}: panic must reach the caller");
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(4), || {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4, "round {round}");
    }
}

#[test]
fn stall_watchdog_fires_inside_a_pooled_region() {
    let _s = serial();
    let before = hot_team_stats();
    // Virtual time: a 5-minute deadline elapses in wall-clock
    // microseconds. The hang is synchronisation-level (one member waits
    // at a barrier round the rest never join), so the watchdog's
    // force-cancel can wake it and the pooled team still fully joins.
    let clock = VirtualClock::install();
    let r = region::try_parallel_with(
        RegionConfig::new()
            .threads(3)
            .stall_deadline(Duration::from_secs(300)),
        || {
            barrier();
            if thread_id() == 1 {
                barrier();
            }
        },
    );
    drop(clock);
    assert!(
        matches!(r, Err(RegionError::Stalled { .. })),
        "expected a stall diagnosis, got {r:?}"
    );
    let after = hot_team_stats();
    assert!(
        after.pooled_regions > before.pooled_regions,
        "the stalled region should have run on a hot team"
    );
    // The cache survives the stall.
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(3), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}

#[test]
fn explored_pooled_region_is_schedule_independent() {
    let _s = serial();
    let before = hot_team_stats();
    let report =
        check::Explorer::new()
            .races(true)
            .random(check::seeds_from_env(24), 0x407_7EA5, || {
                let h = CriticalHandle::new();
                let total = AtomicUsize::new(0);
                region::parallel_with(RegionConfig::new().threads(2), || {
                    h.run(|| {
                        total.fetch_add(thread_id() + 1, Ordering::SeqCst);
                    });
                    barrier();
                    total.fetch_add(10, Ordering::SeqCst);
                });
                assert_eq!(total.load(Ordering::SeqCst), 23);
            });
    report.assert_ok();
    assert!(report.schedules() > 1);
    let after = hot_team_stats();
    assert!(
        after.pooled_regions > before.pooled_regions,
        "the explored region should still take the pooled path"
    );
}

#[test]
fn executor_runs_many_tasks_futures_and_groups() {
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    let group = TaskGroup::new();
    for _ in 0..32 {
        let done = std::sync::Arc::clone(&done);
        group.spawn(move || {
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let futures: Vec<_> = (0..16).map(|i| task::spawn_future(move || i * i)).collect();
    group.wait();
    assert_eq!(done.load(Ordering::SeqCst), 32);
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(f.get(), i * i);
    }
}

#[test]
fn task_waiting_on_task_stays_live() {
    // A chain of dependent futures longer than the worker pool: under a
    // bounded pool this wedges unless admission control refuses to queue
    // tasks behind blocked workers (overflow must go to dedicated
    // threads). It is also the regression test for help-joining, which
    // could bury a producer under a stolen task on the same worker stack
    // — a cycle no future could break. Repeat a few times so builds of
    // the chain interleave with executor state left by earlier rounds.
    for round in 0..4 {
        let chain = (0..24).fold(task::spawn_future(|| 0usize), |prev, _| {
            task::spawn_future(move || prev.get() + 1)
        });
        assert_eq!(chain.get(), 24, "round {round}");
    }
}

#[test]
fn tasks_degrade_to_dedicated_threads_when_pool_disabled() {
    let _s = serial();
    runtime::set_pool_enabled(false);
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    let group = TaskGroup::new();
    for _ in 0..8 {
        let done = std::sync::Arc::clone(&done);
        group.spawn(move || {
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    group.wait();
    let f = task::spawn_future(|| 41 + 1);
    let v = f.get();
    runtime::set_pool_enabled(true);
    assert_eq!(done.load(Ordering::SeqCst), 8);
    assert_eq!(v, 42);
}
