//! Integration tests for the pointcut style: aspect modules woven over a
//! base program, equivalence with the annotation style, sequential
//! semantics when unplugged, interface-style glob bindings and nested
//! regions — the paper's §III properties.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

fn unique(name: &str) -> String {
    // Join-point names are global; keep each test's namespace distinct.
    format!("it.pointcut.{name}")
}

#[test]
fn pointcut_and_annotation_styles_produce_identical_results() {
    // Annotation-style region + for.
    static A_SUM: AtomicI64 = AtomicI64::new(0);

    #[aomplib::annotations::for_loop(schedule = "staticBlock")]
    fn annotated_for(start: i64, end: i64, step: i64) {
        let mut local = 0;
        let mut i = start;
        while i < end {
            local += i * 3;
            i += step;
        }
        A_SUM.fetch_add(local, Ordering::Relaxed);
    }

    #[aomplib::annotations::parallel(threads = 4)]
    fn annotated_region() {
        annotated_for(0, 5000, 1);
    }

    annotated_region();

    // Pointcut-style equivalent over an unannotated base program.
    let p_sum = AtomicI64::new(0);
    let jp_run = unique("styles.run");
    let jp_for = unique("styles.for");
    let aspect = AspectModule::builder("StyleEquivalence")
        .bind(
            Pointcut::call(jp_run.clone()),
            Mechanism::parallel().threads(4),
        )
        .bind(
            Pointcut::call(jp_for.clone()),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call(&jp_run, || {
            aomp_weaver::call_for(&jp_for, LoopRange::upto(0, 5000), |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += i * 3;
                    i += step;
                }
                p_sum.fetch_add(local, Ordering::Relaxed);
            });
        });
    });

    assert_eq!(A_SUM.load(Ordering::Relaxed), p_sum.load(Ordering::Relaxed));
    assert_eq!(
        p_sum.load(Ordering::Relaxed),
        (0..5000).map(|i| i * 3).sum::<i64>()
    );
}

#[test]
fn unplugged_program_runs_sequentially() {
    let jp = unique("seqsem");
    let max_team = AtomicUsize::new(0);
    aomp_weaver::call(&jp, || {
        max_team.fetch_max(team_size(), Ordering::Relaxed);
    });
    assert_eq!(
        max_team.load(Ordering::Relaxed),
        1,
        "no aspects -> one thread"
    );
}

#[test]
fn deploy_then_undeploy_restores_sequential_semantics() {
    let jp = unique("plug");
    let hits = AtomicUsize::new(0);
    let run = || {
        aomp_weaver::call(&jp, || {
            hits.fetch_add(1, Ordering::Relaxed);
        })
    };
    let h = Weaver::global().deploy(
        AspectModule::builder("PlugTest")
            .bind(Pointcut::call(jp.clone()), Mechanism::parallel().threads(3))
            .build(),
    );
    run();
    assert_eq!(hits.load(Ordering::Relaxed), 3);
    Weaver::global().undeploy(h);
    run();
    assert_eq!(hits.load(Ordering::Relaxed), 4);
}

#[test]
fn interface_glob_binds_all_implementations() {
    // The paper's LAMMPS scenario: many implementations of one interface
    // method, parallelised by a single pointcut over the interface name.
    let counts = AtomicUsize::new(0);
    let prefix = unique("Force");
    let aspect = AspectModule::builder("InterfaceGlob")
        .bind(
            Pointcut::glob(format!("{prefix}.*.compute")),
            Mechanism::parallel().threads(2),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        for implementation in ["LJ", "Coulomb", "EAM"] {
            aomp_weaver::call(&format!("{prefix}.{implementation}.compute"), || {
                counts.fetch_add(1, Ordering::Relaxed);
            });
        }
        // An unrelated method stays sequential.
        aomp_weaver::call(&format!("{prefix}.LJ.init"), || {
            counts.fetch_add(10, Ordering::Relaxed);
        });
    });
    assert_eq!(counts.load(Ordering::Relaxed), 3 * 2 + 10);
}

#[test]
fn combined_parallel_for_in_one_aspect() {
    // Paper §III-D: combined constructs as one module.
    let jp = unique("parfor");
    let sum = AtomicI64::new(0);
    let aspect =
        aomp_weaver::aspect::parallel_for("CombinedPF", &jp, Schedule::StaticCyclic, Some(3));
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call_for(&jp, LoopRange::upto(0, 300), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                sum.fetch_add(i, Ordering::Relaxed);
                i += step;
            }
        });
    });
    assert_eq!(sum.load(Ordering::Relaxed), (0..300).sum::<i64>());
}

#[test]
fn nested_parallel_regions_via_aspects() {
    let outer = unique("nest.outer");
    let inner = unique("nest.inner");
    let leaf_runs = AtomicUsize::new(0);
    let aspect = AspectModule::builder("Nested")
        .bind(
            Pointcut::call(outer.clone()),
            Mechanism::parallel().threads(2),
        )
        .bind(
            Pointcut::call(inner.clone()),
            Mechanism::parallel().threads(2),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call(&outer, || {
            aomp_weaver::call(&inner, || {
                leaf_runs.fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    assert_eq!(leaf_runs.load(Ordering::Relaxed), 4, "2 outer × 2 inner");
}

#[test]
fn reader_writer_mechanisms_share_one_construct() {
    use std::sync::Arc;
    let jp_read = unique("rw.read");
    let jp_write = unique("rw.write");
    let rw = Arc::new(RwConstruct::new());
    let aspect = AspectModule::builder("RW")
        .bind(
            Pointcut::call(unique("rw.region")),
            Mechanism::parallel().threads(4),
        )
        .bind(
            Pointcut::call(jp_read.clone()),
            Mechanism::reader(Arc::clone(&rw)),
        )
        .bind(
            Pointcut::call(jp_write.clone()),
            Mechanism::writer(Arc::clone(&rw)),
        )
        .build();
    let value = std::sync::Mutex::new(0u64);
    let reads = AtomicUsize::new(0);
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call(&unique("rw.region"), || {
            for i in 0..20 {
                if thread_id() == 0 && i % 5 == 0 {
                    aomp_weaver::call(&jp_write, || {
                        *value.lock().unwrap() += 1;
                    });
                } else {
                    aomp_weaver::call(&jp_read, || {
                        let _ = *value.lock().unwrap();
                        reads.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        });
    });
    assert_eq!(*value.lock().unwrap(), 4);
    assert!(reads.load(Ordering::Relaxed) > 0);
}

#[test]
fn single_mechanism_broadcasts_value_join_point() {
    let region = unique("single.region");
    let jp = unique("single.value");
    let execs = AtomicUsize::new(0);
    let agree = AtomicUsize::new(0);
    let aspect = AspectModule::builder("SingleVal")
        .bind(
            Pointcut::call(region.clone()),
            Mechanism::parallel().threads(4),
        )
        .bind(Pointcut::call(jp.clone()), Mechanism::single())
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call(&region, || {
            let v: u64 = aomp_weaver::call_value(&jp, || {
                execs.fetch_add(1, Ordering::Relaxed);
                0xC0FFEE
            });
            if v == 0xC0FFEE {
                agree.fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    assert_eq!(execs.load(Ordering::Relaxed), 1);
    assert_eq!(agree.load(Ordering::Relaxed), 4);
}
