//! Cross-crate integration: every JGF benchmark's three versions agree,
//! at several thread counts, driven through the public `aomplib` facade.

use aomplib::jgf;
use aomplib::jgf::Size;

const THREADS: [usize; 3] = [1, 2, 4];

#[test]
fn crypt_all_versions_agree() {
    let data = jgf::crypt::generate(Size::Small);
    let s = jgf::crypt::seq::run(&data);
    assert!(jgf::crypt::validate(&data, &s));
    for t in THREADS {
        assert_eq!(jgf::crypt::mt::run(&data, t).cipher, s.cipher);
        assert_eq!(jgf::crypt::aomp::run(&data, t).cipher, s.cipher);
    }
}

#[test]
fn lufact_all_versions_agree() {
    let data = jgf::lufact::generate(Size::Small);
    let s = jgf::lufact::seq::run(&data);
    assert!(jgf::lufact::validate(&data, &s));
    for t in THREADS {
        assert_eq!(jgf::lufact::mt::run(&data, t).x, s.x);
        assert_eq!(jgf::lufact::aomp::run(&data, t).x, s.x);
    }
}

#[test]
fn series_all_versions_agree() {
    let n = jgf::series::coefficients_for(Size::Small);
    let s = jgf::series::seq::run(n);
    assert!(jgf::series::validate(&s));
    for t in THREADS {
        assert_eq!(jgf::series::mt::run(n, t).coeffs, s.coeffs);
        assert_eq!(jgf::series::aomp::run(n, t).coeffs, s.coeffs);
    }
}

#[test]
fn sor_all_versions_agree() {
    let grid = jgf::sor::generate(Size::Small);
    let s = jgf::sor::seq::run(&grid, 10);
    for t in THREADS {
        assert_eq!(jgf::sor::mt::run(&grid, 10, t).g, s.g);
        assert_eq!(jgf::sor::aomp::run(&grid, 10, t).g, s.g);
    }
}

#[test]
fn sparse_all_versions_agree() {
    let d = jgf::sparse::generate(Size::Small);
    let s = jgf::sparse::seq::run(&d, 10);
    for t in THREADS {
        assert_eq!(jgf::sparse::mt::run(&d, 10, t), s);
        assert_eq!(jgf::sparse::aomp::run(&d, 10, t), s);
    }
}

#[test]
fn moldyn_all_versions_agree() {
    let d = jgf::moldyn::generate(3, 5);
    let s = jgf::moldyn::seq::run(&d);
    assert!(jgf::moldyn::validate(&s));
    for t in THREADS {
        for (name, r) in [
            ("mt", jgf::moldyn::mt::run(&d, t)),
            ("aomp", jgf::moldyn::aomp::run(&d, t)),
            ("critical", jgf::moldyn::variants::run_critical(&d, t)),
            ("locks", jgf::moldyn::variants::run_locks(&d, t)),
        ] {
            assert!(
                jgf::moldyn::agrees(&r, &s, 1e-6),
                "{name} t={t}: {r:?} vs {s:?}"
            );
        }
    }
}

#[test]
fn montecarlo_all_versions_agree() {
    let d = jgf::montecarlo::generate(Size::Small);
    let s = jgf::montecarlo::seq::run(&d);
    assert!(jgf::montecarlo::validate(&d, &s));
    for t in THREADS {
        assert_eq!(jgf::montecarlo::mt::run(&d, t).results, s.results);
        assert_eq!(jgf::montecarlo::aomp::run(&d, t).results, s.results);
    }
}

#[test]
fn raytracer_all_versions_agree() {
    let scene = jgf::raytracer::generate(Size::Small);
    let s = jgf::raytracer::seq::run(&scene);
    assert!(jgf::raytracer::validate(&scene, &s));
    for t in THREADS {
        assert_eq!(jgf::raytracer::mt::run(&scene, t), s);
        assert_eq!(jgf::raytracer::aomp::run(&scene, t), s);
    }
}

// ---------------------------------------------------------------------------
// Checker-driven conformance: every kernel's AOmpLib version, run under
// seeded random schedules (32 by default, `AOMP_CHECK_SEEDS` overrides),
// must reproduce the sequential golden output on *every* explored
// interleaving — the paper's Figure 13 equality claim quantified over
// schedules instead of over one lucky run. A failing seed prints with its
// trace and replays via `aomp_check::replay_random`. Every run also arms
// the vector-clock race oracle over the kernels' tracked shared arrays
// (`Explorer::races(true)`), so a schedule that exposes an unordered
// conflicting access pair fails even if the output happens to match.
// ---------------------------------------------------------------------------

use aomp_check as check;

const CHECKED_THREADS: usize = 2;

fn schedules() -> usize {
    check::seeds_from_env(32)
}

#[test]
fn crypt_aomp_matches_seq_under_random_schedules() {
    let data = jgf::crypt::generate(Size::Small);
    let golden = jgf::crypt::seq::run(&data).cipher;
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x0C11, golden, || {
            jgf::crypt::aomp::run(&data, CHECKED_THREADS).cipher
        })
        .assert_ok();
}

#[test]
fn lufact_aomp_matches_seq_under_random_schedules() {
    let data = jgf::lufact::generate(Size::Small);
    let golden = jgf::lufact::seq::run(&data).x;
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x1FAC, golden, || {
            jgf::lufact::aomp::run(&data, CHECKED_THREADS).x
        })
        .assert_ok();
}

#[test]
fn series_aomp_matches_seq_under_random_schedules() {
    let n = jgf::series::coefficients_for(Size::Small);
    let golden = jgf::series::seq::run(n).coeffs;
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x5E11, golden, || {
            jgf::series::aomp::run(n, CHECKED_THREADS).coeffs
        })
        .assert_ok();
}

#[test]
fn sor_aomp_matches_seq_under_random_schedules() {
    let grid = jgf::sor::generate(Size::Small);
    let golden = jgf::sor::seq::run(&grid, 10).g;
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x50BB, golden, || {
            jgf::sor::aomp::run(&grid, 10, CHECKED_THREADS).g
        })
        .assert_ok();
}

#[test]
fn sparse_aomp_matches_seq_under_random_schedules() {
    let d = jgf::sparse::generate(Size::Small);
    let golden = jgf::sparse::seq::run(&d, 10);
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x5AA5, golden, || {
            jgf::sparse::aomp::run(&d, 10, CHECKED_THREADS)
        })
        .assert_ok();
}

#[test]
fn moldyn_aomp_matches_seq_under_random_schedules() {
    // MolDyn's parallel versions accumulate forces in a different order
    // than seq, so (as in `moldyn_all_versions_agree`) the oracle is the
    // suite's own tolerance check rather than bitwise equality.
    let d = jgf::moldyn::generate(3, 5);
    let s = jgf::moldyn::seq::run(&d);
    check::Explorer::new()
        .races(true)
        .random(schedules(), 0x30D1, || {
            let r = jgf::moldyn::aomp::run(&d, CHECKED_THREADS);
            assert!(jgf::moldyn::agrees(&r, &s, 1e-6), "{r:?} vs {s:?}");
        })
        .assert_ok();
}

#[test]
fn montecarlo_aomp_matches_seq_under_random_schedules() {
    let d = jgf::montecarlo::generate(Size::Small);
    let golden = jgf::montecarlo::seq::run(&d).results;
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x3011, golden, || {
            jgf::montecarlo::aomp::run(&d, CHECKED_THREADS).results
        })
        .assert_ok();
}

#[test]
fn raytracer_aomp_matches_seq_under_random_schedules() {
    let scene = jgf::raytracer::generate(Size::Small);
    let golden = jgf::raytracer::seq::run(&scene);
    check::Explorer::new()
        .races(true)
        .differential(schedules(), 0x11A1, golden, || {
            jgf::raytracer::aomp::run(&scene, CHECKED_THREADS)
        })
        .assert_ok();
}

#[test]
fn table2_metadata_matches_paper() {
    let rows = jgf::all_benchmarks();
    assert_eq!(rows.len(), 8);
    let expect = [
        ("Crypt", "M2FOR, M2M", "PR, FOR (block)"),
        ("LUFact", "M2FOR, M2M", "PR, FOR (block), 4xBR, 2xMA"),
        ("Series", "M2FOR, M2M", "PR, FOR (block)"),
        ("SOR", "M2FOR, M2M", "PR, FOR (block), BR"),
        ("Sparse", "M2FOR, M2M", "PR, FOR (Case Specific), CS"),
        ("MolDyn", "M2FOR, 3xM2M", "PR, FOR (cyclic), 2xTLF"),
        ("MonteCarlo", "M2FOR, M2M", "PR, FOR (cyclic)"),
        ("RayTracer", "M2FOR", "PR, FOR (cyclic), TLF"),
    ];
    for (row, (name, refs, abs)) in rows.iter().zip(expect) {
        assert_eq!(row.name, name);
        assert_eq!(row.refactorings_column(), refs, "{name}");
        assert_eq!(row.abstractions_column(), abs, "{name}");
    }
}

#[test]
fn figure_series_are_generated() {
    use aomplib::simcore::Machine;
    let f13_i7 = aomp_bench_like_fig13(&Machine::i7(), 8);
    assert_eq!(f13_i7.len(), 8);
}

// Minimal duplicate of the fig13 assembly to keep aomp-bench out of the
// root dependency graph (it is a harness crate, not a library).
fn aomp_bench_like_fig13(machine: &aomplib::simcore::Machine, t: usize) -> Vec<(String, f64)> {
    use aomplib::simcore::{models, Simulator};
    let sim = Simulator::new(machine.clone());
    [
        models::crypt(1_000_000, false),
        models::lufact(500, false),
        models::series(1_000, false),
        models::sor(500, 50, false),
        models::sparse(100_000, 50, false),
        models::moldyn(
            2048,
            10,
            t,
            models::MolDynStrategy::ThreadLocal,
            machine,
            false,
        ),
        models::montecarlo(10_000, false),
        models::raytracer(150, false),
    ]
    .into_iter()
    .map(|p| (p.name.clone(), sim.speedup(&p, t)))
    .collect()
}
