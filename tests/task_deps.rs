//! Schedule exploration of the task-dependence layer end to end: the
//! dependent-task-graph kernels (`pagerank::run_deps`, `bfs::run_deps`)
//! stay bitwise equal to their sequential references on *every* explored
//! interleaving with the race oracle armed; an intentionally inverted
//! `depend` pair (two tasks both claiming `in` on the tag one of them
//! writes) is flagged as a data race; a dependence cycle is reported
//! fallibly — no hang, stall watchdog silent — on every schedule; and a
//! failing schedule's trace replays byte-for-byte.

use aomp_check as check;
use aomp_irregular::{bfs, pagerank, CsrGraph};
use aomp_weaver::Weaver;
use aomplib::prelude::*;
use aomplib::runtime::check::Tracked;
use aomplib::runtime::deps::{Dep, DepError, DepGroup};
use std::sync::Arc;
use std::time::Duration;

/// A tiny diamond-plus-tail graph: enough structure for two partitions
/// to exchange ranks/frontiers, small enough to explore.
fn tiny_graph() -> CsrGraph {
    CsrGraph::from_edges(
        6,
        vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)],
    )
}

// ---------------------------------------------------------------------------
// Differential oracle under exploration: the dependent graphs match
// their sequential references bitwise on every interleaving.
// ---------------------------------------------------------------------------

#[test]
fn dfs_dep_pagerank_is_bitwise_sequential() {
    let g = tiny_graph();
    let expect = pagerank::reference_iters(&g, 2);
    let report = check::Explorer::new().races(true).dfs(600, 48, || {
        let got = Weaver::global()
            .with_deployed(pagerank::aspect_deps(2), || pagerank::run_deps(&g, 2, 2));
        assert_eq!(got, expect, "dep pagerank diverged on an interleaving");
    });
    report.assert_ok();
    assert!(report.schedules() > 1, "exploration too shallow");
}

#[test]
fn pct_dep_pagerank_is_bitwise_sequential() {
    let g = tiny_graph();
    let expect = pagerank::reference_iters(&g, 3);
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(16), 0xDA6, 3, || {
            let got = Weaver::global()
                .with_deployed(pagerank::aspect_deps(2), || pagerank::run_deps(&g, 3, 2));
            assert_eq!(got, expect, "dep pagerank diverged on an interleaving");
        })
        .assert_ok();
}

#[test]
fn dfs_dep_bfs_is_bitwise_sequential() {
    let g = tiny_graph();
    let expect = bfs::reference(&g, 0);
    let report = check::Explorer::new().races(true).dfs(600, 48, || {
        let got =
            Weaver::global().with_deployed(bfs::aspect_deps(2), || bfs::run_deps(&g, 0, 6, 2));
        assert_eq!(got, expect, "dep BFS diverged on an interleaving");
    });
    report.assert_ok();
    assert!(report.schedules() > 1, "exploration too shallow");
}

#[test]
fn pct_dep_bfs_is_bitwise_sequential() {
    let g = tiny_graph();
    let expect = bfs::reference(&g, 0);
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(16), 0xBF5, 3, || {
            let got =
                Weaver::global().with_deployed(bfs::aspect_deps(2), || bfs::run_deps(&g, 0, 6, 2));
            assert_eq!(got, expect, "dep BFS diverged on an interleaving");
        })
        .assert_ok();
}

// ---------------------------------------------------------------------------
// The inverted pair: a producer that *claims* to only read. Two `in`
// clauses on one tag commute — the runtime is entitled to run them
// concurrently — so the hidden write must surface as a data race.
// ---------------------------------------------------------------------------

fn inverted_depend_pair() {
    let cell = Arc::new(Tracked::new("inverted.depend", 0u64));
    let group = DepGroup::new();
    let (w, rd) = (Arc::clone(&cell), Arc::clone(&cell));
    region::parallel_with(RegionConfig::new().threads(2), move || {
        if thread_id() == 0 {
            let w = Arc::clone(&w);
            let rd = Arc::clone(&rd);
            // BUG: the writer's clause says `in` — inverted from the
            // `out` its body needs — so no edge orders the pair.
            group.spawn([Dep::input("handoff")], move || unsafe { w.set(7) });
            group.spawn([Dep::input("handoff")], move || {
                let _ = unsafe { rd.read() };
            });
            group.close();
        }
        group.run().expect("no cycles");
    });
}

#[test]
fn dfs_flags_the_inverted_depend_pair() {
    let report = check::Explorer::new()
        .races(true)
        .dfs(2_000, 64, inverted_depend_pair);
    let hit = report
        .runs
        .iter()
        .find(|r| r.race.is_some())
        .expect("an inverted depend pair must race on some interleaving");
    let msg = hit.failure.as_deref().expect("a race fails its schedule");
    assert!(msg.contains("data race"), "{msg}");
    assert!(
        msg.contains("inverted.depend"),
        "report must name the tracked site: {msg}"
    );
}

#[test]
fn pct_flags_the_inverted_depend_pair() {
    let report = check::Explorer::new().races(true).pct(
        check::seeds_from_env(16),
        0x1BADDE9,
        3,
        inverted_depend_pair,
    );
    assert!(
        report.runs.iter().any(|r| r.race.is_some()),
        "an inverted depend pair must race under PCT priorities"
    );
}

// ---------------------------------------------------------------------------
// Cycles fail fallibly on every interleaving: the error comes back
// through release/run/wait, nothing runs, nothing hangs, and the stall
// watchdog (armed with a generous deadline) never fires.
// ---------------------------------------------------------------------------

#[test]
fn pct_dependence_cycle_is_fallible_and_watchdog_silent() {
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(16), 0xC1C1E, 3, || {
            let group = DepGroup::held();
            let group2 = group.clone();
            let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let ran2 = Arc::clone(&ran);
            let r = region::try_parallel_with(
                RegionConfig::new()
                    .threads(2)
                    .stall_deadline(Duration::from_secs(30)),
                move || {
                    if thread_id() == 0 {
                        let r1 = Arc::clone(&ran2);
                        let r2 = Arc::clone(&ran2);
                        let a = group2.spawn([], move || {
                            r1.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        });
                        let b = group2.spawn([], move || {
                            r2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        });
                        group2.edge(a, b);
                        group2.edge(b, a);
                        group2.close();
                        let err = group2.release().expect_err("two-node cycle");
                        assert!(matches!(&err, DepError::Cycle { nodes } if nodes.len() == 2));
                    }
                    barrier();
                    // Every member joins fallibly after the poisoned release.
                    assert!(matches!(group2.wait(), Err(DepError::Cycle { .. })));
                },
            );
            assert_eq!(r, Ok(()), "the watchdog fired on a fallible cycle");
            assert_eq!(
                ran.load(std::sync::atomic::Ordering::SeqCst),
                0,
                "no task of a cyclic graph may run"
            );
        })
        .assert_ok();
}

// ---------------------------------------------------------------------------
// Reproduction: a failing dependence schedule replays byte-for-byte and
// re-finds the same race; a clean schedule replays to the same digest.
// ---------------------------------------------------------------------------

#[test]
fn racy_dep_schedule_replays_byte_for_byte() {
    let explorer = check::Explorer::new().races(true);
    let report = explorer.random(check::seeds_from_env(16), 0xDE9_5EED, inverted_depend_pair);
    let failing = report
        .runs
        .iter()
        .find(|r| r.race.is_some())
        .expect("no racy schedule to replay");
    let replayed = explorer.replay(&failing.trace, inverted_depend_pair);
    assert_eq!(
        replayed.trace.digest(),
        failing.trace.digest(),
        "replay must reproduce the schedule byte-for-byte"
    );
    let (a, b) = (
        failing.race.as_ref().expect("found above"),
        replayed
            .race
            .as_ref()
            .expect("replay must re-find the race"),
    );
    assert_eq!(
        (a.prior.to_string(), a.current.to_string()),
        (b.prior.to_string(), b.current.to_string()),
        "replayed race must name the same access pair"
    );
}

#[test]
fn clean_dep_schedule_replays_byte_for_byte() {
    let g = tiny_graph();
    let expect = pagerank::reference_iters(&g, 2);
    let run_it = || {
        let got = Weaver::global()
            .with_deployed(pagerank::aspect_deps(2), || pagerank::run_deps(&g, 2, 2));
        assert_eq!(got, expect);
    };
    let explorer = check::Explorer::new().races(true);
    let report = explorer.random(check::seeds_from_env(4), 0xC1EA_7E57, run_it);
    report.assert_ok();
    let run = &report.runs[0];
    let replayed = explorer.replay(&run.trace, run_it);
    assert!(replayed.failure.is_none(), "{:?}", replayed.failure);
    assert_eq!(
        replayed.trace.digest(),
        run.trace.digest(),
        "a clean dependence schedule must replay to the same digest"
    );
}
