//! Schedule-coverage property test — regression for the `ChunkHandout`
//! coordinate-space fix.
//!
//! For every `Schedule` variant, drive a work-sharing loop under a
//! registered hook and assert two properties of the emitted
//! `ChunkHandout` events:
//!
//! 1. **Partition**: the union of the `[lo, hi)` iteration ranges covers
//!    `0..count` with every logical iteration appearing exactly once —
//!    this is only possible if all five schedules report the same
//!    coordinate system (before the fix, static-block emitted element
//!    values and static-cyclic emitted a strided element range).
//! 2. **Differential**: the loop bodies together visit exactly the
//!    elements a sequential loop visits, so the iteration→element
//!    mapping was not broken by computing static blocks in iteration
//!    space.
//!
//! Ranges include unit-stride, strided, negative-step and empty loops.

use aomplib::prelude::*;
use aomplib::runtime::hook::{self, HookEvent, SchedHook};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Captured handout: (kind, lo, hi) in iteration space.
type Handout = (&'static str, u64, u64);

struct CaptureHook {
    armed: AtomicBool,
    events: Mutex<Vec<Handout>>,
}

static CAPTURE: CaptureHook = CaptureHook {
    armed: AtomicBool::new(false),
    events: Mutex::new(Vec::new()),
};

impl SchedHook for CaptureHook {
    fn event(&self, ev: &HookEvent) {
        if !self.armed.load(Ordering::SeqCst) {
            return;
        }
        if let HookEvent::ChunkHandout { kind, lo, hi, .. } = *ev {
            self.events.lock().unwrap().push((kind, lo, hi));
        }
    }
}

/// Hooks and the obs gate are process-global; tests in this binary run on
/// parallel test threads, so every test takes this lock first.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// The elements a sequential `for (i = start; ...; i += step)` visits.
fn seq_elements(range: LoopRange) -> Vec<i64> {
    let (start, end, step) = (range.start, range.end, range.step);
    let mut out = Vec::new();
    let mut i = start;
    while (step > 0 && i < end) || (step < 0 && i > end) {
        out.push(i);
        i += step;
    }
    out
}

/// Run one loop under the capture hook; return the handouts and the
/// elements the bodies visited.
fn run_captured(schedule: Schedule, range: LoopRange, threads: usize) -> (Vec<Handout>, Vec<i64>) {
    let visited: Mutex<Vec<i64>> = Mutex::new(Vec::new());
    CAPTURE.events.lock().unwrap().clear();
    CAPTURE.armed.store(true, Ordering::SeqCst);
    hook::register(&CAPTURE);
    let for_c = ForConstruct::new(schedule);
    region::parallel_with(RegionConfig::new().threads(threads), || {
        for_c.execute(range, |lo, hi, step| {
            let mut local = Vec::new();
            let mut i = lo;
            while (step > 0 && i < hi) || (step < 0 && i > hi) {
                local.push(i);
                i += step;
            }
            visited.lock().unwrap().extend(local);
        });
    });
    CAPTURE.armed.store(false, Ordering::SeqCst);
    hook::unregister();
    let events = std::mem::take(&mut *CAPTURE.events.lock().unwrap());
    let mut v = visited.into_inner().unwrap();
    v.sort_unstable();
    (events, v)
}

/// Assert the handouts partition `0..count` exactly once.
fn assert_partition(events: &[Handout], count: u64, what: &str) {
    let mut seen = vec![0u32; count as usize];
    for &(kind, lo, hi) in events {
        assert!(
            lo <= hi && hi <= count,
            "{what}: handout {kind} [{lo}, {hi}) outside iteration space 0..{count}"
        );
        for k in lo..hi {
            seen[k as usize] += 1;
        }
    }
    for (k, &n) in seen.iter().enumerate() {
        assert_eq!(
            n, 1,
            "{what}: iteration {k} appears {n} times in the handouts (count {count}): {events:?}"
        );
    }
}

fn all_schedules() -> Vec<(Schedule, &'static str)> {
    vec![
        (Schedule::StaticBlock, "static-block"),
        (Schedule::StaticCyclic, "static-cyclic"),
        (Schedule::Dynamic { chunk: 4 }, "dynamic"),
        (Schedule::Guided { min_chunk: 2 }, "guided"),
        (Schedule::BlockCyclic { chunk: 3 }, "block-cyclic"),
        (Schedule::Adaptive { min_chunk: 2 }, "adaptive"),
    ]
}

fn ranges() -> Vec<LoopRange> {
    vec![
        LoopRange::new(0, 37, 1),   // unit stride
        LoopRange::new(3, 50, 2),   // strided, offset start
        LoopRange::new(40, -1, -3), // negative step
        LoopRange::new(7, 8, 1),    // single iteration
    ]
}

#[test]
fn handouts_partition_iteration_space_for_every_schedule() {
    let _g = serialize();
    for (schedule, kind) in all_schedules() {
        for range in ranges() {
            for threads in [2, 3, 4] {
                let what = format!("{kind} over {range:?} with {threads} threads");
                let expect = seq_elements(range);
                let (events, visited) = run_captured(schedule, range, threads);
                assert!(
                    events.iter().all(|&(k, _, _)| k == kind),
                    "{what}: wrong kind in {events:?}"
                );
                assert_partition(&events, range.count(), &what);
                assert_eq!(visited, {
                    let mut e = expect;
                    e.sort_unstable();
                    e
                });
            }
        }
    }
}

#[test]
fn static_cyclic_handouts_are_single_iterations() {
    let _g = serialize();
    let range = LoopRange::new(0, 23, 1);
    let (events, _) = run_captured(Schedule::StaticCyclic, range, 3);
    assert!(!events.is_empty());
    for &(kind, lo, hi) in &events {
        assert_eq!(kind, "static-cyclic");
        assert_eq!(
            hi,
            lo + 1,
            "cyclic assignments are non-contiguous, so each handout must be one iteration"
        );
    }
}

#[test]
fn empty_range_emits_no_handouts() {
    let _g = serialize();
    for (schedule, kind) in all_schedules() {
        let (events, visited) = run_captured(schedule, LoopRange::new(5, 5, 1), 3);
        assert!(
            events.is_empty(),
            "{kind}: empty loop must hand out nothing, got {events:?}"
        );
        assert!(visited.is_empty());
    }
}

#[test]
fn handout_bounds_recover_elements() {
    // The documented way to map a handout back to elements: the event is
    // iteration-space, `LoopRange::element` converts. Spot-check with a
    // strided negative loop under the contiguous schedules.
    let _g = serialize();
    let range = LoopRange::new(40, -1, -3);
    for (schedule, _) in all_schedules() {
        let (events, _) = run_captured(schedule, range, 2);
        let expect = seq_elements(range);
        let mut from_events: Vec<i64> = events
            .iter()
            .flat_map(|&(_, lo, hi)| (lo..hi).map(|k| range.element(k)))
            .collect();
        from_events.sort_unstable();
        let mut e = expect;
        e.sort_unstable();
        assert_eq!(from_events, e);
    }
}
