//! The global sequential kill switch (`aomp::runtime::set_parallel_enabled`)
//! — the paper's sequential-semantics guarantee, testable at run time.
//! Lives in its own test binary because the switch is process-global.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static REGION_HITS: AtomicUsize = AtomicUsize::new(0);

#[parallel(threads = 4)]
fn annotated_region() {
    REGION_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn kill_switch_applies_to_both_styles() {
    // Annotation style.
    aomp::runtime::set_parallel_enabled(false);
    annotated_region();
    assert_eq!(
        REGION_HITS.load(Ordering::SeqCst),
        1,
        "disabled -> body runs once"
    );

    // Pointcut style.
    let hits = AtomicUsize::new(0);
    let aspect = AspectModule::builder("Kill")
        .bind(Pointcut::call("kill.jp"), Mechanism::parallel().threads(4))
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call("kill.jp", || {
            hits.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    // Re-enabled: the same code parallelises again.
    aomp::runtime::set_parallel_enabled(true);
    annotated_region();
    assert_eq!(REGION_HITS.load(Ordering::SeqCst), 1 + 4);
}
