//! Integration: the pooled team executor composes with the rest of the
//! library — constructs, thread-local fields, the weaver and the JGF
//! kernels all behave identically under `TeamPool`.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

#[test]
fn pool_with_for_and_reduce() {
    let pool = TeamPool::new(4);
    let field = ThreadLocalField::new(0i64);
    let for_c = ForConstruct::new(Schedule::StaticBlock);
    pool.parallel(|| {
        for_c.execute(LoopRange::upto(0, 1000), |lo, hi, step| {
            let mut local = 0;
            let mut i = lo;
            while i < hi {
                local += i;
                i += step;
            }
            field.update_or_init(|| 0, |v| *v += local);
        });
    });
    field.reduce(&SumReducer);
    assert_eq!(field.get_global(), (0..1000).sum::<i64>());
}

#[test]
fn pool_with_single_master_critical() {
    let pool = TeamPool::new(3);
    let single = Single::new();
    let master = Master::new();
    let crit = CriticalHandle::new();
    let singles = AtomicUsize::new(0);
    let masters = AtomicUsize::new(0);
    let crits = AtomicUsize::new(0);
    pool.parallel(|| {
        single.run(|| {
            singles.fetch_add(1, Ordering::SeqCst);
        });
        master.run(|| {
            masters.fetch_add(1, Ordering::SeqCst);
        });
        crit.run(|| {
            crits.fetch_add(1, Ordering::SeqCst);
        });
        barrier();
    });
    assert_eq!(singles.load(Ordering::SeqCst), 1);
    assert_eq!(masters.load(Ordering::SeqCst), 1);
    assert_eq!(crits.load(Ordering::SeqCst), 3);
}

#[test]
fn pool_repeated_regions_reuse_constructs() {
    let pool = TeamPool::new(2);
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 3 });
    let total = AtomicI64::new(0);
    for _ in 0..10 {
        pool.parallel(|| {
            for_c.execute(LoopRange::upto(0, 50), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    total.fetch_add(i, Ordering::Relaxed);
                    i += step;
                }
            });
        });
    }
    assert_eq!(total.load(Ordering::Relaxed), 10 * (0..50).sum::<i64>());
}

#[test]
fn pool_inside_weaver_woven_code() {
    // A pooled region can host woven join points (the weaver sees the
    // pool's team context like any other).
    let pool = TeamPool::new(3);
    let hits = AtomicUsize::new(0);
    let aspect = AspectModule::builder("PoolWeave")
        .bind(Pointcut::call("pool.it.master"), Mechanism::master())
        .build();
    Weaver::global().with_deployed(aspect, || {
        pool.parallel(|| {
            aomp_weaver::call("pool.it.master", || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            barrier();
        });
    });
    assert_eq!(
        hits.load(Ordering::SeqCst),
        1,
        "master gate works inside the pool"
    );
}

#[test]
fn pool_runs_jgf_kernel() {
    use aomplib::jgf::{self, Size};
    // Drive the Series for-method body through a pooled team manually.
    let n = jgf::series::coefficients_for(Size::Small);
    let seq = jgf::series::seq::run(n);
    let pool = TeamPool::new(4);
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    {
        let a_s = aomp::cell::SyncSlice::new(&mut a);
        let b_s = aomp::cell::SyncSlice::new(&mut b);
        let for_c = ForConstruct::new(Schedule::StaticCyclic);
        pool.parallel(|| {
            for_c.execute(LoopRange::upto(0, n as i64), |lo, hi, step| {
                let mut k = lo;
                while k < hi {
                    let (ak, bk) = jgf::series::coefficient_pair(k as usize);
                    // SAFETY: index k is schedule-owned.
                    unsafe {
                        a_s.set(k as usize, ak);
                        b_s.set(k as usize, bk);
                    }
                    k += step;
                }
            });
        });
    }
    assert_eq!(a, seq.coeffs[0]);
    assert_eq!(b, seq.coeffs[1]);
}

#[test]
fn user_owned_pool_is_distinct_from_the_runtime_cache() {
    // `TeamPool::parallel` dispatches to the pool the user constructed —
    // it must neither consult nor count against the runtime's hot-team
    // cache (whose counters only move for `region::parallel*` entries).
    let pool = TeamPool::new(6);
    let before = aomp::pool::hot_team_stats();
    for _ in 0..5 {
        let hits = AtomicUsize::new(0);
        pool.parallel(|| {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier();
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }
    let after = aomp::pool::hot_team_stats();
    assert_eq!(
        after.pooled_regions, before.pooled_regions,
        "TeamPool::parallel must not be counted as a cached-region entry"
    );
}
