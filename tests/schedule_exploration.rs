//! Schedule exploration of the runtime's construct combinations through
//! the public facade: bounded-exhaustive (DFS) enumeration of 2–3-thread
//! barrier + critical + reduction combos, and PCT exploration of the
//! cancellation/watchdog machinery (cancel racing a barrier entry, cancel
//! racing a dynamic chunk handout, a stall deadline racing a normal
//! join). Every test asserts the differential oracle (parallel result ==
//! sequential semantics) inside the explored closure; the invariant
//! oracles (barrier lockstep, broadcast source, critical alternation) run
//! automatically over every clean schedule's event log.

use aomp_check as check;
use aomplib::prelude::*;
use aomplib::runtime::reduction;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Barrier + critical combo, 2 threads: commutative updates on both sides
/// of a barrier, so every legal interleaving must land on the same total.
/// (A second *contended* critical after the barrier multiplies the space
/// to ~54k schedules — enumerable but slow — so the post-barrier side
/// uses an uncontended atomic instead.)
fn barrier_critical_combo() {
    let h = CriticalHandle::new();
    let total = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(2), || {
        h.run(|| {
            total.fetch_add(thread_id() + 1, Ordering::SeqCst);
        });
        barrier();
        total.fetch_add(10, Ordering::SeqCst);
    });
    // Sequential semantics: (1 + 2) before the barrier, 10 per member after.
    assert_eq!(total.load(Ordering::SeqCst), 23);
}

#[test]
fn dfs_exhausts_two_thread_barrier_critical_combo() {
    let report = check::Explorer::new()
        .races(true)
        .dfs(20_000, 64, barrier_critical_combo);
    report.assert_ok();
    assert!(
        !report.truncated,
        "2-thread combo must be enumerable within the budget"
    );
    assert!(report.schedules() > 1);
    assert_eq!(
        report.distinct_schedules(),
        report.schedules(),
        "DFS enumerated a duplicate interleaving"
    );
    // The enumeration itself is deterministic (same frontier both times).
    let again = check::Explorer::new()
        .races(true)
        .dfs(20_000, 64, barrier_critical_combo);
    assert_eq!(report.digests(), again.digests());
}

#[test]
fn dfs_exhausts_three_thread_critical_barrier_combo() {
    let report = check::Explorer::new().races(true).dfs(20_000, 10, || {
        let h = CriticalHandle::new();
        let total = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(3), || {
            h.run(|| {
                total.fetch_add(thread_id() + 1, Ordering::SeqCst);
            });
            barrier();
        });
        assert_eq!(total.load(Ordering::SeqCst), 6);
    });
    report.assert_ok();
    assert!(
        report.schedules() > 10,
        "3 threads must branch well past a handful of schedules, got {}",
        report.schedules()
    );
    assert_eq!(report.distinct_schedules(), report.schedules());
}

#[test]
fn random_schedules_preserve_reduction_semantics() {
    let reducer = SumReducer;
    check::Explorer::new()
        .races(true)
        .random(check::seeds_from_env(32), 0x2ED0CE, || {
            let n = 3;
            let body = |tid: usize| (tid + 1) * (tid + 1);
            let par =
                reduction::parallel_reduce(RegionConfig::new().threads(n), 0usize, &reducer, body);
            let seq = reduction::sequential_reduce(n, 0usize, &reducer, body);
            assert_eq!(par, seq, "reduction diverged from sequential semantics");
        })
        .assert_ok();
}

#[test]
fn fixed_schedule_makes_float_reduction_bitwise_deterministic() {
    // A schedule-sensitive reduction: three members fold 0.1/0.2/0.3 into
    // a shared accumulator in critical-section order, so the *bit pattern*
    // of the result depends on the interleaving. Under a fixed seed the
    // checker serialises that order, so replaying the seed must reproduce
    // the sum bitwise — the paper's determinism claim made schedule-local.
    let run_once = |seed: u64| -> (u64, u64) {
        let bits = Mutex::new(0u64);
        let run = check::Explorer::new().races(true).replay_random(seed, || {
            let h = CriticalHandle::new();
            let acc = Mutex::new(0.0f64);
            region::parallel_with(RegionConfig::new().threads(3), || {
                let v = (thread_id() as f64 + 1.0) * 0.1;
                h.run(|| {
                    *acc.lock().unwrap() += v;
                });
            });
            *bits.lock().unwrap() = acc.lock().unwrap().to_bits();
        });
        assert!(run.failure.is_none(), "{:?}", run.failure);
        let out = *bits.lock().unwrap();
        (out, run.trace.digest())
    };
    let mut sums = HashSet::new();
    for seed in 0..12u64 {
        let (a, da) = run_once(seed);
        let (b, db) = run_once(seed);
        assert_eq!(da, db, "seed {seed} did not replay the same schedule");
        assert_eq!(a, b, "seed {seed} gave two different bit patterns");
        sums.insert(a);
    }
    assert!(
        sums.len() >= 2,
        "the fold order must actually vary across seeds (got {} distinct \
         bit patterns); otherwise this test proves nothing",
        sums.len()
    );
}

#[test]
fn pct_cancel_racing_barrier_entry_is_never_lost() {
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(32), 0xCAB0, 3, || {
            let r =
                region::try_parallel_with(RegionConfig::new().threads(2).cancellable(true), || {
                    if thread_id() == 0 {
                        assert!(cancel_team());
                    }
                    barrier();
                });
            assert_eq!(
                r,
                Err(RegionError::Cancelled),
                "a cancel racing the barrier entry must cancel the region in \
             every interleaving"
            );
        })
        .assert_ok();
}

#[test]
fn pct_cancel_racing_dynamic_chunk_handout_stops_the_loop() {
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(32), 0xCA2C, 3, || {
            let seen = AtomicUsize::new(0);
            let r =
                region::try_parallel_with(RegionConfig::new().threads(2).cancellable(true), || {
                    for_c.execute(LoopRange::upto(0, 40), |_lo, _hi, _step| {
                        if seen.fetch_add(1, Ordering::SeqCst) == 5 {
                            assert!(cancel_team());
                        }
                    });
                });
            assert_eq!(r, Err(RegionError::Cancelled));
            let seen = seen.load(Ordering::SeqCst);
            assert!(seen > 5, "the trigger iteration ran, saw {seen}");
            assert!(
                seen < 40,
                "cancellation must beat the remaining chunk handouts in every \
             interleaving, saw {seen}"
            );
        })
        .assert_ok();
}

#[test]
fn dfs_race_oracle_stays_quiet_on_barrier_separated_phases() {
    // Tracked shared array, two threads, two phases separated by a
    // barrier: phase 1 writes the own half, phase 2 reads the *other*
    // half. Correctly synchronised, so the race oracle must stay silent
    // on every enumerated interleaving while still observing every
    // instrumented access.
    use aomplib::runtime::cell::SyncSlice;
    let report = check::Explorer::new().races(true).dfs(20_000, 64, || {
        let mut data = vec![0usize; 4];
        let total = AtomicUsize::new(0);
        {
            let arr = SyncSlice::tracked(&mut data, "explore.phased");
            region::parallel_with(RegionConfig::new().threads(2), || {
                let me = thread_id();
                // SAFETY: indices 2·me.. are owned by this member here.
                unsafe {
                    arr.set(2 * me, me + 1);
                    arr.set(2 * me + 1, me + 10);
                }
                barrier();
                let other = 1 - me;
                // SAFETY: reads of the other half are ordered by the barrier.
                let sum = unsafe { arr.read(2 * other) + arr.read(2 * other + 1) };
                total.fetch_add(sum, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 1 + 10 + 2 + 11);
    });
    report.assert_ok();
    assert!(report.schedules() > 1);
}

#[test]
fn pct_stall_deadline_never_fires_on_a_live_schedule() {
    // A healthy region under a generous stall deadline: no explored
    // interleaving may trip the watchdog (the checker's pauses are
    // microseconds of wall-clock; the deadline is seconds).
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(24), 0x57A11, 3, || {
            let hits = AtomicUsize::new(0);
            let r = region::try_parallel_with(
                RegionConfig::new()
                    .threads(2)
                    .stall_deadline(std::time::Duration::from_secs(30)),
                || {
                    hits.fetch_add(1, Ordering::SeqCst);
                    barrier();
                    hits.fetch_add(1, Ordering::SeqCst);
                },
            );
            assert_eq!(r, Ok(()), "the watchdog fired on a live schedule");
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        })
        .assert_ok();
}
