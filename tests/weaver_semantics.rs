//! Finer weaver semantics: mechanism precedence, multiple deployments on
//! one join point, registry introspection, and serde round-trips of the
//! simulator models.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn later_parallel_binding_wins_on_team_size() {
    // Two deployed modules both bind @Parallel to the same join point;
    // the plan keeps the later deployment's configuration.
    let seen = AtomicUsize::new(0);
    let w = Weaver::global();
    let h1 = w.deploy(
        AspectModule::builder("first")
            .bind(
                Pointcut::call("sem.par.double"),
                Mechanism::parallel().threads(2),
            )
            .build(),
    );
    let h2 = w.deploy(
        AspectModule::builder("second")
            .bind(
                Pointcut::call("sem.par.double"),
                Mechanism::parallel().threads(5),
            )
            .build(),
    );
    aomp_weaver::call("sem.par.double", || {
        seen.fetch_max(team_size(), Ordering::SeqCst);
    });
    w.undeploy(h1);
    w.undeploy(h2);
    assert_eq!(seen.load(Ordering::SeqCst), 5);
}

#[test]
fn barriers_wrap_outside_the_master_gate() {
    // Sequence check: with @Master + @BarrierBefore on one join point,
    // the barrier releases *before* the master body runs, so when a
    // worker passes the pre-barrier the master's previous-round effects
    // are complete.
    let w = Weaver::global();
    let log = parking_lot::Mutex::new(Vec::new());
    let h = w.deploy(
        AspectModule::builder("seq-order")
            .bind(
                Pointcut::call("sem.order.region"),
                Mechanism::parallel().threads(2),
            )
            .bind(Pointcut::call("sem.order.step"), Mechanism::master())
            .bind(
                Pointcut::call("sem.order.step"),
                Mechanism::barrier_before(),
            )
            .bind(Pointcut::call("sem.order.step"), Mechanism::barrier_after())
            .build(),
    );
    aomp_weaver::call("sem.order.region", || {
        for i in 0..5 {
            aomp_weaver::call("sem.order.step", || {
                log.lock().push(i);
            });
        }
    });
    w.undeploy(h);
    assert_eq!(
        *log.lock(),
        vec![0, 1, 2, 3, 4],
        "master steps are totally ordered by the barriers"
    );
}

#[test]
fn registry_introspection_reports_deployments() {
    let w = Weaver::global();
    let before = w.deployed_names();
    let h = w.deploy(AspectModule::builder("introspect-me").build());
    let after = w.deployed_names();
    assert_eq!(after.len(), before.len() + 1);
    assert!(after.contains(&"introspect-me".to_string()));
    assert!(w.is_deployed(h));
    w.undeploy(h);
    assert!(!w.is_deployed(h));
}

#[test]
fn dispatch_stats_accumulate_and_reset() {
    let w = Weaver::global();
    let h = w.deploy(
        AspectModule::builder("stats-sem")
            .bind(Pointcut::call("sem.stats.jp"), Mechanism::critical())
            .build(),
    );
    let base: u64 = w
        .stats()
        .iter()
        .find(|(n, _)| n == "sem.stats.jp")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    for _ in 0..7 {
        aomp_weaver::call("sem.stats.jp", || {});
    }
    let now = w
        .stats()
        .iter()
        .find(|(n, _)| n == "sem.stats.jp")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(now >= base + 7, "stats grew by at least the 7 dispatches");
    w.undeploy(h);
}

#[test]
fn value_join_point_with_locks_only() {
    // call_value through a critical mechanism (no gate): executes on the
    // calling thread under the lock.
    let w = Weaver::global();
    let h = w.deploy(
        AspectModule::builder("val-crit")
            .bind(Pointcut::call("sem.val.crit"), Mechanism::critical())
            .build(),
    );
    let v: u64 = aomp_weaver::call_value("sem.val.crit", || 99);
    assert_eq!(v, 99);
    w.undeploy(h);
}

#[test]
fn kind_pointcut_separates_for_and_plain() {
    // A Kind(ForMethod) pointcut work-shares every for method while
    // leaving plain calls alone.
    use aomplib::weaver::JoinPointKind;
    let w = Weaver::global();
    let h = w.deploy(
        AspectModule::builder("kind-sem")
            .bind(
                Pointcut::call("sem.kind.region"),
                Mechanism::parallel().threads(3),
            )
            .bind(
                Pointcut::kind(JoinPointKind::ForMethod).and(Pointcut::glob("sem.kind.*")),
                Mechanism::for_loop(Schedule::StaticBlock),
            )
            .build(),
    );
    let loop_hits = AtomicUsize::new(0);
    let plain_hits = AtomicUsize::new(0);
    aomp_weaver::call("sem.kind.region", || {
        aomp_weaver::call_for("sem.kind.loop", LoopRange::upto(0, 9), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                loop_hits.fetch_add(1, Ordering::SeqCst);
                i += step;
            }
        });
        aomp_weaver::call("sem.kind.plain", || {
            plain_hits.fetch_add(1, Ordering::SeqCst);
        });
    });
    w.undeploy(h);
    assert_eq!(
        loop_hits.load(Ordering::SeqCst),
        9,
        "for method work-shared exactly once"
    );
    assert_eq!(
        plain_hits.load(Ordering::SeqCst),
        3,
        "plain call replicated per thread"
    );
}

#[test]
fn simulator_models_serde_round_trip() {
    use aomplib::simcore::{Json, Machine, Program, Simulator};
    let machine = Machine::i7();
    let json = machine.to_json().to_string();
    let back = Machine::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
    assert_eq!(machine.cores, back.cores);
    assert_eq!(machine.name, back.name);

    let p = aomplib::simcore::models::crypt(1_000_000, false);
    let json = p.to_json().to_string();
    let back = Program::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
    let sim = Simulator::new(machine);
    assert_eq!(
        sim.run(&p, 4),
        sim.run(&back, 4),
        "deserialised model simulates identically"
    );
}

// ---------------------------------------------------------------------
// Paper §II: the inheritance anomaly. Parallelism must be retained
// across an interface's implementations — including ones added later by
// a user — without touching any implementation.
// ---------------------------------------------------------------------

/// The "Particle" interface of the paper's LAMMPS discussion.
trait ForceKernel: Sync {
    fn kind(&self) -> &'static str;
    /// Each implementation exposes its execution as the interface-level
    /// join point `ForceKernel.<kind>.compute`.
    fn compute(&self, hits: &AtomicUsize) {
        let name = format!("ForceKernel.{}.compute", self.kind());
        aomp_weaver::call(&name, || {
            self.compute_body(hits);
        });
    }
    fn compute_body(&self, hits: &AtomicUsize);
}

struct LennardJones;
impl ForceKernel for LennardJones {
    fn kind(&self) -> &'static str {
        "LJ"
    }
    fn compute_body(&self, hits: &AtomicUsize) {
        hits.fetch_add(1, Ordering::SeqCst);
    }
}

struct Coulomb;
impl ForceKernel for Coulomb {
    fn kind(&self) -> &'static str {
        "Coulomb"
    }
    fn compute_body(&self, hits: &AtomicUsize) {
        hits.fetch_add(10, Ordering::SeqCst);
    }
}

/// A "user-provided implementation" (the case §II says breaks
/// code-injection approaches): defined after the aspect, never mentioned
/// by it explicitly.
struct UserSupplied;
impl ForceKernel for UserSupplied {
    fn kind(&self) -> &'static str {
        "UserSupplied"
    }
    fn compute_body(&self, hits: &AtomicUsize) {
        hits.fetch_add(100, Ordering::SeqCst);
    }
}

#[test]
fn interface_pointcut_survives_new_implementations() {
    let w = Weaver::global();
    // One pointcut over the interface parallelises every implementation.
    let h = w.deploy(
        AspectModule::builder("InterfaceForce")
            .bind(
                Pointcut::glob("ForceKernel.*.compute"),
                Mechanism::parallel().threads(3),
            )
            .build(),
    );
    let hits = AtomicUsize::new(0);
    let kernels: Vec<Box<dyn ForceKernel>> = vec![
        Box::new(LennardJones),
        Box::new(Coulomb),
        Box::new(UserSupplied),
    ];
    for k in &kernels {
        k.compute(&hits);
    }
    w.undeploy(h);
    // Each implementation ran on a team of 3 — including the one the
    // aspect author never saw.
    assert_eq!(hits.load(Ordering::SeqCst), 3 * (1 + 10 + 100));
    // Unplugged: sequential, still correct.
    let hits2 = AtomicUsize::new(0);
    for k in &kernels {
        k.compute(&hits2);
    }
    assert_eq!(hits2.load(Ordering::SeqCst), 111);
}
