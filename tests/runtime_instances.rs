//! Explicit runtime instances: two [`Runtime`]s coexist in one process
//! sharing nothing — not hot teams, not executor workers, not counters —
//! nested regions inherit the enclosing runtime, and dropping a runtime
//! joins its threads within a bounded time.
//!
//! Every test takes [`SERIAL`]: some assert on process thread counts or
//! mutate the default runtime, and the rest stay out of their way.

use aomp::obs::Counter;
use aomp::pool::HotTeamStats;
use aomp::region::RegionConfig;
use aomp::{ctx, region, runtime, Runtime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn two_runtimes_observe_disjoint_counters() {
    let _s = serial();
    let a = Runtime::builder().threads(3).build();
    let b = Runtime::builder().threads(3).pooled(false).build();

    // Same team size on both, concurrently: if the hot-team cache or the
    // counters were shared, attribution below would bleed across.
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..3 {
                let hits = AtomicUsize::new(0);
                a.parallel(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    ctx::barrier();
                });
                assert_eq!(hits.load(Ordering::SeqCst), 3);
            }
        });
        s.spawn(|| {
            for _ in 0..2 {
                let hits = AtomicUsize::new(0);
                b.parallel(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    ctx::barrier();
                });
                assert_eq!(hits.load(Ordering::SeqCst), 3);
            }
        });
    });

    let sa = a.hot_team_stats();
    assert_eq!(
        (sa.pooled_regions, sa.spawned_regions, sa.teams_created),
        (3, 0, 1),
        "runtime A: 3 pooled regions off one cached team, got {sa:?}"
    );
    let sb = b.hot_team_stats();
    assert_eq!(
        (sb.pooled_regions, sb.spawned_regions, sb.teams_created),
        (0, 2, 0),
        "runtime B (pool off): 2 spawned regions, got {sb:?}"
    );

    // Per-runtime metrics snapshots attribute the same way.
    assert_eq!(a.metrics_snapshot().counter(Counter::RegionPooled), 3);
    assert_eq!(b.metrics_snapshot().counter(Counter::RegionSpawned), 2);
    assert_eq!(b.metrics_snapshot().counter(Counter::PoolCacheMiss), 0);
}

#[test]
fn nested_region_inherits_the_enclosing_runtime() {
    let _s = serial();
    let rt = Runtime::builder().threads(4).build();
    let inner_sizes = Mutex::new(Vec::new());

    rt.parallel_with(RegionConfig::new().threads(2).nested(true), || {
        if ctx::thread_id() == 0 {
            // Free-function entry, no explicit runtime: must resolve to
            // `rt` (the member thread's ambient runtime), not the
            // process default — so the team size is rt's default of 4.
            region::parallel(|| {
                if ctx::thread_id() == 0 {
                    inner_sizes.lock().unwrap().push(ctx::team_size());
                }
            });
        }
        ctx::barrier();
    });

    assert_eq!(*inner_sizes.lock().unwrap(), vec![4]);
    let stats = rt.hot_team_stats();
    assert_eq!(stats.pooled_regions, 1, "outer region pooled: {stats:?}");
    assert_eq!(
        stats.spawned_regions, 1,
        "inner nested region spawned on rt, not on the default runtime: {stats:?}"
    );
}

#[test]
fn spawned_tasks_inherit_the_spawning_runtime() {
    let _s = serial();
    let rt = Runtime::builder().threads(2).build();
    let done = std::sync::mpsc::channel();
    let tx = done.0;
    rt.spawn(move || {
        // The task body runs with the spawning runtime entered, so a
        // nested free-function spawn lands on the same executor.
        let inner_tx = tx.clone();
        aomp::task::spawn(move || {
            inner_tx.send(ctx::team_size()).unwrap();
        });
    });
    done.1
        .recv_timeout(Duration::from_secs(10))
        .expect("nested task ran");
    let snap = rt.metrics_snapshot();
    assert_eq!(
        snap.counter(Counter::TaskSpawned),
        2,
        "both the explicit and the nested spawn dispatch through rt"
    );
}

/// Thread ids (`/proc/self/task`) present right now, for the bounded
/// join assertion below. Linux-only, which CI is.
#[cfg(target_os = "linux")]
fn live_tids() -> std::collections::HashSet<String> {
    std::fs::read_dir("/proc/self/task")
        .expect("/proc/self/task")
        .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
        .collect()
}

#[cfg(target_os = "linux")]
#[test]
fn dropping_a_runtime_joins_its_threads() {
    let _s = serial();
    let before = live_tids();

    let rt = Runtime::builder().threads(3).build();
    // Materialise both thread populations: a pooled team (parked on the
    // cache after the region) and at least one executor worker.
    rt.parallel(|| {
        ctx::barrier();
    });
    let (tx, rx) = std::sync::mpsc::channel();
    rt.spawn(move || tx.send(()).unwrap());
    rx.recv_timeout(Duration::from_secs(10)).expect("task ran");

    let during = live_tids();
    let born: Vec<String> = during.difference(&before).cloned().collect();
    assert!(
        !born.is_empty(),
        "the runtime should have spawned pool/executor threads"
    );

    drop(rt);

    // Drop joins the executor synchronously and tears down cached teams;
    // give stragglers a bounded grace period rather than a fixed sleep.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = live_tids();
        let leftover: Vec<&String> = born.iter().filter(|t| now.contains(*t)).collect();
        if leftover.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "threads {leftover:?} outlived their runtime's drop"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn set_default_threads_affects_only_the_default_runtime() {
    let _s = serial();
    let rt = Runtime::builder().threads(3).build();
    let prev = runtime::default_threads();
    runtime::set_default_threads(7);
    assert_eq!(runtime::default_threads(), 7);
    assert_eq!(
        rt.default_threads(),
        3,
        "builder-configured runtimes ignore default-runtime mutation"
    );
    rt.set_default_threads(5);
    assert_eq!(runtime::default_threads(), 7, "and vice versa");
    runtime::set_default_threads(prev);
}

#[test]
fn builder_ignores_env_knobs() {
    let _s = serial();
    // Env vars seed the *default* runtime once at first use; the builder
    // never consults them.
    std::env::set_var("AOMP_NUM_THREADS", "193");
    std::env::set_var("AOMP_NO_POOL", "1");
    let rt = Runtime::builder().build();
    assert_ne!(rt.default_threads(), 193);
    assert!(rt.pool_enabled());
    std::env::remove_var("AOMP_NUM_THREADS");
    std::env::remove_var("AOMP_NO_POOL");
}

#[test]
fn metrics_off_runtime_reads_zero() {
    let _s = serial();
    let rt = Runtime::builder().threads(2).metrics(false).build();
    rt.parallel(|| {
        ctx::barrier();
    });
    assert_eq!(rt.hot_team_stats(), HotTeamStats::default());
    assert_eq!(rt.metrics_snapshot().counter(Counter::RegionPooled), 0);
}

static MACRO_RT: OnceLock<Runtime> = OnceLock::new();

fn macro_rt() -> &'static Runtime {
    MACRO_RT.get_or_init(|| Runtime::builder().threads(2).build())
}

#[aomp_macros::parallel(runtime = macro_rt().clone())]
fn annotated_region(hits: &AtomicUsize) {
    hits.fetch_add(1, Ordering::SeqCst);
    ctx::barrier();
}

#[test]
fn parallel_macro_accepts_a_runtime_argument() {
    let _s = serial();
    let hits = AtomicUsize::new(0);
    annotated_region(&hits);
    assert_eq!(hits.load(Ordering::SeqCst), 2, "team size comes from rt");
    assert!(macro_rt().hot_team_stats().pooled_regions >= 1);
}

#[test]
fn region_config_runtime_pins_the_region() {
    let _s = serial();
    let rt = Runtime::builder().threads(2).build();
    let sizes = Mutex::new(Vec::new());
    // Free function + explicit cfg.runtime: no `enter` needed.
    region::parallel_with(RegionConfig::new().runtime(&rt), || {
        if ctx::thread_id() == 0 {
            sizes.lock().unwrap().push(ctx::team_size());
        }
    });
    assert_eq!(*sizes.lock().unwrap(), vec![2]);
    assert_eq!(rt.hot_team_stats().pooled_regions, 1);
}

#[test]
fn enter_guard_redirects_free_functions() {
    let _s = serial();
    let rt = Runtime::builder().threads(3).build();
    {
        let _g = rt.enter();
        region::parallel(|| {
            ctx::barrier();
        });
    }
    assert_eq!(rt.hot_team_stats().pooled_regions, 1);
    // Guard dropped: free functions are back on the default runtime.
    assert_ne!(runtime::default_threads(), 0);
}
