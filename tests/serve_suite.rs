//! Integration suite for `aomp-serve`: tenant isolation under schedule
//! exploration (one tenant's faults never perturb another's counter
//! scope), deterministic overload shedding, deadline propagation,
//! cooperative retry, and fault-injection liveness.
//!
//! The exploration tests honour `AOMP_CHECK_SEEDS`; fault plans are
//! seeded, so every run replays the same per-request fault decisions.

use aomp_check as check;
use aomp_serve::{loadgen, Backoff, FaultPlan, Request, ServeError, Server, TenantSpec, Workload};
use aomplib::runtime::obs::Counter;
use std::time::{Duration, Instant};

const LONG: Duration = Duration::from_secs(30);

fn two_tenant_server(aggressor_faults: FaultPlan) -> Server {
    Server::config()
        .graph(512, 6, 9)
        .tenant(
            TenantSpec::new("aggressor")
                .threads(2)
                .queue_capacity(4)
                .default_deadline(LONG)
                .faults(aggressor_faults),
        )
        .tenant(
            TenantSpec::new("victim")
                .threads(2)
                .queue_capacity(4)
                .default_deadline(LONG),
        )
        .build()
}

/// The tenant-isolation invariant, explored over schedules: tenant 0
/// cancels every request it admits, tenant 1 runs clean work, and after
/// both resolve the victim's counter scope must show exactly its own
/// activity — no shed, no fault, no deadline miss leaked across the
/// runtime boundary.
#[test]
fn exploration_cancel_in_one_tenant_never_perturbs_the_other() {
    check::Explorer::new()
        .races(true)
        .random(check::seeds_from_env(8), 0x5E21E, || {
            let srv = two_tenant_server(FaultPlan::none().seed(3).cancel_fraction(1.0));
            let before_victim = srv.tenant_runtime(1).metrics_snapshot();
            let before_aggr = srv.tenant_runtime(0).metrics_snapshot();
            let w = Workload::SumRange { n: 4_000 };
            let aggr = srv.submit(0, Request::new(w)).expect("admitted");
            let victim = srv.submit(1, Request::new(w)).expect("admitted");
            assert_eq!(
                victim.wait().expect("victim must complete"),
                srv.expected_output(w)
            );
            assert!(matches!(aggr.wait(), Err(ServeError::Cancelled)));
            assert!(srv.drain(LONG), "server failed to drain");
            check::oracle::check_tenant_isolation(
                &before_victim,
                &srv.tenant_runtime(1).metrics_snapshot(),
                &[(Counter::ServeAccepted, 1), (Counter::ServeCompleted, 1)],
                &[
                    Counter::ServeShed,
                    Counter::ServeFaulted,
                    Counter::ServeDeadlineMissed,
                    Counter::ServeFaultInjected,
                ],
            )
            .expect("victim scope perturbed by neighbour's cancellation");
            check::oracle::check_tenant_isolation(
                &before_aggr,
                &srv.tenant_runtime(0).metrics_snapshot(),
                &[
                    (Counter::ServeFaulted, 1),
                    (Counter::ServeFaultInjected, 1),
                    (Counter::ServeCompleted, 0),
                ],
                &[],
            )
            .expect("aggressor scope must record its own fault exactly once");
        })
        .assert_ok();
}

/// Same invariant with a panicking aggressor, explored under PCT (the
/// preemption-bounded searcher reaches panic/unwind interleavings the
/// uniform sampler tends to miss).
#[test]
fn exploration_panic_in_one_tenant_never_perturbs_the_other() {
    check::Explorer::new()
        .races(true)
        .pct(check::seeds_from_env(8), 0xA0317, 3, || {
            let srv = two_tenant_server(FaultPlan::none().seed(5).panic_fraction(1.0));
            let before_victim = srv.tenant_runtime(1).metrics_snapshot();
            let w = Workload::DegreeSum { rounds: 1 };
            let aggr = srv.submit(0, Request::new(w)).expect("admitted");
            let victim = srv.submit(1, Request::new(w)).expect("admitted");
            assert_eq!(
                victim.wait().expect("victim must complete"),
                srv.expected_output(w)
            );
            assert!(matches!(aggr.wait(), Err(ServeError::Faulted { .. })));
            assert!(srv.drain(LONG), "server failed to drain");
            check::oracle::check_tenant_isolation(
                &before_victim,
                &srv.tenant_runtime(1).metrics_snapshot(),
                &[(Counter::ServeAccepted, 1), (Counter::ServeCompleted, 1)],
                &[
                    Counter::ServeShed,
                    Counter::ServeFaulted,
                    Counter::ServeDeadlineMissed,
                ],
            )
            .expect("victim scope perturbed by neighbour's panic");
        })
        .assert_ok();
}

/// Deterministic overload: a burst of 24 requests against capacity 3
/// must shed some, resolve every accepted one, and keep the counter
/// choreography `accepted == completed + missed + faulted` exact. The
/// accepted requests' observed p99 stays within the (generous) deadline
/// — overload degrades by rejection, not by queue collapse.
#[test]
fn burst_overload_sheds_and_accepted_requests_stay_fast() {
    let srv = Server::config()
        .graph(512, 6, 2)
        .tenant(
            TenantSpec::new("hot")
                .threads(2)
                .queue_capacity(3)
                .default_deadline(LONG),
        )
        .build();
    let w = Workload::SumRange { n: 100_000 };
    let mut handles = Vec::new();
    let mut shed = 0u64;
    for _ in 0..24 {
        match srv.submit(0, Request::new(w)) {
            Ok(h) => handles.push((Instant::now(), h)),
            Err(ServeError::Shed { retry_after, .. }) => {
                assert!(retry_after >= Duration::from_millis(1));
                shed += 1;
            }
            Err(other) => panic!("unexpected submit outcome: {other}"),
        }
    }
    assert!(shed > 0, "a 24-deep burst against capacity 3 must shed");
    let mut waits: Vec<Duration> = Vec::new();
    for (submitted, h) in handles {
        h.wait().expect("accepted request must complete");
        waits.push(submitted.elapsed());
    }
    assert!(srv.drain(LONG));
    waits.sort_unstable();
    let p99 = waits[(waits.len() * 99 / 100).min(waits.len() - 1)];
    assert!(p99 < LONG, "accepted p99 {p99:?} blew the deadline");
    let snap = srv.tenant_runtime(0).metrics_snapshot();
    assert_eq!(snap.counter(Counter::ServeShed), shed);
    assert_eq!(
        snap.counter(Counter::ServeAccepted),
        snap.counter(Counter::ServeCompleted)
            + snap.counter(Counter::ServeDeadlineMissed)
            + snap.counter(Counter::ServeFaulted),
        "counter choreography broken after drain"
    );
}

/// Deadline propagation: a request whose budget cannot cover its work
/// resolves as `DeadlineExceeded` instead of hanging, and the miss is
/// attributed to the right counter.
#[test]
fn impossible_deadline_resolves_as_deadline_exceeded() {
    let srv = Server::config()
        .graph(512, 6, 4)
        .tenant(TenantSpec::new("t").threads(2).queue_capacity(2))
        .build();
    let req =
        Request::new(Workload::SumRange { n: 80_000_000 }).deadline(Duration::from_millis(10));
    let started = Instant::now();
    match srv.submit(0, req).expect("admitted").wait() {
        Err(ServeError::DeadlineExceeded { budget, .. }) => {
            assert_eq!(budget, Duration::from_millis(10))
        }
        other => panic!("expected a deadline miss, got {other:?}"),
    }
    assert!(
        started.elapsed() < LONG,
        "deadline miss took unreasonably long to surface"
    );
    assert!(srv.drain(LONG));
    let snap = srv.tenant_runtime(0).metrics_snapshot();
    assert_eq!(snap.counter(Counter::ServeDeadlineMissed), 1);
    assert_eq!(snap.counter(Counter::ServeCompleted), 0);
}

/// Cooperative retry: with capacity 1 and a slow request holding the
/// slot, a second client's jittered-backoff resubmission eventually
/// lands, and the retries are visible in the tenant's scope.
#[test]
fn shed_request_lands_after_backoff_retries() {
    let srv = Server::config()
        .graph(512, 6, 5)
        .tenant(
            TenantSpec::new("narrow")
                .threads(1)
                .queue_capacity(1)
                .default_deadline(LONG),
        )
        .build();
    let slow = srv
        .submit(0, Request::new(Workload::SumRange { n: 30_000_000 }))
        .expect("slot free");
    let policy = Backoff {
        base: Duration::from_millis(2),
        max_attempts: 200,
        max_delay: Duration::from_millis(50),
        ..Backoff::default()
    };
    let fast = Request::new(Workload::SumRange { n: 1_000 });
    let handle = aomp_serve::submit_with_retry(&srv, 0, &fast, &policy)
        .expect("retry must eventually land once the slow request drains");
    handle.wait().expect("retried request must complete");
    slow.wait().expect("slow request must complete");
    assert!(srv.drain(LONG));
    let snap = srv.tenant_runtime(0).metrics_snapshot();
    assert_eq!(snap.counter(Counter::ServeCompleted), 2);
    // The narrow tenant may or may not have shed depending on timing of
    // the first submit; if it shed, retries must be recorded.
    assert_eq!(
        snap.counter(Counter::ServeShed) > 0,
        snap.counter(Counter::ServeRetries) > 0,
        "sheds and retries must appear together"
    );
}

/// Liveness under a mixed fault storm: panics and cancels injected into
/// a third of all requests, yet the server drains, keeps its books
/// balanced, and still serves clean traffic afterwards.
#[test]
fn fault_storm_leaves_server_live_and_books_balanced() {
    let srv = Server::config()
        .graph(512, 6, 6)
        .tenant(
            TenantSpec::new("stormy")
                .threads(2)
                .queue_capacity(16)
                .default_deadline(LONG)
                .faults(
                    FaultPlan::none()
                        .seed(0xFA_177)
                        .panic_fraction(0.2)
                        .cancel_fraction(0.15),
                ),
        )
        .build();
    let w = Workload::SumRange { n: 20_000 };
    let handles: Vec<_> = (0..40)
        .filter_map(|_| srv.submit(0, Request::new(w)).ok())
        .collect();
    for h in handles {
        match h.wait() {
            Ok(out) => assert_eq!(out, srv.expected_output(w)),
            Err(ServeError::Faulted { .. }) | Err(ServeError::Cancelled) => {}
            Err(other) => panic!("unexpected outcome under fault storm: {other}"),
        }
    }
    assert!(srv.drain(LONG), "fault storm wedged the server");
    let snap = srv.tenant_runtime(0).metrics_snapshot();
    assert!(
        snap.counter(Counter::ServeFaultInjected) > 0,
        "a 35% plan over 40 requests must inject"
    );
    assert_eq!(
        snap.counter(Counter::ServeAccepted),
        snap.counter(Counter::ServeCompleted)
            + snap.counter(Counter::ServeDeadlineMissed)
            + snap.counter(Counter::ServeFaulted),
        "fault storm broke the counter choreography"
    );
    // Still live: a clean request completes and validates.
    let out = srv
        .submit(0, Request::new(w))
        .map(|h| h.wait())
        .expect("admitted");
    // The fault plan still applies to this request; accept either a
    // clean completion or its injected fault — liveness is the claim.
    if let Ok(v) = out {
        assert_eq!(v, srv.expected_output(w));
    }
    assert!(srv.drain(LONG));
}

/// The closed-loop load generator against a two-tenant server: both
/// tenants make progress and the aggregated stats stay consistent.
#[test]
fn loadgen_closed_loop_over_two_tenants_is_consistent() {
    let srv = two_tenant_server(FaultPlan::none());
    let stats = loadgen::run(
        &srv,
        &loadgen::LoadConfig {
            mode: loadgen::Mode::Closed { concurrency: 2 },
            duration: Duration::from_millis(250),
            tenants: vec![0, 1],
            deadline: Duration::from_secs(10),
            workload: Workload::SumRange { n: 10_000 },
            retry: Some(Backoff::default()),
        },
    );
    assert!(stats.completed > 0);
    assert!(stats.counters_consistent(), "{stats:?}");
    for t in 0..2 {
        assert!(
            srv.tenant_runtime(t)
                .metrics_snapshot()
                .counter(Counter::ServeCompleted)
                > 0,
            "tenant {t} starved"
        );
    }
}
