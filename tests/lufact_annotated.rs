//! The paper's Figure 8 (annotation-style LUFact) under several explicit
//! team sizes. Lives in its own test binary because the bare `@Parallel`
//! takes the *process-global* default thread count, which this test
//! varies.

use aomplib::jgf::{lufact, Size};

#[test]
fn figure8_annotated_lufact_for_several_team_sizes() {
    let d = lufact::generate(Size::Small);
    let s = lufact::seq::run(&d);
    assert!(lufact::validate(&d, &s));
    for t in [1usize, 2, 3, 5] {
        aomp::runtime::set_default_threads(t);
        let r = lufact::annotated::run(&d);
        assert!(lufact::validate(&d, &r), "t={t}");
        assert_eq!(r.ipvt, s.ipvt, "t={t}");
        assert_eq!(r.x, s.x, "t={t}");
    }
    // Also equivalent to the pointcut style (paper: the two styles
    // express the same aspects).
    aomp::runtime::set_default_threads(4);
    let annotated = lufact::annotated::run(&d);
    let pointcut = lufact::aomp::run(&d, 4);
    assert_eq!(annotated.x, pointcut.x);
}
