//! Integration tests for `aomp::obs`: metrics deltas over real kernels,
//! steal accounting under a task burst, and chrome://tracing export.
//!
//! Metrics and the trace recorder are process-global, so every test
//! takes a file-local lock and asserts with `>=` (activity from the
//! serialized neighbours only ever adds).

use aomplib::prelude::*;
use aomplib::runtime::obs::{self, Counter, Lat};
use aomplib::simcore::Json;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// A small SOR-flavoured kernel: dynamic-scheduled loop, barrier,
/// critical, and a future task — touching every counter family the
/// acceptance criteria name.
fn kernel() -> i64 {
    let sum = AtomicI64::new(0);
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 8 });
    region::parallel_with(RegionConfig::new().threads(4), || {
        for_c.execute(LoopRange::new(0, 256, 1), |lo, hi, step| {
            let mut local = 0;
            let mut i = lo;
            while i < hi {
                local += i;
                i += step;
            }
            sum.fetch_add(local, Ordering::Relaxed);
        });
        barrier();
        critical_named("obs-test", || {
            sum.fetch_add(1, Ordering::Relaxed);
        });
        if thread_id() == 0 {
            // TaskJoin events are team-scoped: join the future in-team.
            let fut = task::spawn_future(|| 17);
            sum.fetch_add(fut.get(), Ordering::Relaxed);
        }
    });
    sum.load(Ordering::Relaxed)
}

#[test]
fn kernel_delta_reports_nonzero_counters() {
    let _g = serialize();
    obs::set_metrics(true);
    let before = obs::snapshot();
    let v = kernel();
    let delta = obs::snapshot().since(&before);
    obs::set_metrics(false);

    assert_eq!(v, (0..256).sum::<i64>() + 4 + 17);
    let regions = delta.counter(Counter::RegionPooled) + delta.counter(Counter::RegionSpawned);
    assert!(regions >= 1, "no region counted:\n{}", delta.render_text());
    assert!(
        delta.counter(Counter::ChunkDynamic) >= 4,
        "dynamic handouts"
    );
    assert!(delta.counter(Counter::BarrierRounds) >= 4, "barrier rounds");
    assert!(delta.counter(Counter::CriticalAcquired) >= 4, "criticals");
    assert!(delta.counter(Counter::TaskSpawned) >= 1, "task spawn");
    assert!(delta.counter(Counter::TaskJoins) >= 1, "future get join");
    // The barrier wait histogram saw the same rounds.
    assert!(delta.hist(Lat::WaitBarrier).count() >= 4);
    // Region round-trips were timed for whichever executor served them.
    let timed = delta.hist(Lat::RegionPooled).count()
        + delta.hist(Lat::RegionSpawned).count()
        + delta.hist(Lat::RegionInline).count();
    assert!(timed >= 1);
}

#[test]
fn task_burst_records_steals_and_dispatch_outcomes() {
    let _g = serialize();
    obs::set_metrics(true);
    let before = obs::snapshot();
    let group = TaskGroup::new();
    for _ in 0..200 {
        group.spawn(|| {
            std::hint::black_box(0u64);
        });
    }
    group.wait();
    let delta = obs::snapshot().since(&before);
    obs::set_metrics(false);

    assert!(delta.counter(Counter::TaskSpawned) >= 200);
    let placed = delta.counter(Counter::TaskPooled)
        + delta.counter(Counter::TaskDedicated)
        + delta.counter(Counter::TaskInline)
        + delta.counter(Counter::TaskRefusedDisabled);
    assert!(
        placed >= 200,
        "every spawn has a dispatch outcome:\n{}",
        delta.render_text()
    );
    // Submissions are spread round-robin over every worker queue while
    // only claimed workers pop, so a 200-task burst cannot drain without
    // cross-queue pops (unless the pool was disabled by a neighbour).
    if delta.counter(Counter::TaskPooled) >= 100 {
        assert!(
            delta.counter(Counter::TaskStolen) >= 1,
            "no steals in a 200-task burst:\n{}",
            delta.render_text()
        );
    }
}

#[test]
fn metrics_render_json_is_valid() {
    let _g = serialize();
    let doc = Json::parse(&obs::render_json()).expect("render_json parses");
    let counters = doc.get("counters").expect("counters object");
    for c in Counter::ALL {
        assert!(
            counters.get(c.name()).and_then(Json::as_f64).is_some(),
            "counter {} missing",
            c.name()
        );
    }
    let lat = doc.get("latency_ns").expect("latency_ns object");
    for l in Lat::ALL {
        let h = lat
            .get(l.name())
            .unwrap_or_else(|| panic!("hist {} missing", l.name()));
        for field in ["count", "sum", "mean", "p50", "p99"] {
            assert!(h.get(field).is_some(), "{}.{field} missing", l.name());
        }
    }
}

#[test]
fn hot_team_stats_is_a_view_of_the_registry() {
    let _g = serialize();
    // Always-on counters: no set_metrics needed, exactly as before obs.
    let before = aomplib::runtime::pool::hot_team_stats();
    region::parallel_with(RegionConfig::new().threads(2), || {
        std::hint::black_box(());
    });
    let after = aomplib::runtime::pool::hot_team_stats();
    assert!(
        after.pooled_regions + after.spawned_regions
            > before.pooled_regions + before.spawned_regions
    );
    let snap = obs::snapshot();
    assert_eq!(snap.counter(Counter::RegionPooled), after.pooled_regions);
    assert_eq!(snap.counter(Counter::TeamsCreated), after.teams_created);
}

#[test]
fn trace_exports_loadable_chrome_json() {
    let _g = serialize();
    obs::trace::start();
    assert!(obs::trace::running());
    let for_c = ForConstruct::new(Schedule::StaticBlock);
    region::parallel_with(RegionConfig::new().threads(3), || {
        for_c.execute(LoopRange::new(0, 30, 1), |lo, hi, _step| {
            std::hint::black_box(hi - lo);
        });
        barrier();
        critical_named("obs-trace", || {});
    });
    let path = std::env::temp_dir().join("aomp-obs-trace-test.json");
    let path = path.to_str().expect("utf-8 temp path");
    let n = obs::trace::stop_to_file(path).expect("trace written");
    assert!(!obs::trace::running());
    assert!(n > 0, "trace captured no events");

    let text = std::fs::read_to_string(path).expect("trace readable");
    let doc = Json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut names = std::collections::HashSet::new();
    for ev in events {
        // Every event carries the chrome://tracing required fields.
        assert!(ev.get("ph").and_then(Json::as_str).is_some());
        assert!(ev.get("pid").is_some());
        assert!(ev.get("tid").is_some());
        if ev.get("ph").and_then(Json::as_str) != Some("M") {
            assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        }
        if let Some(name) = ev.get("name").and_then(Json::as_str) {
            names.insert(name.to_owned());
        }
    }
    assert!(names.contains("region"), "region slices in {names:?}");
    assert!(
        names.contains("chunk:static-block"),
        "handout instants in {names:?}"
    );
    assert!(
        names.contains("barrier-exit"),
        "barrier instants in {names:?}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn wait_histograms_grow_under_contention() {
    let _g = serialize();
    obs::set_metrics(true);
    let before = obs::snapshot();
    let h = CriticalHandle::new();
    region::parallel_with(RegionConfig::new().threads(4), || {
        // Line every member up, then hold the lock long enough that the
        // other three must find it taken at least once.
        barrier();
        for _ in 0..20 {
            h.run(|| std::thread::sleep(std::time::Duration::from_micros(200)));
        }
        barrier();
    });
    let delta = obs::snapshot().since(&before);
    obs::set_metrics(false);
    assert!(delta.counter(Counter::CriticalAcquired) >= 80);
    assert!(delta.hist(Lat::WaitBarrier).count() >= 4);
    // 4 threads hammering one lock: at least one acquire must have found
    // it held (the contention probe) or blocked long enough to time.
    assert!(
        delta.counter(Counter::CriticalContended) >= 1
            || delta.hist(Lat::WaitCritical).count() >= 1
    );
}
