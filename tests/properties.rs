//! Randomised property tests over the core invariants: schedule
//! partitions, dynamic/guided dispensing, reductions, barriers,
//! thread-local fields and the simulator.
//!
//! Formerly proptest-based; now seeded deterministic loops over the same
//! invariants (the workspace builds offline, with no proptest
//! dependency), so every failure reproduces from the printed case.

use aomplib::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};

const CASES: u64 = 64;

/// A sane random loop range (positive or negative step).
fn loop_range(rng: &mut StdRng) -> LoopRange {
    let start = rng.gen_range(-200i64..200);
    let step = rng.gen_range(1i64..64);
    let span = rng.gen_range(0i64..500);
    if rng.gen_bool(0.5) {
        LoopRange::new(start, start - span, -step)
    } else {
        LoopRange::new(start, start + span, step)
    }
}

#[test]
fn static_block_partitions_every_range() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let range = loop_range(&mut rng);
        let threads = rng.gen_range(1usize..9);
        let mut seen = Vec::new();
        for tid in 0..threads {
            seen.extend(aomp::schedule::static_block_range(range, tid, threads).iter());
        }
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        assert_eq!(seen, expect, "seed {seed}: {range:?} x{threads}");
    }
}

#[test]
fn static_cyclic_partitions_every_range() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let range = loop_range(&mut rng);
        let threads = rng.gen_range(1usize..9);
        let mut seen = Vec::new();
        for tid in 0..threads {
            seen.extend(aomp::schedule::static_cyclic_range(range, tid, threads).iter());
        }
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        assert_eq!(seen, expect, "seed {seed}: {range:?} x{threads}");
    }
}

#[test]
fn block_assignments_are_disjoint() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let range = loop_range(&mut rng);
        let threads = rng.gen_range(2usize..9);
        let mut all = HashSet::new();
        for tid in 0..threads {
            for v in aomp::schedule::static_block_range(range, tid, threads).iter() {
                assert!(all.insert(v), "seed {seed}: element {v} assigned twice");
            }
        }
    }
}

#[test]
fn dynamic_for_covers_exactly_once() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let range = loop_range(&mut rng);
        let threads = rng.gen_range(1usize..5);
        let chunk = rng.gen_range(1u64..16);
        let seen = parking_lot::Mutex::new(Vec::new());
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk });
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(range, |lo, hi, step| {
                let vals: Vec<i64> = LoopRange::new(lo, hi, step).iter().collect();
                seen.lock().extend(vals);
            });
        });
        let mut seen = seen.into_inner();
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        assert_eq!(
            seen, expect,
            "seed {seed}: {range:?} x{threads} chunk {chunk}"
        );
    }
}

#[test]
fn guided_for_covers_exactly_once() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let range = loop_range(&mut rng);
        let threads = rng.gen_range(1usize..5);
        let min_chunk = rng.gen_range(1u64..8);
        let seen = parking_lot::Mutex::new(Vec::new());
        let for_c = ForConstruct::new(Schedule::Guided { min_chunk });
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(range, |lo, hi, step| {
                let vals: Vec<i64> = LoopRange::new(lo, hi, step).iter().collect();
                seen.lock().extend(vals);
            });
        });
        let mut seen = seen.into_inner();
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        assert_eq!(
            seen, expect,
            "seed {seed}: {range:?} x{threads} min_chunk {min_chunk}"
        );
    }
}

#[test]
fn parallel_sum_reduction_matches_sequential() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let len = rng.gen_range(1usize..200);
        let values: Vec<i64> = (0..len).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let threads = rng.gen_range(1usize..5);
        let expect: i64 = values.iter().sum();
        let total = AtomicI64::new(0);
        let for_c = ForConstruct::new(Schedule::StaticBlock);
        let vals = &values;
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(LoopRange::upto(0, vals.len() as i64), |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += vals[i as usize];
                    i += step;
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), expect, "seed {seed}");
    }
}

#[test]
fn thread_local_reduce_is_sum_of_parts() {
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let n = rng.gen_range(1usize..6);
        let parts: Vec<i64> = (0..n).map(|_| rng.gen_range(-500i64..500)).collect();
        let field = ThreadLocalField::new(0i64);
        let parts_ref = &parts;
        region::parallel_with(RegionConfig::new().threads(n), || {
            let tid = thread_id();
            field.update_or_init(|| 0, |v| *v += parts_ref[tid]);
        });
        field.reduce(&SumReducer);
        assert_eq!(field.get_global(), parts.iter().sum::<i64>(), "seed {seed}");
    }
}

#[test]
fn reducers_are_order_insensitive_for_min_max() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let n = rng.gen_range(1usize..50);
        let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &values {
            MinReducer.merge(&mut lo, v);
            MaxReducer.merge(&mut hi, v);
        }
        values.reverse();
        let mut lo2 = f64::INFINITY;
        let mut hi2 = f64::NEG_INFINITY;
        for &v in &values {
            MinReducer.merge(&mut lo2, v);
            MaxReducer.merge(&mut hi2, v);
        }
        assert_eq!(lo, lo2, "seed {seed}");
        assert_eq!(hi, hi2, "seed {seed}");
    }
}

#[test]
fn simulator_more_threads_never_slower_for_pure_compute() {
    use aomp_simcore::{Machine, Program, Simulator, Step};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(8000 + seed);
        let ops = rng.gen_range(1e6f64..1e12);
        let t = rng.gen_range(1usize..24);
        let sim = Simulator::new(Machine::xeon());
        let p = Program::new(
            "p",
            vec![Step::Parallel {
                ops,
                bytes: 0.0,
                imbalance: 1.0,
            }],
        );
        let t1 = sim.run(&p, t);
        let t2 = sim.run(&p, t + 1);
        assert!(t2 <= t1 * 1.0001, "seed {seed} t={t}: {t2} > {t1}");
    }
}

#[test]
fn simulator_wall_time_scales_linearly_with_work() {
    use aomp_simcore::{Machine, Program, Simulator, Step};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let ops = rng.gen_range(1e6f64..1e10);
        let t = rng.gen_range(1usize..25);
        let sim = Simulator::new(Machine::i7());
        let p1 = Program::new(
            "p",
            vec![Step::Parallel {
                ops,
                bytes: 0.0,
                imbalance: 1.0,
            }],
        );
        let p2 = Program::new(
            "p",
            vec![Step::Parallel {
                ops: ops * 2.0,
                bytes: 0.0,
                imbalance: 1.0,
            }],
        );
        let w1 = sim.run(&p1, t);
        let w2 = sim.run(&p2, t);
        assert!((w2 / w1 - 2.0).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn glob_matching_reflexive_for_literals() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(10_000 + seed);
        let len = rng.gen_range(1usize..25);
        let name: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())] as char)
            .collect();
        let pc = Pointcut::glob(name.clone());
        assert!(pc.matches(&JoinPoint::plain(&name)), "seed {seed}: {name}");
        let pc_star = Pointcut::glob("*");
        assert!(
            pc_star.matches(&JoinPoint::plain(&name)),
            "seed {seed}: {name}"
        );
    }
}

#[test]
fn nnz_balanced_ranges_partition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(11_000 + seed);
        let nrows = rng.gen_range(1usize..200);
        let threads = rng.gen_range(1usize..9);
        // Random row_ptr with empty rows allowed.
        let mut row_ptr = vec![0usize; nrows + 1];
        for r in 1..=nrows {
            row_ptr[r] = row_ptr[r - 1] + rng.gen_range(0..8);
        }
        let nz = row_ptr[nrows];
        let mut prev_hi = 0;
        for tid in 0..threads {
            let (lo, hi) = aomp_jgf::sparse::nnz_balanced_range(&row_ptr, nz, tid, threads);
            assert_eq!(lo, prev_hi, "seed {seed}");
            assert!(hi >= lo, "seed {seed}");
            // Boundaries coincide with row boundaries.
            assert!(row_ptr.contains(&lo) || lo == 0, "seed {seed}");
            assert!(row_ptr.contains(&hi) || hi == nz, "seed {seed}");
            prev_hi = hi;
        }
        assert_eq!(prev_hi, nz, "seed {seed}");
    }
}

#[test]
fn barrier_round_trip_many_rounds() {
    // Threads are expensive; exhaustive small matrix.
    for threads in [2usize, 3, 5] {
        let counter = AtomicI64::new(0);
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for round in 0..25 {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier();
                // Between barriers every thread observes the full round.
                assert_eq!(
                    counter.load(Ordering::SeqCst) as usize,
                    (round + 1) * threads
                );
                barrier();
            }
        });
    }
}
