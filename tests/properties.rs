//! Property-based tests (proptest) over the core invariants:
//! schedule partitions, dynamic/guided dispensing, reductions, barriers,
//! thread-local fields and the simulator.

use aomplib::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};

/// Strategy producing sane loop ranges (positive or negative step).
fn loop_ranges() -> impl Strategy<Value = LoopRange> {
    (-200i64..200, 1i64..64, prop::bool::ANY, 0i64..500).prop_map(|(start, step, down, span)| {
        if down {
            LoopRange::new(start, start - span, -step)
        } else {
            LoopRange::new(start, start + span, step)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_block_partitions_every_range(range in loop_ranges(), threads in 1usize..9) {
        let mut seen = Vec::new();
        for tid in 0..threads {
            let sub = aomp::schedule::static_block_range(range, tid, threads);
            seen.extend(sub.iter());
        }
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn static_cyclic_partitions_every_range(range in loop_ranges(), threads in 1usize..9) {
        let mut seen = Vec::new();
        for tid in 0..threads {
            seen.extend(aomp::schedule::static_cyclic_range(range, tid, threads).iter());
        }
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn block_assignments_are_disjoint(range in loop_ranges(), threads in 2usize..9) {
        let mut all = HashSet::new();
        for tid in 0..threads {
            for v in aomp::schedule::static_block_range(range, tid, threads).iter() {
                prop_assert!(all.insert(v), "element {v} assigned twice");
            }
        }
    }

    #[test]
    fn dynamic_for_covers_exactly_once(
        range in loop_ranges(),
        threads in 1usize..5,
        chunk in 1u64..16,
    ) {
        let seen = parking_lot::Mutex::new(Vec::new());
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk });
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(range, |lo, hi, step| {
                let vals: Vec<i64> = LoopRange::new(lo, hi, step).iter().collect();
                seen.lock().extend(vals);
            });
        });
        let mut seen = seen.into_inner();
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn guided_for_covers_exactly_once(
        range in loop_ranges(),
        threads in 1usize..5,
        min_chunk in 1u64..8,
    ) {
        let seen = parking_lot::Mutex::new(Vec::new());
        let for_c = ForConstruct::new(Schedule::Guided { min_chunk });
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(range, |lo, hi, step| {
                let vals: Vec<i64> = LoopRange::new(lo, hi, step).iter().collect();
                seen.lock().extend(vals);
            });
        });
        let mut seen = seen.into_inner();
        let mut expect: Vec<i64> = range.iter().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn parallel_sum_reduction_matches_sequential(values in prop::collection::vec(-1000i64..1000, 1..200), threads in 1usize..5) {
        let expect: i64 = values.iter().sum();
        let total = AtomicI64::new(0);
        let for_c = ForConstruct::new(Schedule::StaticBlock);
        let vals = &values;
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for_c.execute(LoopRange::upto(0, vals.len() as i64), |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += vals[i as usize];
                    i += step;
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        });
        prop_assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn thread_local_reduce_is_sum_of_parts(parts in prop::collection::vec(-500i64..500, 1..6)) {
        let field = ThreadLocalField::new(0i64);
        let threads = parts.len();
        let parts_ref = &parts;
        region::parallel_with(RegionConfig::new().threads(threads), || {
            let tid = thread_id();
            field.update_or_init(|| 0, |v| *v += parts_ref[tid]);
        });
        field.reduce(&SumReducer);
        prop_assert_eq!(field.get_global(), parts.iter().sum::<i64>());
    }

    #[test]
    fn reducers_are_order_insensitive_for_min_max(mut values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &values {
            MinReducer.merge(&mut lo, v);
            MaxReducer.merge(&mut hi, v);
        }
        values.reverse();
        let mut lo2 = f64::INFINITY;
        let mut hi2 = f64::NEG_INFINITY;
        for &v in &values {
            MinReducer.merge(&mut lo2, v);
            MaxReducer.merge(&mut hi2, v);
        }
        prop_assert_eq!(lo, lo2);
        prop_assert_eq!(hi, hi2);
    }

    #[test]
    fn simulator_more_threads_never_slower_for_pure_compute(ops in 1e6f64..1e12, t in 1usize..24) {
        use aomp_simcore::{Machine, Program, Simulator, Step};
        let sim = Simulator::new(Machine::xeon());
        let p = Program::new("p", vec![Step::Parallel { ops, bytes: 0.0, imbalance: 1.0 }]);
        let t1 = sim.run(&p, t);
        let t2 = sim.run(&p, t + 1);
        prop_assert!(t2 <= t1 * 1.0001, "t={t}: {t2} > {t1}");
    }

    #[test]
    fn simulator_wall_time_scales_linearly_with_work(ops in 1e6f64..1e10, t in 1usize..25) {
        use aomp_simcore::{Machine, Program, Simulator, Step};
        let sim = Simulator::new(Machine::i7());
        let p1 = Program::new("p", vec![Step::Parallel { ops, bytes: 0.0, imbalance: 1.0 }]);
        let p2 = Program::new("p", vec![Step::Parallel { ops: ops * 2.0, bytes: 0.0, imbalance: 1.0 }]);
        let w1 = sim.run(&p1, t);
        let w2 = sim.run(&p2, t);
        prop_assert!((w2 / w1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn glob_matching_reflexive_for_literals(name in "[a-zA-Z0-9_.]{1,24}") {
        let pc = Pointcut::glob(name.clone());
        prop_assert!(pc.matches(&JoinPoint::plain(&name)));
        let pc_star = Pointcut::glob("*");
        prop_assert!(pc_star.matches(&JoinPoint::plain(&name)));
    }

    #[test]
    fn nnz_balanced_ranges_partition(nrows in 1usize..200, threads in 1usize..9, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random row_ptr with empty rows allowed.
        let mut row_ptr = vec![0usize; nrows + 1];
        for r in 1..=nrows {
            row_ptr[r] = row_ptr[r - 1] + rng.gen_range(0..8);
        }
        let nz = row_ptr[nrows];
        let mut prev_hi = 0;
        for tid in 0..threads {
            let (lo, hi) = aomp_jgf::sparse::nnz_balanced_range(&row_ptr, nz, tid, threads);
            prop_assert_eq!(lo, prev_hi);
            prop_assert!(hi >= lo);
            // Boundaries coincide with row boundaries.
            prop_assert!(row_ptr.contains(&lo) || lo == 0);
            prop_assert!(row_ptr.contains(&hi) || hi == nz);
            prev_hi = hi;
        }
        prop_assert_eq!(prev_hi, nz);
    }
}

#[test]
fn barrier_round_trip_many_rounds() {
    // Not a proptest (threads are expensive); exhaustive small matrix.
    for threads in [2usize, 3, 5] {
        let counter = AtomicI64::new(0);
        region::parallel_with(RegionConfig::new().threads(threads), || {
            for round in 0..25 {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier();
                // Between barriers every thread observes the full round.
                assert_eq!(counter.load(Ordering::SeqCst) as usize, (round + 1) * threads);
                barrier();
            }
        });
    }
}
