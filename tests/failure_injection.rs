//! Failure injection: panics inside parallel regions, work-sharing
//! constructs, gates and tasks must neither deadlock the team nor poison
//! the runtime for later work.

use aomplib::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn runtime_still_works() {
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(3), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}

#[test]
fn worker_panic_unblocks_master_at_barrier() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 2 {
                panic!("injected worker failure");
            }
            // The surviving threads block on a barrier the panicking
            // thread will never reach; poisoning must wake them.
            barrier();
        });
    }));
    assert!(r.is_err(), "panic must propagate to the region caller");
    runtime_still_works();
}

#[test]
fn master_panic_unblocks_workers() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 0 {
                panic!("injected master failure");
            }
            barrier();
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panic_in_for_body_propagates() {
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(2), || {
            for_c.execute(LoopRange::upto(0, 100), |lo, _hi, _step| {
                if lo == 3 {
                    panic!("injected loop failure");
                }
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panic_inside_single_releases_waiters() {
    let single = Single::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            let _: u32 = single.run(|| panic!("injected single failure"));
        });
    }));
    assert!(r.is_err(), "waiters observe poison instead of hanging");
    runtime_still_works();
}

#[test]
fn panic_inside_master_broadcast_releases_waiters() {
    let master = Master::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            let _: u32 = master.run(|| {
                if thread_id() == 0 {
                    panic!("injected master-broadcast failure");
                }
                1
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panicking_task_poisons_group_not_process() {
    let group = TaskGroup::new();
    group.spawn(|| panic!("injected task failure"));
    group.spawn(|| {});
    let g2 = group.clone();
    let r = catch_unwind(AssertUnwindSafe(|| g2.wait()));
    assert!(r.is_err(), "wait reports the failure");
    // The group keeps working afterwards.
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    let d = std::sync::Arc::clone(&done);
    group.spawn(move || {
        d.fetch_add(1, Ordering::SeqCst);
    });
    group.wait();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn future_task_panic_reaches_consumer() {
    let fut = task::spawn_future(|| -> u64 { panic!("injected producer failure") });
    let r = catch_unwind(AssertUnwindSafe(|| fut.get()));
    assert!(r.is_err());
    // Later futures are unaffected.
    assert_eq!(task::spawn_future(|| 7u64).get(), 7);
}

#[test]
fn critical_section_panic_does_not_wedge_the_lock() {
    let h = CriticalHandle::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        h.run(|| panic!("injected critical failure"));
    }));
    assert!(r.is_err());
    // The lock must be reusable (no poisoning like std::sync::Mutex).
    assert_eq!(h.run(|| 5), 5);
}

#[test]
fn weaver_woven_region_panic_propagates_and_recovers() {
    let aspect = AspectModule::builder("FailureWeave")
        .bind(Pointcut::call("fail.region"), Mechanism::parallel().threads(2))
        .build();
    Weaver::global().with_deployed(aspect, || {
        let r = catch_unwind(AssertUnwindSafe(|| {
            aomp_weaver::call("fail.region", || {
                if thread_id() == 1 {
                    panic!("injected woven failure");
                }
                barrier();
            });
        }));
        assert!(r.is_err());
    });
    runtime_still_works();
}

#[test]
fn ordered_sections_survive_panic_elsewhere() {
    // A panic in a non-ordered thread must not deadlock the ordered
    // sequencer (poison check in its wait loop).
    let for_c = ForConstruct::new(Schedule::StaticCyclic);
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(2), || {
            for_c.execute_scoped(LoopRange::upto(0, 10), |sub, scope| {
                for i in sub.iter() {
                    if i == 5 {
                        panic!("injected ordered failure");
                    }
                    scope.ordered(i, || {});
                }
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}
