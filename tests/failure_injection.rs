//! Failure injection: panics inside parallel regions, work-sharing
//! constructs, gates and tasks must neither deadlock the team nor poison
//! the runtime for later work; hangs under a stall deadline must convert
//! into [`RegionError::Stalled`] diagnoses; and team cancellation must
//! stop chunked loops early in both programming styles.

use aomplib::prelude::*;
use aomplib::runtime::clock::VirtualClock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The two cancellation-race tests below race a 100k-iteration dynamic
/// loop against the cancel flag in real time, so their iteration-count
/// assertions are load-sensitive. `AOMP_CHECK_NO_WALLCLOCK=1` (set by the
/// CI schedule-check job, whose runners are saturated by the checker)
/// skips them; the same races are covered deterministically in
/// `tests/schedule_exploration.rs` under PCT schedules.
fn wallclock_tests_disabled(test: &str) -> bool {
    let disabled = std::env::var_os("AOMP_CHECK_NO_WALLCLOCK").is_some_and(|v| v != "0");
    if disabled {
        eprintln!("{test}: skipped (AOMP_CHECK_NO_WALLCLOCK is set)");
    }
    disabled
}

fn runtime_still_works() {
    let hits = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(3), || {
        hits.fetch_add(1, Ordering::SeqCst);
        barrier();
    });
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}

#[test]
fn worker_panic_unblocks_master_at_barrier() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 2 {
                panic!("injected worker failure");
            }
            // The surviving threads block on a barrier the panicking
            // thread will never reach; poisoning must wake them.
            barrier();
        });
    }));
    assert!(r.is_err(), "panic must propagate to the region caller");
    runtime_still_works();
}

#[test]
fn master_panic_unblocks_workers() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            if thread_id() == 0 {
                panic!("injected master failure");
            }
            barrier();
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panic_in_for_body_propagates() {
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 1 });
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(2), || {
            for_c.execute(LoopRange::upto(0, 100), |lo, _hi, _step| {
                if lo == 3 {
                    panic!("injected loop failure");
                }
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panic_inside_single_releases_waiters() {
    let single = Single::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            let _: u32 = single.run(|| panic!("injected single failure"));
        });
    }));
    assert!(r.is_err(), "waiters observe poison instead of hanging");
    runtime_still_works();
}

#[test]
fn panic_inside_master_broadcast_releases_waiters() {
    let master = Master::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(3), || {
            let _: u32 = master.run(|| {
                if thread_id() == 0 {
                    panic!("injected master-broadcast failure");
                }
                1
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}

#[test]
fn panicking_task_poisons_group_not_process() {
    let group = TaskGroup::new();
    group.spawn(|| panic!("injected task failure"));
    group.spawn(|| {});
    let g2 = group.clone();
    let r = catch_unwind(AssertUnwindSafe(|| g2.wait()));
    assert!(r.is_err(), "wait reports the failure");
    // The group keeps working afterwards.
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    let d = std::sync::Arc::clone(&done);
    group.spawn(move || {
        d.fetch_add(1, Ordering::SeqCst);
    });
    group.wait();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn future_task_panic_reaches_consumer() {
    let fut = task::spawn_future(|| -> u64 { panic!("injected producer failure") });
    let r = catch_unwind(AssertUnwindSafe(|| fut.get()));
    assert!(r.is_err());
    // Later futures are unaffected.
    assert_eq!(task::spawn_future(|| 7u64).get(), 7);
}

#[test]
fn critical_section_panic_does_not_wedge_the_lock() {
    let h = CriticalHandle::new();
    let r = catch_unwind(AssertUnwindSafe(|| {
        h.run(|| panic!("injected critical failure"));
    }));
    assert!(r.is_err());
    // The lock must be reusable (no poisoning like std::sync::Mutex).
    assert_eq!(h.run(|| 5), 5);
}

#[test]
fn weaver_woven_region_panic_propagates_and_recovers() {
    let aspect = AspectModule::builder("FailureWeave")
        .bind(
            Pointcut::call("fail.region"),
            Mechanism::parallel().threads(2),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        let r = catch_unwind(AssertUnwindSafe(|| {
            aomp_weaver::call("fail.region", || {
                if thread_id() == 1 {
                    panic!("injected woven failure");
                }
                barrier();
            });
        }));
        assert!(r.is_err());
    });
    runtime_still_works();
}

#[test]
fn broadcast_panic_reports_original_payload_not_poison() {
    // The waiters unwind with TeamPoisoned; the fallible API must report
    // the executing thread's payload, not the siblings' poison echoes.
    let single = Single::new();
    let r = region::try_parallel_with(RegionConfig::new().threads(3), || {
        let _: u32 = single.run(|| panic!("injected single failure"));
    });
    assert_eq!(
        r,
        Err(RegionError::Panicked {
            payload_msg: "injected single failure".into()
        })
    );
    runtime_still_works();
}

#[test]
fn master_broadcast_panic_reports_original_payload_not_poison() {
    let master = Master::new();
    let r = region::try_parallel_with(RegionConfig::new().threads(3), || {
        let _: u32 = master.run(|| panic!("injected master-broadcast failure"));
    });
    assert_eq!(
        r,
        Err(RegionError::Panicked {
            payload_msg: "injected master-broadcast failure".into()
        })
    );
    runtime_still_works();
}

#[test]
fn hung_worker_is_diagnosed_as_stall_not_deadlock() {
    // The watchdog runs on virtual time: a 5-minute stall deadline
    // elapses in microseconds of wall-clock, so the test exercises the
    // diagnosis logic without sleeping out (or flaking on) real timers.
    let clock = VirtualClock::install();
    let deadline = Duration::from_secs(300);
    let started = Instant::now();
    // A worker stuck in user code can only be *abandoned* by the owning
    // executor (`try_parallel_detached`, body is `'static`): the borrowing
    // API always joins its workers, so there it would delay the return.
    let r = region::try_parallel_detached(
        RegionConfig::new().threads(4).stall_deadline(deadline),
        || {
            if thread_id() == 3 {
                // A lost worker: stuck in user code, never reaches the
                // barrier the rest of the team is waiting at.
                std::thread::sleep(Duration::from_secs(3600));
            }
            barrier();
        },
    );
    let elapsed = started.elapsed();
    drop(clock);
    match r {
        Err(RegionError::Stalled { blocked }) => {
            // The three healthy threads are named at the barrier; the
            // hung thread cannot be (it is in user code, not at a wait
            // site) — its absence from the list is the diagnosis.
            let mut tids: Vec<usize> = blocked.iter().map(|&(tid, _)| tid).collect();
            tids.sort_unstable();
            assert_eq!(tids, vec![0, 1, 2], "blocked set: {blocked:?}");
            assert!(blocked.iter().all(|&(_, site)| site == WaitSite::Barrier));
        }
        other => panic!("expected RegionError::Stalled, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "a virtual 5-minute deadline must elapse in (real) seconds at \
         most, took {elapsed:?}"
    );
    // The runtime is immediately reusable for healthy regions.
    runtime_still_works();
}

#[test]
fn annotation_stall_deadline_converts_hang_to_panic() {
    // A synchronisation-level hang (the worker waits at a second barrier
    // round the master never joins): the cooperative watchdog cancels the
    // team, the worker unwinds, and the fully-joined region panics with
    // the stall diagnosis. Virtual time keeps the deadline a logic knob
    // rather than a real wait.
    #[aomplib::annotations::parallel(threads = 2, stall_deadline_ms = 250)]
    fn hung_region() {
        barrier();
        if thread_id() == 1 {
            barrier();
        }
    }
    let clock = VirtualClock::install();
    let r = catch_unwind(AssertUnwindSafe(hung_region));
    drop(clock);
    let msg = match r {
        Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
        Ok(()) => panic!("hung annotated region must not return cleanly"),
    };
    assert!(
        msg.contains("stalled"),
        "panic should describe the stall: {msg}"
    );
    runtime_still_works();
}

#[test]
fn cancel_stops_dynamic_loop_early_annotation_style() {
    if wallclock_tests_disabled("cancel_stops_dynamic_loop_early_annotation_style") {
        return;
    }
    static SEEN: AtomicUsize = AtomicUsize::new(0);

    #[aomplib::annotations::for_loop(schedule = "dynamic", chunk = 1)]
    fn cancelled_loop(start: i64, end: i64, step: i64) {
        let mut i = start;
        while i < end {
            if SEEN.fetch_add(1, Ordering::SeqCst) == 40 {
                assert!(cancel_team(), "annotated team must be cancellable");
            }
            i += step;
        }
    }

    #[aomplib::annotations::parallel(threads = 3, cancellable)]
    fn cancelled_region() {
        cancelled_loop(0, 100_000, 1);
    }

    cancelled_region();
    let seen = SEEN.load(Ordering::SeqCst);
    assert!(seen > 40, "the trigger iteration must have run, saw {seen}");
    assert!(
        seen < 50_000,
        "cancellation must stop the dynamic loop well short of 100k iterations, saw {seen}"
    );
    runtime_still_works();
}

#[test]
fn cancel_stops_dynamic_loop_early_pointcut_style() {
    if wallclock_tests_disabled("cancel_stops_dynamic_loop_early_pointcut_style") {
        return;
    }
    let seen = AtomicUsize::new(0);
    let aspect = AspectModule::builder("CancelWeave")
        .bind(
            Pointcut::call("cancel.region"),
            Mechanism::parallel().threads(3).cancellable(),
        )
        .bind(
            Pointcut::call("cancel.loop"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 1 }),
        )
        .build();
    Weaver::global().with_deployed(aspect, || {
        aomp_weaver::call("cancel.region", || {
            aomp_weaver::call_for(
                "cancel.loop",
                LoopRange::upto(0, 100_000),
                |lo, hi, step| {
                    let mut i = lo;
                    while i < hi {
                        if seen.fetch_add(1, Ordering::SeqCst) == 40 {
                            assert!(cancel_team(), "woven team must be cancellable");
                        }
                        i += step;
                    }
                },
            );
        });
    });
    let seen = seen.load(Ordering::SeqCst);
    assert!(seen > 40, "the trigger iteration must have run, saw {seen}");
    assert!(
        seen < 50_000,
        "cancellation must stop the dynamic loop well short of 100k iterations, saw {seen}"
    );
    runtime_still_works();
}

#[test]
fn ordered_sections_survive_panic_elsewhere() {
    // A panic in a non-ordered thread must not deadlock the ordered
    // sequencer (poison check in its wait loop).
    let for_c = ForConstruct::new(Schedule::StaticCyclic);
    let r = catch_unwind(AssertUnwindSafe(|| {
        region::parallel_with(RegionConfig::new().threads(2), || {
            for_c.execute_scoped(LoopRange::upto(0, 10), |sub, scope| {
                for i in sub.iter() {
                    if i == 5 {
                        panic!("injected ordered failure");
                    }
                    scope.ordered(i, || {});
                }
            });
        });
    }));
    assert!(r.is_err());
    runtime_still_works();
}
