//! Stress and edge-case tests: long construct sequences, oversubscribed
//! teams, nested-team constructs, empty and degenerate ranges, and
//! repeated deploy/undeploy churn.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

#[test]
fn many_rounds_of_mixed_constructs() {
    // 200 iterations of barrier/single/master/critical/for inside one
    // region: exercises the slot map's allocate-and-free cycle hard.
    let single = Single::new();
    let master = Master::new();
    let crit = CriticalHandle::new();
    let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 2 });
    let singles = AtomicUsize::new(0);
    let masters = AtomicUsize::new(0);
    let sum = AtomicI64::new(0);
    region::parallel_with(RegionConfig::new().threads(4), || {
        for round in 0..200 {
            single.run(|| {
                singles.fetch_add(1, Ordering::SeqCst);
            });
            if round % 3 == 0 {
                master.run_nowait(|| {
                    masters.fetch_add(1, Ordering::SeqCst);
                });
            }
            crit.run(|| {});
            for_c.execute(LoopRange::upto(0, 8), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    sum.fetch_add(1, Ordering::Relaxed);
                    i += step;
                }
            });
            barrier();
        }
    });
    assert_eq!(singles.load(Ordering::SeqCst), 200);
    assert_eq!(masters.load(Ordering::SeqCst), 67);
    assert_eq!(sum.load(Ordering::Relaxed), 200 * 8);
}

#[test]
fn oversubscribed_team_on_one_core() {
    // 16 threads on a single-core container: heavy parking pressure.
    let count = AtomicUsize::new(0);
    region::parallel_with(RegionConfig::new().threads(16), || {
        for _ in 0..10 {
            count.fetch_add(1, Ordering::SeqCst);
            barrier();
        }
    });
    assert_eq!(count.load(Ordering::SeqCst), 160);
}

#[test]
fn constructs_inside_nested_teams_bind_to_innermost() {
    let inner_singles = AtomicUsize::new(0);
    let single = Single::new();
    region::parallel_with(RegionConfig::new().threads(2), || {
        region::parallel_with(RegionConfig::new().threads(3), || {
            // One execution per *inner* team: 2 outer threads × 1.
            single.run(|| {
                inner_singles.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(team_size(), 3);
            barrier(); // inner-team barrier
        });
    });
    assert_eq!(inner_singles.load(Ordering::SeqCst), 2);
}

#[test]
fn empty_and_single_iteration_ranges() {
    for sched in [
        Schedule::StaticBlock,
        Schedule::StaticCyclic,
        Schedule::DYNAMIC,
        Schedule::GUIDED,
        Schedule::BlockCyclic { chunk: 4 },
    ] {
        let for_c = ForConstruct::new(sched);
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(3), || {
            for_c.execute(LoopRange::upto(5, 5), |_, _, _| {
                hits.fetch_add(1000, Ordering::SeqCst);
            });
            for_c.execute(LoopRange::upto(7, 8), |lo, hi, step| {
                // Exactly the single element 7, whatever the rewritten
                // (lo, hi, step) encoding (cyclic schedules widen step).
                let elems: Vec<i64> = LoopRange::new(lo, hi, step).iter().collect();
                assert_eq!(elems, vec![7]);
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1, "{}", sched.name());
    }
}

#[test]
fn more_threads_than_iterations() {
    let for_c = ForConstruct::new(Schedule::StaticBlock);
    let sum = AtomicI64::new(0);
    region::parallel_with(RegionConfig::new().threads(8), || {
        for_c.execute(LoopRange::upto(0, 3), |lo, hi, step| {
            let mut i = lo;
            while i < hi {
                sum.fetch_add(i, Ordering::SeqCst);
                i += step;
            }
        });
    });
    assert_eq!(sum.load(Ordering::SeqCst), 3);
}

#[test]
fn deploy_undeploy_churn_under_load() {
    // Deploy/undeploy while another "phase" of the program is calling
    // unrelated join points — the registry must stay coherent.
    let hits = AtomicUsize::new(0);
    for round in 0..50 {
        let name = format!("stress.churn.{round}");
        let h = Weaver::global().deploy(
            AspectModule::builder(name.clone())
                .bind(
                    Pointcut::call(name.clone()),
                    Mechanism::parallel().threads(2),
                )
                .build(),
        );
        aomp_weaver::call(&name, || {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        // An unrelated, never-bound join point on every round.
        aomp_weaver::call("stress.churn.unbound", || {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        Weaver::global().undeploy(h);
    }
    assert_eq!(hits.load(Ordering::SeqCst), 50 * 2 + 50);
}

#[test]
fn thread_local_field_heavy_reuse() {
    let field = ThreadLocalField::new(0u64);
    for round in 0..20 {
        region::parallel_with(RegionConfig::new().threads(4), || {
            for _ in 0..100 {
                field.update_or_init(|| 0, |v| *v += 1);
            }
        });
        assert_eq!(field.local_count(), 4);
        field.reduce(&SumReducer);
        assert_eq!(field.get_global(), (round + 1) * 400);
        assert_eq!(field.local_count(), 0);
    }
}

#[test]
fn pool_survives_hundreds_of_regions() {
    let pool = TeamPool::new(3);
    let count = AtomicUsize::new(0);
    for _ in 0..300 {
        pool.parallel(|| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 900);
}

#[test]
fn big_team_single_and_master_broadcast() {
    let single = Single::new();
    let master = Master::new();
    let sums = AtomicI64::new(0);
    region::parallel_with(RegionConfig::new().threads(12), || {
        let a = single.run(|| 3i64);
        let b = master.run(|| 4i64);
        sums.fetch_add(a + b, Ordering::SeqCst);
    });
    assert_eq!(sums.load(Ordering::SeqCst), 12 * 7);
}

#[test]
fn guided_schedule_with_tiny_and_huge_chunks() {
    for min_chunk in [1u64, 1000] {
        let for_c = ForConstruct::new(Schedule::Guided { min_chunk });
        let sum = AtomicI64::new(0);
        region::parallel_with(RegionConfig::new().threads(4), || {
            for_c.execute(LoopRange::upto(0, 500), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    sum.fetch_add(i, Ordering::Relaxed);
                    i += step;
                }
            });
        });
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (0..500).sum::<i64>(),
            "min_chunk={min_chunk}"
        );
    }
}
