//! Integration tests for the annotation style (`aomp-macros`): the Rust
//! stand-in for AOmpLib's `@Parallel`, `@For`, `@Critical`, `@Master`,
//! `@Single`, `@BarrierBefore/After`, `@Task`, `@FutureTask`.

use aomplib::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

static REGION_HITS: AtomicUsize = AtomicUsize::new(0);

#[parallel(threads = 4)]
fn annotated_region() {
    REGION_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn parallel_attribute_creates_team() {
    REGION_HITS.store(0, Ordering::SeqCst);
    annotated_region();
    assert_eq!(REGION_HITS.load(Ordering::SeqCst), 4);
}

static FOR_SUM: AtomicI64 = AtomicI64::new(0);

#[for_loop(schedule = "staticBlock")]
fn accumulate(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 3)]
fn region_with_for() {
    accumulate(0, 1000, 1);
}

#[test]
fn for_loop_attribute_workshares() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_for();
    assert_eq!(FOR_SUM.load(Ordering::SeqCst), (0..1000).sum::<i64>());
}

#[test]
fn for_loop_attribute_sequential_without_region() {
    FOR_SUM.store(0, Ordering::SeqCst);
    accumulate(0, 100, 1);
    assert_eq!(FOR_SUM.load(Ordering::SeqCst), (0..100).sum::<i64>());
}

#[for_loop(schedule = "dynamic", chunk = 7)]
fn accumulate_dynamic(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i * 2;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_dynamic_for() {
    accumulate_dynamic(0, 500, 1);
}

#[test]
fn dynamic_for_attribute_covers_range() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_dynamic_for();
    assert_eq!(
        FOR_SUM.load(Ordering::SeqCst),
        (0..500).map(|i| i * 2).sum::<i64>()
    );
}

// The paper Figure 8 pattern: @Master @BarrierBefore @BarrierAfter.
static MASTER_EXECS: AtomicUsize = AtomicUsize::new(0);

#[master]
#[barrier_before]
#[barrier_after]
fn master_step() {
    MASTER_EXECS.fetch_add(1, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_master_step() {
    for _ in 0..5 {
        master_step();
    }
}

#[test]
fn master_with_barriers_executes_once_per_encounter() {
    MASTER_EXECS.store(0, Ordering::SeqCst);
    region_with_master_step();
    assert_eq!(MASTER_EXECS.load(Ordering::SeqCst), 5);
}

static MASTER_VALUE_EXECS: AtomicUsize = AtomicUsize::new(0);

#[master]
fn master_value() -> u64 {
    MASTER_VALUE_EXECS.fetch_add(1, Ordering::SeqCst);
    4242
}

static BROADCAST_OK: AtomicUsize = AtomicUsize::new(0);

#[parallel(threads = 3)]
fn region_with_master_value() {
    if master_value() == 4242 {
        BROADCAST_OK.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn master_broadcasts_return_value() {
    MASTER_VALUE_EXECS.store(0, Ordering::SeqCst);
    BROADCAST_OK.store(0, Ordering::SeqCst);
    region_with_master_value();
    assert_eq!(MASTER_VALUE_EXECS.load(Ordering::SeqCst), 1);
    assert_eq!(
        BROADCAST_OK.load(Ordering::SeqCst),
        3,
        "all threads observe the master's value"
    );
}

static SINGLE_EXECS: AtomicUsize = AtomicUsize::new(0);

#[single]
fn single_init() -> i32 {
    SINGLE_EXECS.fetch_add(1, Ordering::SeqCst);
    7
}

static SINGLE_SUM: AtomicI64 = AtomicI64::new(0);

#[parallel(threads = 4)]
fn region_with_single() {
    SINGLE_SUM.fetch_add(single_init() as i64, Ordering::SeqCst);
}

#[test]
fn single_executes_once_and_broadcasts() {
    SINGLE_EXECS.store(0, Ordering::SeqCst);
    SINGLE_SUM.store(0, Ordering::SeqCst);
    region_with_single();
    assert_eq!(SINGLE_EXECS.load(Ordering::SeqCst), 1);
    assert_eq!(SINGLE_SUM.load(Ordering::SeqCst), 28);
}

// Non-atomic state protected only by @Critical.
static mut CRIT_COUNTER: u64 = 0;

#[critical(id = "annotation-test-lock")]
fn bump_unsafely() {
    // Safe because all callers serialise through the named critical lock.
    unsafe { CRIT_COUNTER += 1 };
}

#[parallel(threads = 4)]
fn region_with_critical() {
    for _ in 0..250 {
        bump_unsafely();
    }
}

#[test]
fn critical_attribute_serialises() {
    unsafe { CRIT_COUNTER = 0 };
    region_with_critical();
    assert_eq!(unsafe { CRIT_COUNTER }, 1000);
}

#[task]
fn fire_and_forget(counter: std::sync::Arc<AtomicUsize>) {
    counter.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn task_attribute_spawns_activity() {
    let counter = std::sync::Arc::new(AtomicUsize::new(0));
    fire_and_forget(std::sync::Arc::clone(&counter));
    let mut spins = 0;
    while counter.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
        spins += 1;
        assert!(spins < 10_000_000, "task never ran");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 1);
}

#[future_task]
fn compute_square(x: u64) -> u64 {
    x * x
}

#[test]
fn future_task_attribute_returns_future() {
    let futures: Vec<_> = (1..=5).map(compute_square).collect();
    let total: u64 = futures.into_iter().map(|f| f.get()).sum();
    assert_eq!(total, 1 + 4 + 9 + 16 + 25);
}

#[for_loop(schedule = "cyclic")]
fn record_cyclic(start: i64, end: i64, step: i64) {
    // Record which elements this thread got; cyclic stride == team size.
    let mut i = start;
    let mut local = 0;
    while i < end {
        local += i;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_cyclic() {
    record_cyclic(0, 37, 1);
}

#[test]
fn cyclic_for_attribute_covers_range() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_cyclic();
    assert_eq!(FOR_SUM.load(Ordering::SeqCst), (0..37).sum::<i64>());
}

#[for_loop(schedule = "blockCyclic", chunk = 5)]
fn accumulate_block_cyclic(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 3)]
fn region_with_block_cyclic() {
    accumulate_block_cyclic(0, 123, 1);
}

#[test]
fn block_cyclic_for_attribute_covers_range() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_block_cyclic();
    assert_eq!(FOR_SUM.load(Ordering::SeqCst), (0..123).sum::<i64>());
}

#[for_loop(schedule = "guided", min_chunk = 3)]
fn accumulate_guided(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i * i;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_guided() {
    accumulate_guided(0, 200, 1);
}

#[test]
fn guided_for_attribute_covers_range() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_guided();
    assert_eq!(
        FOR_SUM.load(Ordering::SeqCst),
        (0..200).map(|i| i * i).sum::<i64>()
    );
}

#[for_loop(schedule = "adaptive", min_chunk = 2)]
fn accumulate_adaptive(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i * 3;
        i += step;
    }
    FOR_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_adaptive() {
    accumulate_adaptive(0, 250, 1);
}

#[test]
fn adaptive_for_attribute_covers_range() {
    FOR_SUM.store(0, Ordering::SeqCst);
    region_with_adaptive();
    assert_eq!(
        FOR_SUM.load(Ordering::SeqCst),
        (0..250).map(|i| i * 3).sum::<i64>()
    );
}

#[critical]
fn anonymous_critical_bump(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn critical_attribute_without_id_uses_private_lock() {
    let counter = AtomicUsize::new(0);
    anonymous_critical_bump(&counter);
    anonymous_critical_bump(&counter);
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

#[single]
fn single_unit_step(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_unit_single() {
    static C: AtomicUsize = AtomicUsize::new(0);
    single_unit_step(&C);
    aomp::ctx::barrier();
    assert_eq!(C.load(Ordering::SeqCst), 1);
}

#[test]
fn unit_single_runs_once() {
    region_with_unit_single();
}

#[barrier_after]
fn barriered_value() -> u64 {
    thread_id() as u64
}

#[parallel(threads = 2)]
fn region_with_barriered_value() {
    let v = barriered_value();
    assert_eq!(
        v,
        thread_id() as u64,
        "barrier_after must pass the value through"
    );
}

#[test]
fn barrier_after_preserves_return_value() {
    region_with_barriered_value();
}

static IF_CLAUSE_HITS: AtomicUsize = AtomicUsize::new(0);

#[parallel(threads = 4, only_if = IF_CLAUSE_HITS.load(Ordering::SeqCst) >= 10)]
fn conditionally_parallel() {
    IF_CLAUSE_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn only_if_clause_gates_parallelism() {
    IF_CLAUSE_HITS.store(0, Ordering::SeqCst);
    conditionally_parallel(); // condition false -> sequential (1 hit)
    assert_eq!(IF_CLAUSE_HITS.load(Ordering::SeqCst), 1);
    IF_CLAUSE_HITS.store(10, Ordering::SeqCst);
    conditionally_parallel(); // condition true -> team of 4
    assert_eq!(IF_CLAUSE_HITS.load(Ordering::SeqCst), 14);
}

// ---------------------------------------------------------------------
// Task dependences (`#[task(depend(...))]`) and `#[taskloop]`.

static DEP_CELL: AtomicI64 = AtomicI64::new(0);
static DEP_BAD_READS: AtomicUsize = AtomicUsize::new(0);

#[task(depend(out = "dep_cell"))]
fn dep_writer() {
    DEP_CELL.fetch_add(1, Ordering::SeqCst);
}

#[task(depend(in = "dep_cell"))]
fn dep_reader() {
    if DEP_CELL.load(Ordering::SeqCst) == 0 {
        DEP_BAD_READS.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn task_depend_attribute_orders_writer_before_reader() {
    DEP_CELL.store(0, Ordering::SeqCst);
    DEP_BAD_READS.store(0, Ordering::SeqCst);
    let group = DepGroup::new();
    aomplib::runtime::deps::scope(&group, || {
        dep_writer();
        dep_reader();
    });
    group.wait().expect("acyclic");
    assert_eq!(DEP_CELL.load(Ordering::SeqCst), 1);
    assert_eq!(DEP_BAD_READS.load(Ordering::SeqCst), 0);
}

#[test]
fn task_depend_attribute_runs_inline_without_scope() {
    // Outside any ambient dependence scope a dependent task degrades to
    // an inline call — sequential semantics.
    DEP_CELL.store(0, Ordering::SeqCst);
    DEP_BAD_READS.store(0, Ordering::SeqCst);
    dep_writer();
    dep_reader();
    assert_eq!(DEP_CELL.load(Ordering::SeqCst), 1);
    assert_eq!(DEP_BAD_READS.load(Ordering::SeqCst), 0);
}

static TL_SUM: AtomicI64 = AtomicI64::new(0);

#[taskloop(min_chunk = 4)]
fn taskloop_accumulate(start: i64, end: i64, step: i64) {
    let mut local = 0;
    let mut i = start;
    while i < end {
        local += i;
        i += step;
    }
    TL_SUM.fetch_add(local, Ordering::SeqCst);
}

#[parallel(threads = 4)]
fn region_with_taskloop() {
    taskloop_accumulate(0, 500, 1);
}

#[test]
fn taskloop_attribute_covers_range_in_team() {
    TL_SUM.store(0, Ordering::SeqCst);
    region_with_taskloop();
    assert_eq!(TL_SUM.load(Ordering::SeqCst), (0..500).sum::<i64>());
}

#[test]
fn taskloop_attribute_sequential_without_region() {
    TL_SUM.store(0, Ordering::SeqCst);
    taskloop_accumulate(0, 100, 1);
    assert_eq!(TL_SUM.load(Ordering::SeqCst), (0..100).sum::<i64>());
}
