//! # aomplib — Rust reproduction of AOmpLib (ICPP 2013)
//!
//! AOmpLib (Medeiros & Sobral, *AOmpLib: An Aspect Library for
//! Large-Scale Multi-Core Parallel Programming*, ICPP 2013) is an AspectJ
//! library whose pluggable aspect modules mimic the OpenMP standard for
//! Java. This workspace reproduces the system in Rust:
//!
//! * [`aomp`] (re-exported as [`runtime`]) — the OpenMP-mimic execution
//!   model: parallel regions, for work-sharing (static block / static
//!   cyclic / dynamic / guided), barriers, critical sections, single /
//!   master (with result broadcast), readers-writer, ordered sections,
//!   tasks and future tasks, thread-local fields and reductions.
//! * [`aomp_weaver`] (re-exported as [`weaver`]) — the pointcut style:
//!   join points, pointcuts with glob / or / and / not composition,
//!   mechanism bindings, pluggable aspect modules, deploy/undeploy at run
//!   time (load-time weaving), custom application-specific advice.
//! * [`aomp_macros`] (re-exported as [`annotations`]) — the annotation
//!   style: `#[parallel]`, `#[for_loop]`, `#[critical]`, `#[master]`,
//!   `#[single]`, `#[barrier_before]`, `#[barrier_after]`, `#[task]`,
//!   `#[future_task]`, expanding to the paper Figure 12 shims.
//! * [`aomp_jgf`] (re-exported as [`jgf`]) — Rust ports of the Java
//!   Grande Forum benchmarks the paper evaluates on (Crypt, LUFact,
//!   Series, SOR, Sparse, MolDyn, MonteCarlo, RayTracer), each in
//!   sequential, hand-threaded (JGF MT) and AOmpLib style.
//! * [`aomp_simcore`] (re-exported as [`simcore`]) — a deterministic
//!   virtual-time multicore simulator used to regenerate the paper's
//!   speed-up figures on hardware this environment does not have.
//! * [`aomp_evolib`] (re-exported as [`evolib`]) — the paper §VII JECoLi
//!   case study: a metaheuristic framework (GA, differential evolution,
//!   multi-start hill climbing) parallelised entirely by one pluggable
//!   aspect module.
//! * [`aomp_irregular`] (re-exported as [`irregular`]) — the paper §VII
//!   "current work" direction: graph algorithms (BFS, PageRank, triangle
//!   counting) with library and case-specific schedules.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use aomp as runtime;
pub use aomp_evolib as evolib;
pub use aomp_irregular as irregular;
pub use aomp_jgf as jgf;
pub use aomp_macros as annotations;
pub use aomp_simcore as simcore;
pub use aomp_weaver as weaver;

/// Everything a typical AOmpLib-style program imports.
pub mod prelude {
    pub use aomp::prelude::*;
    pub use aomp_macros::{
        barrier_after, barrier_before, critical, for_loop, future_task, master, parallel, single,
        task,
    };
    pub use aomp_weaver::prelude::*;
}
