//! # aomplib — Rust reproduction of AOmpLib (ICPP 2013)
//!
//! AOmpLib (Medeiros & Sobral, *AOmpLib: An Aspect Library for
//! Large-Scale Multi-Core Parallel Programming*, ICPP 2013) is an AspectJ
//! library whose pluggable aspect modules mimic the OpenMP standard for
//! Java. This workspace reproduces the system in Rust:
//!
//! * [`aomp`] (re-exported as [`runtime`]) — the OpenMP-mimic execution
//!   model: parallel regions, for work-sharing (static block / static
//!   cyclic / dynamic / guided), barriers, critical sections, single /
//!   master (with result broadcast), readers-writer, ordered sections,
//!   tasks and future tasks, thread-local fields and reductions.
//! * [`aomp_weaver`] (re-exported as [`weaver`]) — the pointcut style:
//!   join points, pointcuts with glob / or / and / not composition,
//!   mechanism bindings, pluggable aspect modules, deploy/undeploy at run
//!   time (load-time weaving), custom application-specific advice.
//! * [`aomp_macros`] (re-exported as [`annotations`]) — the annotation
//!   style: `#[parallel]`, `#[for_loop]`, `#[critical]`, `#[master]`,
//!   `#[single]`, `#[barrier_before]`, `#[barrier_after]`, `#[task]`,
//!   `#[future_task]`, expanding to the paper Figure 12 shims.
//! * [`aomp_jgf`] (re-exported as [`jgf`]) — Rust ports of the Java
//!   Grande Forum benchmarks the paper evaluates on (Crypt, LUFact,
//!   Series, SOR, Sparse, MolDyn, MonteCarlo, RayTracer), each in
//!   sequential, hand-threaded (JGF MT) and AOmpLib style.
//! * [`aomp_simcore`] (re-exported as [`simcore`]) — a deterministic
//!   virtual-time multicore simulator used to regenerate the paper's
//!   speed-up figures on hardware this environment does not have.
//! * [`aomp_evolib`] (re-exported as [`evolib`]) — the paper §VII JECoLi
//!   case study: a metaheuristic framework (GA, differential evolution,
//!   multi-start hill climbing) parallelised entirely by one pluggable
//!   aspect module.
//! * [`aomp_irregular`] (re-exported as [`irregular`]) — the paper §VII
//!   "current work" direction: graph algorithms (BFS, PageRank, triangle
//!   counting) with library and case-specific schedules.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use aomp as runtime;
pub use aomp_evolib as evolib;
pub use aomp_irregular as irregular;
pub use aomp_jgf as jgf;
pub use aomp_macros as annotations;
pub use aomp_simcore as simcore;
pub use aomp_weaver as weaver;

/// Everything a typical AOmpLib-style program imports.
pub mod prelude {
    pub use aomp::prelude::*;
    pub use aomp_macros::{
        barrier_after, barrier_before, critical, for_loop, future_task, master, parallel,
        replicated, single, task, taskloop,
    };
    pub use aomp_weaver::prelude::*;
}

// This lib target used to compile to an empty test binary ("running
// 0 tests" in `cargo test -q`), which can silently mask a facade that no
// longer re-exports what it promises. These smoke tests keep the target
// honest: every re-exported crate is reachable and the prelude carries a
// working end-to-end slice of the runtime.
#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn prelude_carries_a_working_runtime_slice() {
        let hits = AtomicUsize::new(0);
        region::parallel_with(RegionConfig::new().threads(2), || {
            hits.fetch_add(1, Ordering::SeqCst);
            barrier();
            critical(|| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn facade_reexports_reach_every_crate() {
        // One cheap touchpoint per re-export; a broken alias or a crate
        // dropped from the facade fails to compile or to answer here.
        assert_eq!(crate::runtime::ctx::team_size(), 1);
        assert_eq!(crate::jgf::all_benchmarks().len(), 8);
        assert!(crate::simcore::Machine::i7().cores >= 4);
        assert!(!crate::weaver::Weaver::global()
            .deployed_names()
            .contains(&"no-such-module".to_string()));
    }

    #[test]
    fn annotation_macros_expand_against_the_facade() {
        #[crate::annotations::parallel(threads = 2)]
        fn tiny_region() {
            // Body runs once per team member.
            COUNT.fetch_add(1, Ordering::SeqCst);
        }
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        tiny_region();
        assert_eq!(COUNT.load(Ordering::SeqCst), 2);
    }
}
