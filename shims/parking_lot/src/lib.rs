//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build must succeed with no registry access, so this shim provides
//! the exact subset of the `parking_lot` 0.12 API the workspace uses:
//! [`Mutex`] / [`Condvar`] (with `wait` / `wait_for`), [`RwLock`], and a
//! hand-built [`ReentrantMutex`] with [`try_lock_for`]
//! (`ReentrantMutex::try_lock_for`) so cancellable critical sections can
//! poll. Lock poisoning is intentionally swallowed — parking_lot has no
//! poisoning, and the AOmp runtime implements its own team-poisoning
//! protocol on top.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock that, like parking_lot's, never poisons.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside condvar wait")
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable pairing with [`Mutex`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` for the duration.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, r) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(r.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake every waiter.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire shared access without blocking, or `None` if a writer
    /// holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive access without blocking, or `None` if any
    /// reader or writer holds the lock.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Process-unique id of the current thread (std's `ThreadId::as_u64` is
/// unstable, so the shim mints its own).
fn current_thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

struct ReentrantState {
    owner: u64, // 0 = unowned
    count: usize,
}

/// A mutex the owning thread may re-acquire, mirroring
/// `parking_lot::ReentrantMutex`.
pub struct ReentrantMutex<T: ?Sized> {
    state: std::sync::Mutex<ReentrantState>,
    cv: std::sync::Condvar,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialised by the ownership protocol; the
// guard only hands out `&T`, so `T: Send + Sync` bounds mirror upstream.
unsafe impl<T: ?Sized + Send> Send for ReentrantMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for ReentrantMutex<T> {}

/// RAII guard for [`ReentrantMutex`]; not `Send` (the lock is
/// thread-owned).
pub struct ReentrantMutexGuard<'a, T: ?Sized> {
    lock: &'a ReentrantMutex<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T> ReentrantMutex<T> {
    /// Create a new reentrant mutex.
    pub const fn new(value: T) -> Self {
        Self {
            state: std::sync::Mutex::new(ReentrantState { owner: 0, count: 0 }),
            cv: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T: Default> Default for ReentrantMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for ReentrantMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReentrantMutex { .. }")
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    /// Acquire the lock, blocking until available (reentrant for the
    /// owning thread).
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = current_thread_token();
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.owner != 0 && s.owner != me {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.owner = me;
        s.count += 1;
        ReentrantMutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Try to acquire the lock, giving up after `timeout`.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<ReentrantMutexGuard<'_, T>> {
        let me = current_thread_token();
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.owner != 0 && s.owner != me {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = match self.cv.wait_timeout(s, deadline - now) {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            };
            s = g;
        }
        s.owner = me;
        s.count += 1;
        Some(ReentrantMutexGuard {
            lock: self,
            _not_send: PhantomData,
        })
    }
}

impl<T: ?Sized> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the ownership protocol guarantees this thread holds the
        // lock; only shared references are handed out.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut s = self.lock.state.lock().unwrap_or_else(|e| e.into_inner());
        s.count -= 1;
        if s.count == 0 {
            s.owner = 0;
            drop(s);
            self.lock.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn reentrant_lock_reenters() {
        let m = ReentrantMutex::new(5);
        let a = m.lock();
        let b = m.lock();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn reentrant_try_lock_for_fails_while_held_elsewhere() {
        let m = Arc::new(ReentrantMutex::new(()));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || m2.try_lock_for(Duration::from_millis(20)).is_none());
        assert!(t.join().unwrap());
        drop(g);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
