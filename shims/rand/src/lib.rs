//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Every benchmark-data generator in this workspace seeds an
//! [`rngs::StdRng`] via [`SeedableRng::seed_from_u64`] and draws with
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] — that is the
//! surface reproduced here, backed by xoshiro256++ with SplitMix64 seed
//! expansion. Integer ranges use rejection sampling (no modulo bias), so
//! sequences are uniform, deterministic per seed, and stable across
//! platforms; they are *not* bit-compatible with upstream `rand`.

use std::ops::Range;

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `u64` in `[0, span)` by rejection sampling (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject beyond it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * unit_f64(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let unit: f64 = r.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
