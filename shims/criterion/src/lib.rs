//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the `aomp-bench` benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! implemented as a small wall-clock harness: warm up, run timed samples,
//! print min/mean per-iteration times. No statistics engine, no HTML
//! reports; the point is that `cargo bench` compiles and produces usable
//! numbers with no registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(
            id,
            10,
            Duration::from_millis(100),
            Duration::from_millis(500),
            f,
        );
        self
    }
}

/// A named parameterised benchmark id (`group/function/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up,
            self.measurement,
            f,
        );
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (marker; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up: repeat single iterations until the budget is spent, and
    // estimate the per-iteration cost to size the timed samples.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
    let budget_per_sample = measurement.as_nanos() / samples.max(1) as u128;
    let iters = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

    let mut min = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        min = min.min(ns);
        total += ns;
    }
    let mean = total / samples as f64;
    println!(
        "bench {label:<40} mean {:>12} min {:>12} ({samples} samples x {iters} iters)",
        fmt_ns(mean),
        fmt_ns(min)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle bench functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
