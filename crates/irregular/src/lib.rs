//! # aomp-irregular — graph algorithms over AOmp aspects
//!
//! The paper's conclusion names "the investigation of the feasibility of
//! this approach in more irregular algorithms (e.g., graph based)" as
//! current work (§VII). This crate carries that direction out: a CSR
//! graph substrate plus three classic irregular kernels, each written as
//! a plain sequential base program with join points, parallelised by
//! pluggable aspect modules:
//!
//! * [`bfs`] — level-synchronous breadth-first search (dynamic for over
//!   the frontier + barriers), plus a dependent-task-graph twin
//!   ([`bfs::run_deps`]) that replaces the per-level barriers with
//!   `depend` tags on frontier segments and level-array partitions;
//! * [`pagerank`] — power iteration (block for + master-reduced error),
//!   plus a barriered fixed-iteration twin ([`pagerank::run_phased`])
//!   and its dependent-task-graph counterpart ([`pagerank::run_deps`])
//!   whose per-partition tasks pipeline across iterations;
//! * [`components`] — connected components by label propagation
//!   (fixpoint loop with a master-broadcast convergence flag);
//! * [`triangles`] — triangle counting, the schedule-ablation workhorse:
//!   its per-vertex cost is wildly skewed, so the crate ships a
//!   degree-balanced *case-specific* schedule (a [`CustomAdvice`]) and a
//!   test/bench matrix comparing it against the library schedules.
//!
//! [`CustomAdvice`]: aomp_weaver::CustomAdvice

#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod graph;
pub mod pagerank;
pub mod triangles;

pub use graph::{CsrGraph, GraphKind};
