//! Level-synchronous breadth-first search.
//!
//! The base program is a textbook frontier loop; each level's expansion
//! is a for method (`Graph.bfs.expand`) and the next-frontier collection
//! is a master point — so a deployed aspect turns it into the classic
//! parallel BFS (dynamic chunks over the frontier, barrier, master
//! merge) without touching this file's logic.

use std::sync::atomic::{AtomicI64, Ordering};

use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use crate::graph::CsrGraph;

/// Unreached marker in the level array.
pub const UNREACHED: i64 = -1;

/// The aspect parallelising [`run`]: dynamic for over the frontier with
/// a trailing barrier, master-only frontier collection.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelBfs")
        .bind(
            Pointcut::call("Graph.bfs.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Graph.bfs.expand"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 64 }),
        )
        .bind(
            Pointcut::call("Graph.bfs.expand"),
            Mechanism::barrier_after(),
        )
        .bind(Pointcut::call("Graph.bfs.collect"), Mechanism::master())
        .bind(
            Pointcut::call("Graph.bfs.collect"),
            Mechanism::barrier_after(),
        )
        .build()
}

struct BfsState<'a> {
    g: &'a CsrGraph,
    levels: Vec<AtomicI64>,
    discovered: ThreadLocalField<Vec<u32>>,
    frontier: Mutex<Vec<u32>>,
}

/// BFS levels from `source`; `UNREACHED` for unreachable vertices.
/// Deterministic under any team size (claims are atomic; the next
/// frontier is sorted).
pub fn run(g: &CsrGraph, source: usize) -> Vec<i64> {
    let n = g.vertices();
    let state = BfsState {
        g,
        levels: (0..n).map(|_| AtomicI64::new(UNREACHED)).collect(),
        discovered: ThreadLocalField::new(Vec::new()),
        frontier: Mutex::new(vec![source as u32]),
    };
    state.levels[source].store(0, Ordering::Relaxed);

    aomp_weaver::call("Graph.bfs.run", || {
        let mut level = 0i64;
        loop {
            let frontier_len = state.frontier.lock().len();
            if frontier_len == 0 {
                break;
            }
            // Expand the current frontier (work-shared by the aspect).
            aomp_weaver::call_for(
                "Graph.bfs.expand",
                LoopRange::upto(0, frontier_len as i64),
                |lo, hi, step| {
                    let frontier = state.frontier.lock().clone();
                    let mut i = lo;
                    while i < hi {
                        let v = frontier[i as usize] as usize;
                        for &w in state.g.neighbours(v) {
                            // Atomic claim: first visitor sets the level.
                            if state.levels[w as usize]
                                .compare_exchange(
                                    UNREACHED,
                                    level + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                state.discovered.update_or_init(Vec::new, |d| d.push(w));
                            }
                        }
                        i += step;
                    }
                },
            );
            // Master collects the next frontier from the thread-local
            // buffers (sorted for determinism).
            aomp_weaver::call("Graph.bfs.collect", || {
                let mut next: Vec<u32> = state
                    .discovered
                    .drain_locals()
                    .into_iter()
                    .flatten()
                    .collect();
                next.sort_unstable();
                *state.frontier.lock() = next;
            });
            level += 1;
        }
    });
    state.levels.into_iter().map(|l| l.into_inner()).collect()
}

/// Sequential reference BFS for validation.
pub fn reference(g: &CsrGraph, source: usize) -> Vec<i64> {
    let mut levels = vec![UNREACHED; g.vertices()];
    let mut frontier = vec![source as u32];
    levels[source] = 0;
    let mut level = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbours(v as usize) {
                if levels[w as usize] == UNREACHED {
                    levels[w as usize] = level + 1;
                    next.push(w);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
        level += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn bfs_on_a_path_graph() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(run(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(run(&g, 3), vec![UNREACHED, UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn parallel_bfs_matches_reference() {
        for kind in [GraphKind::Uniform, GraphKind::PowerLaw] {
            let g = CsrGraph::generate(kind, 500, 4, 11);
            let expect = reference(&g, 0);
            // Unwoven (sequential semantics).
            assert_eq!(run(&g, 0), expect, "{kind:?} unwoven");
            // Woven on several team sizes.
            for t in [2usize, 4] {
                let got = Weaver::global().with_deployed(aspect(t), || run(&g, 0));
                assert_eq!(got, expect, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = CsrGraph::from_edges(5, vec![(0, 1), (3, 4)]);
        let levels = run(&g, 0);
        assert_eq!(levels[3], UNREACHED);
        assert_eq!(levels[4], UNREACHED);
    }
}
