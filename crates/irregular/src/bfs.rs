//! Level-synchronous breadth-first search.
//!
//! The base program is a textbook frontier loop; each level's expansion
//! is a for method (`Graph.bfs.expand`) and the next-frontier collection
//! is a master point — so a deployed aspect turns it into the classic
//! parallel BFS (dynamic chunks over the frontier, barrier, master
//! merge) without touching this file's logic.
//!
//! [`run_deps`] replaces the two barriers per level with a dependent
//! task graph over (level, source partition, destination partition)
//! triples: a task scans the frontier segment its source partition
//! produced and claims the unreached neighbours falling in its
//! destination partition. `in` tags on the scanned segment, `inout` tags
//! on the destination partition's level array and next segment carry
//! exactly the orderings level-synchronous BFS needs — and nothing more,
//! so on skewed graphs light partitions race ahead into the next level
//! while the hub partition is still expanding.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use aomp::cell::SyncVec;
use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use crate::graph::CsrGraph;

/// Unreached marker in the level array.
pub const UNREACHED: i64 = -1;

/// The aspect parallelising [`run`]: dynamic for over the frontier with
/// a trailing barrier, master-only frontier collection.
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelBfs")
        .bind(
            Pointcut::call("Graph.bfs.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Graph.bfs.expand"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 64 }),
        )
        .bind(
            Pointcut::call("Graph.bfs.expand"),
            Mechanism::barrier_after(),
        )
        .bind(Pointcut::call("Graph.bfs.collect"), Mechanism::master())
        .bind(
            Pointcut::call("Graph.bfs.collect"),
            Mechanism::barrier_after(),
        )
        .build()
}

struct BfsState<'a> {
    g: &'a CsrGraph,
    levels: Vec<AtomicI64>,
    discovered: ThreadLocalField<Vec<u32>>,
    frontier: Mutex<Vec<u32>>,
}

/// BFS levels from `source`; `UNREACHED` for unreachable vertices.
/// Deterministic under any team size (claims are atomic; the next
/// frontier is sorted).
pub fn run(g: &CsrGraph, source: usize) -> Vec<i64> {
    let n = g.vertices();
    let state = BfsState {
        g,
        levels: (0..n).map(|_| AtomicI64::new(UNREACHED)).collect(),
        discovered: ThreadLocalField::new(Vec::new()),
        frontier: Mutex::new(vec![source as u32]),
    };
    state.levels[source].store(0, Ordering::Relaxed);

    aomp_weaver::call("Graph.bfs.run", || {
        let mut level = 0i64;
        loop {
            let frontier_len = state.frontier.lock().len();
            if frontier_len == 0 {
                break;
            }
            // Expand the current frontier (work-shared by the aspect).
            aomp_weaver::call_for(
                "Graph.bfs.expand",
                LoopRange::upto(0, frontier_len as i64),
                |lo, hi, step| {
                    let frontier = state.frontier.lock().clone();
                    let mut i = lo;
                    while i < hi {
                        let v = frontier[i as usize] as usize;
                        for &w in state.g.neighbours(v) {
                            // Atomic claim: first visitor sets the level.
                            if state.levels[w as usize]
                                .compare_exchange(
                                    UNREACHED,
                                    level + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                state.discovered.update_or_init(Vec::new, |d| d.push(w));
                            }
                        }
                        i += step;
                    }
                },
            );
            // Master collects the next frontier from the thread-local
            // buffers (sorted for determinism).
            aomp_weaver::call("Graph.bfs.collect", || {
                let mut next: Vec<u32> = state
                    .discovered
                    .drain_locals()
                    .into_iter()
                    .flatten()
                    .collect();
                next.sort_unstable();
                *state.frontier.lock() = next;
            });
            level += 1;
        }
    });
    state.levels.into_iter().map(|l| l.into_inner()).collect()
}

/// Sequential reference BFS for validation.
pub fn reference(g: &CsrGraph, source: usize) -> Vec<i64> {
    let mut levels = vec![UNREACHED; g.vertices()];
    let mut frontier = vec![source as u32];
    levels[source] = 0;
    let mut level = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbours(v as usize) {
                if levels[w as usize] == UNREACHED {
                    levels[w as usize] = level + 1;
                    next.push(w);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
        level += 1;
    }
    levels
}

/// The aspect parallelising [`run_deps`] — a team and nothing else;
/// ordering is carried by the dependence tags.
pub fn aspect_deps(threads: usize) -> AspectModule {
    AspectModule::builder("DependentBfs")
        .bind(
            Pointcut::call("Graph.bfs.dag"),
            Mechanism::parallel().threads(threads),
        )
        .build()
}

/// BFS as a dependent task graph. `max_levels` bounds the DAG depth
/// (levels beyond it stay [`UNREACHED`]; pass `g.vertices()` for an
/// exact answer); `parts` is the vertex partition count. Bitwise equal
/// to [`reference`] whenever `max_levels` covers the eccentricity of
/// `source`.
pub fn run_deps(g: &CsrGraph, source: usize, max_levels: usize, parts: usize) -> Vec<i64> {
    let n = g.vertices();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let part_of = |v: usize| (v * parts / n).min(parts - 1);
    let levels = Arc::new(SyncVec::tracked(vec![UNREACHED; n], "bfs.dag.levels"));
    // segs[l][p]: frontier vertices claimed *into* partition p at level l.
    let segs: Arc<Vec<Vec<Mutex<Vec<u32>>>>> = Arc::new(
        (0..=max_levels)
            .map(|_| (0..parts).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
    );
    // SAFETY: sole accessor — no tasks exist yet; the creation edges of
    // the spawns below order every task after this write.
    unsafe { levels.set(source, 0) };
    segs[0][part_of(source)].lock().push(source as u32);
    let graph = Arc::new(g.clone());
    let group = DepGroup::new();
    aomp_weaver::call("Graph.bfs.dag", || {
        if !in_parallel() || thread_id() == 0 {
            for l in 0..max_levels {
                for sp in 0..parts {
                    for dp in 0..parts {
                        let deps = [
                            // The segment this task scans: complete once
                            // its level-(l-1) producers are done.
                            Dep::input(Tag::part("bfs.seg", (l * parts + sp) as u64)),
                            // Claims into dp: serialized per partition,
                            // and after all level-l claims into dp.
                            Dep::inout(Tag::part("bfs.levels", dp as u64)),
                            // The segment this task appends to.
                            Dep::inout(Tag::part("bfs.seg", ((l + 1) * parts + dp) as u64)),
                        ];
                        let levels = Arc::clone(&levels);
                        let segs = Arc::clone(&segs);
                        let graph = Arc::clone(&graph);
                        group.spawn(deps, move || {
                            let frontier = segs[l][sp].lock();
                            let lvl = (l + 1) as i64;
                            let mut found = Vec::new();
                            for &v in frontier.iter() {
                                for &w in graph.neighbours(v as usize) {
                                    let w = w as usize;
                                    let wp = (w * parts / n).min(parts - 1);
                                    // SAFETY: the inout tag on dp's level
                                    // partition makes this task its sole
                                    // accessor right now.
                                    if wp == dp && unsafe { levels.read(w) } == UNREACHED {
                                        unsafe { levels.set(w, lvl) };
                                        found.push(w as u32);
                                    }
                                }
                            }
                            if !found.is_empty() {
                                segs[l + 1][dp].lock().extend(found);
                            }
                        });
                    }
                }
            }
            group.close();
        }
        group.run().expect("tag-derived dependences are acyclic");
    });
    // SAFETY: the graph has been joined; no concurrent access remains.
    unsafe { levels.snapshot() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn bfs_on_a_path_graph() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(run(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(run(&g, 3), vec![UNREACHED, UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn parallel_bfs_matches_reference() {
        for kind in [GraphKind::Uniform, GraphKind::PowerLaw] {
            let g = CsrGraph::generate(kind, 500, 4, 11);
            let expect = reference(&g, 0);
            // Unwoven (sequential semantics).
            assert_eq!(run(&g, 0), expect, "{kind:?} unwoven");
            // Woven on several team sizes.
            for t in [2usize, 4] {
                let got = Weaver::global().with_deployed(aspect(t), || run(&g, 0));
                assert_eq!(got, expect, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = CsrGraph::from_edges(5, vec![(0, 1), (3, 4)]);
        let levels = run(&g, 0);
        assert_eq!(levels[3], UNREACHED);
        assert_eq!(levels[4], UNREACHED);
    }

    #[test]
    fn dep_graph_bfs_matches_reference() {
        for kind in [GraphKind::Uniform, GraphKind::PowerLaw] {
            let g = CsrGraph::generate(kind, 400, 4, 11);
            let expect = reference(&g, 0);
            // Unwoven (executor-mode graph).
            assert_eq!(run_deps(&g, 0, 32, 3), expect, "{kind:?} unwoven");
            for t in [2usize, 4] {
                let got =
                    Weaver::global().with_deployed(aspect_deps(t), || run_deps(&g, 0, 32, 2 * t));
                assert_eq!(got, expect, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn dep_graph_bfs_truncates_at_max_levels() {
        let g = CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let levels = run_deps(&g, 0, 2, 2);
        assert_eq!(levels, vec![0, 1, 2, UNREACHED, UNREACHED]);
        // Full depth recovers the reference.
        assert_eq!(run_deps(&g, 0, 5, 2), reference(&g, 0));
    }
}
