//! PageRank by pull-based power iteration.
//!
//! Each iteration is a for method over vertices (`Graph.pagerank.sweep`)
//! reading the previous rank buffer and writing the next (double
//! buffering, flipped by iteration parity) — disjoint by vertex, so any
//! schedule is race-free and the result is bitwise identical for every
//! team size. The convergence error is accumulated in a
//! `@ThreadLocalField` and folded at a master-broadcast value join
//! point, the same reduction idiom as the paper's MolDyn.
//!
//! Two formulations of the fixed-iteration kernel coexist:
//!
//! * [`run_phased`] — the classic barriered twin: every iteration is a
//!   work-shared sweep followed by a team barrier, so the slowest
//!   partition of iteration `k` gates *all* of iteration `k + 1`.
//! * [`run_deps`] — the dependent task graph: one task per (iteration,
//!   partition) with `depend(in:)` tags on the source-buffer partitions
//!   it actually reads (from the transpose's partition structure) and a
//!   `depend(out:)` tag on the destination partition it writes. A light
//!   partition starts iteration `k + 1` as soon as *its* in-neighbour
//!   partitions finish iteration `k` — on skewed graphs the hub
//!   partition no longer stalls everyone (the WAR hazard against the
//!   previous iteration's readers is handled by the runtime's reader-set
//!   tracking). Both are bitwise equal to [`reference_iters`].

use std::sync::Arc;

use aomp::cell::SyncVec;
use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use crate::graph::CsrGraph;

/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// The aspect parallelising [`run`].
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelPageRank")
        .bind(
            Pointcut::call("Graph.pagerank.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Graph.pagerank.sweep"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .bind(
            Pointcut::call("Graph.pagerank.sweep"),
            Mechanism::barrier_after(),
        )
        .bind(Pointcut::call("Graph.pagerank.error"), Mechanism::master())
        .bind(
            Pointcut::call("Graph.pagerank.error"),
            Mechanism::barrier_before(),
        )
        .build()
}

/// PageRank of `g`, iterating until the L1 delta falls below `tol` or
/// `max_iters` is reached. Returns `(ranks, iterations_used)`.
pub fn run(g: &CsrGraph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    // Double buffer, flipped by iteration parity.
    let bufs = [
        SyncVec::tracked(vec![1.0 / n as f64; n], "pagerank.ranks.even"),
        SyncVec::zeroed_tracked(n, "pagerank.ranks.odd"),
    ];
    let err_tlf = ThreadLocalField::new(0.0f64);
    let iters_done = Mutex::new(0usize);

    aomp_weaver::call("Graph.pagerank.run", || {
        for iter in 0..max_iters {
            let (src, dst) = (&bufs[iter % 2], &bufs[(iter + 1) % 2]);
            aomp_weaver::call_for(
                "Graph.pagerank.sweep",
                LoopRange::upto(0, n as i64),
                |lo, hi, step| {
                    let mut v = lo;
                    let mut local_err = 0.0;
                    while v < hi {
                        let vu = v as usize;
                        let mut sum = 0.0;
                        for &u in gt.neighbours(vu) {
                            let ud = out_degree[u as usize];
                            if ud > 0 {
                                // SAFETY: src is read-only during the sweep.
                                sum += unsafe { src.read(u as usize) } / ud as f64;
                            }
                        }
                        let nv = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
                        // SAFETY: vertex vu is schedule-owned for writing.
                        unsafe {
                            local_err += (nv - src.read(vu)).abs();
                            dst.set(vu, nv);
                        }
                        v += step;
                    }
                    err_tlf.update_or_init(|| 0.0, |e| *e += local_err);
                },
            );
            // Master folds the error; the value is broadcast so every
            // thread takes the same branch below.
            let err: f64 = aomp_weaver::call_value("Graph.pagerank.error", || {
                let e = err_tlf.drain_locals().into_iter().sum();
                *iters_done.lock() = iter + 1;
                e
            });
            if err < tol {
                break;
            }
        }
    });
    let iters = *iters_done.lock();
    // The last-written buffer holds the result.
    // SAFETY: the region has joined; no concurrent access remains.
    let ranks = unsafe { bufs[iters % 2].snapshot() };
    (ranks, iters)
}

/// Sequential reference implementation for validation.
pub fn reference(g: &CsrGraph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut iters = 0;
    for _ in 0..max_iters {
        let mut next = vec![0.0; n];
        let mut err = 0.0;
        for (v, nx) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in gt.neighbours(v) {
                let ud = out_degree[u as usize];
                if ud > 0 {
                    sum += ranks[u as usize] / ud as f64;
                }
            }
            *nx = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
            err += (*nx - ranks[v]).abs();
        }
        ranks = next;
        iters += 1;
        if err < tol {
            break;
        }
    }
    (ranks, iters)
}

/// Sequential reference for exactly `iters` power iterations (no
/// convergence test) — the oracle both fixed-iteration parallel
/// formulations are compared against bitwise.
pub fn reference_iters(g: &CsrGraph, iters: usize) -> Vec<f64> {
    let n = g.vertices();
    if n == 0 {
        return Vec::new();
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for (v, nx) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in gt.neighbours(v) {
                let ud = out_degree[u as usize];
                if ud > 0 {
                    sum += ranks[u as usize] / ud as f64;
                }
            }
            *nx = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
        }
        ranks = next;
    }
    ranks
}

/// The barriered twin of [`run_deps`]: exactly `iters` sweeps, each a
/// work-shared for method with a trailing team barrier. Uses the same
/// join points as [`run`], so [`aspect`] parallelises it.
pub fn run_phased(g: &CsrGraph, iters: usize) -> Vec<f64> {
    let n = g.vertices();
    if n == 0 {
        return Vec::new();
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let bufs = [
        SyncVec::tracked(vec![1.0 / n as f64; n], "pagerank.ranks.even"),
        SyncVec::zeroed_tracked(n, "pagerank.ranks.odd"),
    ];
    aomp_weaver::call("Graph.pagerank.run", || {
        for iter in 0..iters {
            let (src, dst) = (&bufs[iter % 2], &bufs[(iter + 1) % 2]);
            aomp_weaver::call_for(
                "Graph.pagerank.sweep",
                LoopRange::upto(0, n as i64),
                |lo, hi, step| {
                    let mut v = lo;
                    while v < hi {
                        let vu = v as usize;
                        let mut sum = 0.0;
                        for &u in gt.neighbours(vu) {
                            let ud = out_degree[u as usize];
                            if ud > 0 {
                                // SAFETY: src is read-only during the sweep.
                                sum += unsafe { src.read(u as usize) } / ud as f64;
                            }
                        }
                        // SAFETY: vertex vu is schedule-owned for writing.
                        unsafe { dst.set(vu, (1.0 - DAMPING) / n as f64 + DAMPING * sum) };
                        v += step;
                    }
                },
            );
        }
    });
    // SAFETY: the region has joined; no concurrent access remains.
    unsafe { bufs[iters % 2].snapshot() }
}

/// Contiguous block bounds of partition `p` of `n` vertices in `parts`
/// partitions: `[lo, hi)`.
pub fn partition_bounds(n: usize, parts: usize, p: usize) -> (usize, usize) {
    (p * n / parts, (p + 1) * n / parts)
}

/// For each partition `p`, the partitions holding at least one
/// in-neighbour of a vertex of `p` — i.e. the source-buffer partitions
/// the `p`-sweep task reads. `gt` is the transpose of the graph.
pub fn source_partitions(gt: &CsrGraph, parts: usize) -> Vec<Vec<u64>> {
    let n = gt.vertices();
    let part_of = |v: usize| (v * parts / n).min(parts - 1);
    (0..parts)
        .map(|p| {
            let (lo, hi) = partition_bounds(n, parts, p);
            let mut seen = vec![false; parts];
            for v in lo..hi {
                for &u in gt.neighbours(v) {
                    seen[part_of(u as usize)] = true;
                }
            }
            (0..parts).filter(|&q| seen[q]).map(|q| q as u64).collect()
        })
        .collect()
}

/// The aspect parallelising [`run_deps`] — only a team is needed; the
/// ordering is carried by the dependence tags, not barriers.
pub fn aspect_deps(threads: usize) -> AspectModule {
    AspectModule::builder("DependentPageRank")
        .bind(
            Pointcut::call("Graph.pagerank.dag"),
            Mechanism::parallel().threads(threads),
        )
        .build()
}

/// PageRank as a dependent task graph: one task per (iteration,
/// partition), `in` tags on the source-buffer partitions it reads, an
/// `out` tag on the destination partition it writes. Bitwise equal to
/// [`reference_iters`] for any team size and partition count.
pub fn run_deps(g: &CsrGraph, iters: usize, parts: usize) -> Vec<f64> {
    let n = g.vertices();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let gt = Arc::new(g.transpose());
    let out_degree: Arc<Vec<usize>> = Arc::new((0..n).map(|v| g.degree(v)).collect());
    let srcparts = source_partitions(&gt, parts);
    let bufs = Arc::new([
        SyncVec::tracked(vec![1.0 / n as f64; n], "pagerank.dag.even"),
        SyncVec::zeroed_tracked(n, "pagerank.dag.odd"),
    ]);
    let group = DepGroup::new();
    aomp_weaver::call("Graph.pagerank.dag", || {
        if !in_parallel() || thread_id() == 0 {
            for iter in 0..iters {
                let (src_name, dst_name) = if iter % 2 == 0 {
                    ("pagerank.dag.even", "pagerank.dag.odd")
                } else {
                    ("pagerank.dag.odd", "pagerank.dag.even")
                };
                for (p, sp) in srcparts.iter().enumerate() {
                    let mut deps: Vec<Dep> = sp
                        .iter()
                        .map(|&q| Dep::input(Tag::part(src_name, q)))
                        .collect();
                    deps.push(Dep::output(Tag::part(dst_name, p as u64)));
                    let (lo, hi) = partition_bounds(n, parts, p);
                    let bufs = Arc::clone(&bufs);
                    let gt = Arc::clone(&gt);
                    let out_degree = Arc::clone(&out_degree);
                    group.spawn(deps, move || {
                        let (src, dst) = (&bufs[iter % 2], &bufs[(iter + 1) % 2]);
                        for v in lo..hi {
                            let mut sum = 0.0;
                            for &u in gt.neighbours(v) {
                                let ud = out_degree[u as usize];
                                if ud > 0 {
                                    // SAFETY: the in-tag on u's partition
                                    // orders this read after its writer.
                                    sum += unsafe { src.read(u as usize) } / ud as f64;
                                }
                            }
                            // SAFETY: the out-tag makes this task the
                            // partition's sole writer.
                            unsafe { dst.set(v, (1.0 - DAMPING) / n as f64 + DAMPING * sum) };
                        }
                    });
                }
            }
            group.close();
        }
        group.run().expect("tag-derived dependences are acyclic");
    });
    // SAFETY: the graph has been joined; no concurrent access remains.
    unsafe { bufs[iters % 2].snapshot() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn pagerank_matches_reference_bitwise() {
        let g = CsrGraph::generate(GraphKind::Uniform, 300, 5, 42);
        let (expect, expect_iters) = reference(&g, 1e-8, 100);
        // Unwoven.
        let (got, iters) = run(&g, 1e-8, 100);
        assert_eq!(got, expect);
        assert_eq!(iters, expect_iters);
        // Woven at several team sizes.
        for t in [2usize, 4] {
            let (got, iters) = Weaver::global().with_deployed(aspect(t), || run(&g, 1e-8, 100));
            assert_eq!(got, expect, "t={t}");
            assert_eq!(iters, expect_iters, "t={t}");
        }
    }

    #[test]
    fn ranks_sum_to_about_one() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 500, 6, 9);
        let (ranks, _) = run(&g, 1e-10, 200);
        let total: f64 = ranks.iter().sum();
        // Dangling vertices leak a little mass in this formulation.
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn hub_gets_high_rank() {
        // star: everyone points at vertex 0.
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = CsrGraph::from_edges(50, edges);
        let (ranks, _) = run(&g, 1e-10, 100);
        let hub = ranks[0];
        assert!(ranks[1..].iter().all(|&r| r < hub), "hub must dominate");
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, vec![]);
        let (ranks, iters) = run(&g, 1e-8, 10);
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }

    #[test]
    fn dep_graph_matches_reference_bitwise() {
        for kind in [GraphKind::Uniform, GraphKind::PowerLaw] {
            let g = CsrGraph::generate(kind, 300, 5, 42);
            let expect = reference_iters(&g, 8);
            // Unwoven (executor-mode graph).
            assert_eq!(run_deps(&g, 8, 6), expect, "{kind:?} unwoven");
            // Barriered twin, unwoven and woven.
            assert_eq!(run_phased(&g, 8), expect, "{kind:?} phased unwoven");
            for t in [2usize, 4] {
                let got = Weaver::global().with_deployed(aspect_deps(t), || run_deps(&g, 8, 2 * t));
                assert_eq!(got, expect, "{kind:?} deps t={t}");
                let got = Weaver::global().with_deployed(aspect(t), || run_phased(&g, 8));
                assert_eq!(got, expect, "{kind:?} phased t={t}");
            }
        }
    }

    #[test]
    fn source_partitions_cover_actual_reads() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 200, 4, 7);
        let gt = g.transpose();
        let parts = 5;
        let n = g.vertices();
        let sp = source_partitions(&gt, parts);
        let part_of = |v: usize| (v * parts / n).min(parts - 1);
        for p in 0..parts {
            let (lo, hi) = partition_bounds(n, parts, p);
            for v in lo..hi {
                for &u in gt.neighbours(v) {
                    assert!(
                        sp[p].contains(&(part_of(u as usize) as u64)),
                        "partition {p} reads {u} but lacks its partition tag"
                    );
                }
            }
        }
    }

    #[test]
    fn dep_graph_zero_iters_and_empty() {
        let g = CsrGraph::from_edges(0, vec![]);
        assert!(run_deps(&g, 4, 2).is_empty());
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        assert_eq!(run_deps(&g, 0, 2), vec![1.0 / 3.0; 3]);
    }
}
