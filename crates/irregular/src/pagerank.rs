//! PageRank by pull-based power iteration.
//!
//! Each iteration is a for method over vertices (`Graph.pagerank.sweep`)
//! reading the previous rank buffer and writing the next (double
//! buffering, flipped by iteration parity) — disjoint by vertex, so any
//! schedule is race-free and the result is bitwise identical for every
//! team size. The convergence error is accumulated in a
//! `@ThreadLocalField` and folded at a master-broadcast value join
//! point, the same reduction idiom as the paper's MolDyn.

use aomp::cell::SyncVec;
use aomp::prelude::*;
use aomp_weaver::prelude::*;
use parking_lot::Mutex;

use crate::graph::CsrGraph;

/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// The aspect parallelising [`run`].
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelPageRank")
        .bind(
            Pointcut::call("Graph.pagerank.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Graph.pagerank.sweep"),
            Mechanism::for_loop(Schedule::StaticBlock),
        )
        .bind(
            Pointcut::call("Graph.pagerank.sweep"),
            Mechanism::barrier_after(),
        )
        .bind(Pointcut::call("Graph.pagerank.error"), Mechanism::master())
        .bind(
            Pointcut::call("Graph.pagerank.error"),
            Mechanism::barrier_before(),
        )
        .build()
}

/// PageRank of `g`, iterating until the L1 delta falls below `tol` or
/// `max_iters` is reached. Returns `(ranks, iterations_used)`.
pub fn run(g: &CsrGraph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    // Double buffer, flipped by iteration parity.
    let bufs = [
        SyncVec::tracked(vec![1.0 / n as f64; n], "pagerank.ranks.even"),
        SyncVec::zeroed_tracked(n, "pagerank.ranks.odd"),
    ];
    let err_tlf = ThreadLocalField::new(0.0f64);
    let iters_done = Mutex::new(0usize);

    aomp_weaver::call("Graph.pagerank.run", || {
        for iter in 0..max_iters {
            let (src, dst) = (&bufs[iter % 2], &bufs[(iter + 1) % 2]);
            aomp_weaver::call_for(
                "Graph.pagerank.sweep",
                LoopRange::upto(0, n as i64),
                |lo, hi, step| {
                    let mut v = lo;
                    let mut local_err = 0.0;
                    while v < hi {
                        let vu = v as usize;
                        let mut sum = 0.0;
                        for &u in gt.neighbours(vu) {
                            let ud = out_degree[u as usize];
                            if ud > 0 {
                                // SAFETY: src is read-only during the sweep.
                                sum += unsafe { src.read(u as usize) } / ud as f64;
                            }
                        }
                        let nv = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
                        // SAFETY: vertex vu is schedule-owned for writing.
                        unsafe {
                            local_err += (nv - src.read(vu)).abs();
                            dst.set(vu, nv);
                        }
                        v += step;
                    }
                    err_tlf.update_or_init(|| 0.0, |e| *e += local_err);
                },
            );
            // Master folds the error; the value is broadcast so every
            // thread takes the same branch below.
            let err: f64 = aomp_weaver::call_value("Graph.pagerank.error", || {
                let e = err_tlf.drain_locals().into_iter().sum();
                *iters_done.lock() = iter + 1;
                e
            });
            if err < tol {
                break;
            }
        }
    });
    let iters = *iters_done.lock();
    // The last-written buffer holds the result.
    // SAFETY: the region has joined; no concurrent access remains.
    let ranks = unsafe { bufs[iters % 2].snapshot() };
    (ranks, iters)
}

/// Sequential reference implementation for validation.
pub fn reference(g: &CsrGraph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = g.vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let gt = g.transpose();
    let out_degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut iters = 0;
    for _ in 0..max_iters {
        let mut next = vec![0.0; n];
        let mut err = 0.0;
        for (v, nx) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &u in gt.neighbours(v) {
                let ud = out_degree[u as usize];
                if ud > 0 {
                    sum += ranks[u as usize] / ud as f64;
                }
            }
            *nx = (1.0 - DAMPING) / n as f64 + DAMPING * sum;
            err += (*nx - ranks[v]).abs();
        }
        ranks = next;
        iters += 1;
        if err < tol {
            break;
        }
    }
    (ranks, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn pagerank_matches_reference_bitwise() {
        let g = CsrGraph::generate(GraphKind::Uniform, 300, 5, 42);
        let (expect, expect_iters) = reference(&g, 1e-8, 100);
        // Unwoven.
        let (got, iters) = run(&g, 1e-8, 100);
        assert_eq!(got, expect);
        assert_eq!(iters, expect_iters);
        // Woven at several team sizes.
        for t in [2usize, 4] {
            let (got, iters) = Weaver::global().with_deployed(aspect(t), || run(&g, 1e-8, 100));
            assert_eq!(got, expect, "t={t}");
            assert_eq!(iters, expect_iters, "t={t}");
        }
    }

    #[test]
    fn ranks_sum_to_about_one() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 500, 6, 9);
        let (ranks, _) = run(&g, 1e-10, 200);
        let total: f64 = ranks.iter().sum();
        // Dangling vertices leak a little mass in this formulation.
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn hub_gets_high_rank() {
        // star: everyone points at vertex 0.
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = CsrGraph::from_edges(50, edges);
        let (ranks, _) = run(&g, 1e-10, 100);
        let hub = ranks[0];
        assert!(ranks[1..].iter().all(|&r| r < hub), "hub must dominate");
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, vec![]);
        let (ranks, iters) = run(&g, 1e-8, 10);
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }
}
