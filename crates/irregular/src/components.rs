//! Connected components by label propagation — a fixpoint iteration
//! whose per-round "did anything change?" flag is reduced through a
//! thread-local field and broadcast from the master, the same
//! reduce-and-decide idiom as PageRank's error (and MolDyn's kinetic
//! energy).
//!
//! Edges are treated as undirected. Labels only ever decrease
//! (min-propagation), so the woven result is independent of thread count
//! and schedule.

use std::sync::atomic::{AtomicU32, Ordering};

use aomp::prelude::*;
use aomp_weaver::prelude::*;

use crate::graph::CsrGraph;

/// The aspect parallelising [`run`].
pub fn aspect(threads: usize) -> AspectModule {
    AspectModule::builder("ParallelComponents")
        .bind(
            Pointcut::call("Graph.cc.run"),
            Mechanism::parallel().threads(threads),
        )
        .bind(
            Pointcut::call("Graph.cc.sweep"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 128 }),
        )
        .bind(Pointcut::call("Graph.cc.changed"), Mechanism::master())
        .bind(
            Pointcut::call("Graph.cc.changed"),
            Mechanism::barrier_before(),
        )
        .build()
}

/// Component label per vertex (the smallest reachable vertex id).
pub fn run(g: &CsrGraph) -> Vec<u32> {
    let n = g.vertices();
    let gt = g.transpose();
    let labels: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();
    let changed_tlf = ThreadLocalField::new(0usize);
    let labels_ref = &labels;

    aomp_weaver::call("Graph.cc.run", || {
        loop {
            aomp_weaver::call_for(
                "Graph.cc.sweep",
                LoopRange::upto(0, n as i64),
                |lo, hi, step| {
                    let mut local_changes = 0usize;
                    let mut v = lo;
                    while v < hi {
                        let vu = v as usize;
                        let mut best = labels_ref[vu].load(Ordering::Relaxed);
                        // Undirected view: out- and in-neighbours.
                        for &w in g.neighbours(vu).iter().chain(gt.neighbours(vu)) {
                            best = best.min(labels_ref[w as usize].load(Ordering::Relaxed));
                        }
                        // fetch_min keeps concurrent updates monotone.
                        let prev = labels_ref[vu].fetch_min(best, Ordering::Relaxed);
                        if best < prev {
                            local_changes += 1;
                        }
                        v += step;
                    }
                    changed_tlf.update_or_init(|| 0, |c| *c += local_changes);
                },
            );
            let changed: usize = aomp_weaver::call_value("Graph.cc.changed", || {
                changed_tlf.drain_locals().into_iter().sum()
            });
            if changed == 0 {
                break;
            }
        }
    });
    labels.into_iter().map(|l| l.into_inner()).collect()
}

/// Sequential reference via union–find.
pub fn reference(g: &CsrGraph) -> Vec<u32> {
    let n = g.vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for v in 0..n {
        for &w in g.neighbours(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, w as usize));
            if a != b {
                let (lo, hi) = (a.min(b), a.max(b));
                parent[hi] = lo;
            }
        }
    }
    // Normalise every component to its minimum vertex id.
    let mut min_of = vec![u32::MAX; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        min_of[r] = min_of[r].min(v as u32);
    }
    let mut label = vec![0u32; n];
    for (v, l) in label.iter_mut().enumerate() {
        let r = find(&mut parent, v);
        *l = min_of[r];
    }
    label
}

/// Number of distinct components in a label vector.
pub fn component_count(labels: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &l in labels {
        seen.insert(l);
    }
    seen.len()
}

/// Count of label-propagation rounds the last [`run`] performed is not
/// tracked globally; this helper exists for tests that need a stable
/// measure of graph diameter-ish behaviour.
pub fn rounds_upper_bound(g: &CsrGraph) -> usize {
    g.vertices() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    #[test]
    fn two_components_on_a_split_path() {
        let g = CsrGraph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let labels = run(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(component_count(&labels), 2);
    }

    #[test]
    fn matches_union_find_reference() {
        for kind in [GraphKind::Uniform, GraphKind::PowerLaw] {
            let g = CsrGraph::generate(kind, 400, 2, 77);
            let expect = reference(&g);
            assert_eq!(run(&g), expect, "{kind:?} unwoven");
            for t in [2usize, 4] {
                let got = Weaver::global().with_deployed(aspect(t), || run(&g));
                assert_eq!(got, expect, "{kind:?} t={t}");
            }
        }
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = CsrGraph::from_edges(4, vec![]);
        assert_eq!(run(&g), vec![0, 1, 2, 3]);
        assert_eq!(component_count(&run(&g)), 4);
    }

    #[test]
    fn dense_graph_collapses_to_one_component() {
        let mut edges = Vec::new();
        for v in 1..50u32 {
            edges.push((v - 1, v));
        }
        let g = CsrGraph::from_edges(50, edges);
        let labels = run(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
