//! Triangle counting — the schedule ablation workhorse.
//!
//! The kernel orients each undirected edge from the lower-degree to the
//! higher-degree endpoint and counts, per vertex, the adjacency
//! intersections among its out-neighbours. Cost per vertex is roughly
//! deg(v)², so on a power-law graph a block schedule is catastrophically
//! imbalanced — which is exactly why the paper keeps case-specific
//! schedules pluggable. [`DegreeBalancedSchedule`] is that case-specific
//! aspect: it splits vertices at equal Σdeg² boundaries.

use std::sync::atomic::{AtomicU64, Ordering};

use aomp::ctx;
use aomp::prelude::*;
use aomp_weaver::prelude::*;

use crate::graph::CsrGraph;

/// Orient an (implicitly undirected) graph: each edge appears once,
/// pointing from the endpoint with smaller (degree, id) to the larger —
/// the standard preprocessing that bounds per-vertex work.
pub fn orient(g: &CsrGraph) -> CsrGraph {
    let n = g.vertices();
    // Total (in+out) degree as the ranking.
    let mut total_deg = vec![0usize; n];
    for v in 0..n {
        total_deg[v] += g.degree(v);
        for &w in g.neighbours(v) {
            total_deg[w as usize] += 1;
        }
    }
    let rank = |v: usize| (total_deg[v], v);
    let mut edges = Vec::with_capacity(g.edges());
    for v in 0..n {
        for &w in g.neighbours(v) {
            let w = w as usize;
            let (a, b) = if rank(v) < rank(w) { (v, w) } else { (w, v) };
            edges.push((a as u32, b as u32));
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// The case-specific schedule: split the vertex range at equal Σdeg²
/// boundaries of the *oriented* graph (the paper's `CS` aspect idiom;
/// compare Sparse's nnz-balanced ranges).
pub struct DegreeBalancedSchedule {
    /// Prefix sums of deg(v)² + 1.
    cost_prefix: Vec<u64>,
}

impl DegreeBalancedSchedule {
    /// Build the cost model for `oriented`.
    pub fn new(oriented: &CsrGraph) -> Self {
        let n = oriented.vertices();
        let mut cost_prefix = vec![0u64; n + 1];
        for v in 0..n {
            let d = oriented.degree(v) as u64;
            cost_prefix[v + 1] = cost_prefix[v] + d * d + 1;
        }
        Self { cost_prefix }
    }

    /// Vertex sub-range `[lo, hi)` for thread `tid` of `t`.
    pub fn range(&self, tid: usize, t: usize) -> (usize, usize) {
        let total = *self.cost_prefix.last().unwrap();
        let target_lo = total * tid as u64 / t as u64;
        let target_hi = total * (tid as u64 + 1) / t as u64;
        let snap = |target: u64| self.cost_prefix.partition_point(|&c| c < target);
        let lo = if tid == 0 { 0 } else { snap(target_lo) };
        let hi = if tid + 1 == t {
            self.cost_prefix.len() - 1
        } else {
            snap(target_hi)
        };
        (lo, hi.max(lo))
    }
}

impl CustomAdvice for DegreeBalancedSchedule {
    fn around_for(
        &self,
        _jp: &JoinPoint<'_>,
        range: LoopRange,
        proceed: &mut dyn FnMut(i64, i64, i64),
    ) {
        let (lo, hi) = self.range(ctx::thread_id(), ctx::team_size());
        let lo = (lo as i64).max(range.start);
        let hi = (hi as i64).min(range.end);
        if lo < hi {
            proceed(lo, hi, range.step);
        }
    }
}

/// Which schedule to use for the counting loop (the ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriSchedule {
    /// Library static block.
    Block,
    /// Library static cyclic.
    Cyclic,
    /// Library dynamic (chunked).
    Dynamic,
    /// Library guided.
    Guided,
    /// Library adaptive (self-refining, latency-driven).
    Adaptive,
    /// The case-specific degree-balanced aspect.
    DegreeBalanced,
}

impl TriSchedule {
    /// All ablation points.
    pub const ALL: [TriSchedule; 6] = [
        TriSchedule::Block,
        TriSchedule::Cyclic,
        TriSchedule::Dynamic,
        TriSchedule::Guided,
        TriSchedule::Adaptive,
        TriSchedule::DegreeBalanced,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TriSchedule::Block => "block",
            TriSchedule::Cyclic => "cyclic",
            TriSchedule::Dynamic => "dynamic",
            TriSchedule::Guided => "guided",
            TriSchedule::Adaptive => "adaptive",
            TriSchedule::DegreeBalanced => "degree-balanced (CS)",
        }
    }
}

/// The aspect running [`count`]'s loop under `schedule` on `threads`.
pub fn aspect(threads: usize, schedule: TriSchedule, oriented: &CsrGraph) -> AspectModule {
    let b = AspectModule::builder(format!("ParallelTriangles[{}]", schedule.name())).bind(
        Pointcut::call("Graph.triangles.run"),
        Mechanism::parallel().threads(threads),
    );
    match schedule {
        TriSchedule::Block => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::for_loop(Schedule::StaticBlock),
        ),
        TriSchedule::Cyclic => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::for_loop(Schedule::StaticCyclic),
        ),
        TriSchedule::Dynamic => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::for_loop(Schedule::Dynamic { chunk: 32 }),
        ),
        TriSchedule::Guided => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::for_loop(Schedule::Guided { min_chunk: 16 }),
        ),
        TriSchedule::Adaptive => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::for_loop(Schedule::Adaptive { min_chunk: 16 }),
        ),
        TriSchedule::DegreeBalanced => b.bind(
            Pointcut::call("Graph.triangles.count"),
            Mechanism::custom(DegreeBalancedSchedule::new(oriented)),
        ),
    }
    .build()
}

/// Count triangles in the (implicitly undirected) graph `g`. The base
/// program: orient, then per-vertex sorted-adjacency intersections
/// through the `Graph.triangles.count` for method.
pub fn count(g: &CsrGraph) -> u64 {
    let oriented = orient(g);
    count_oriented(&oriented)
}

/// Count triangles given an already-oriented graph (used by the ablation
/// harness so orientation cost is excluded).
pub fn count_oriented(oriented: &CsrGraph) -> u64 {
    let n = oriented.vertices();
    let total = AtomicU64::new(0);
    aomp_weaver::call("Graph.triangles.run", || {
        aomp_weaver::call_for(
            "Graph.triangles.count",
            LoopRange::upto(0, n as i64),
            |lo, hi, step| {
                let mut local = 0u64;
                let mut v = lo;
                while v < hi {
                    let nv = oriented.neighbours(v as usize);
                    for (i, &u) in nv.iter().enumerate() {
                        let nu = oriented.neighbours(u as usize);
                        // |nv[i+1..] ∩ nu| by sorted merge.
                        let (mut a, mut b) = (i + 1, 0);
                        while a < nv.len() && b < nu.len() {
                            match nv[a].cmp(&nu[b]) {
                                std::cmp::Ordering::Less => a += 1,
                                std::cmp::Ordering::Greater => b += 1,
                                std::cmp::Ordering::Equal => {
                                    local += 1;
                                    a += 1;
                                    b += 1;
                                }
                            }
                        }
                    }
                    v += step;
                }
                total.fetch_add(local, Ordering::Relaxed);
            },
        );
    });
    total.into_inner()
}

/// Sequential reference (brute force over vertex triples of the oriented
/// graph) for small validation graphs.
pub fn reference(g: &CsrGraph) -> u64 {
    let oriented = orient(g);
    let n = oriented.vertices();
    let has_edge = |a: usize, b: u32| oriented.neighbours(a).binary_search(&b).is_ok();
    let mut count = 0;
    for v in 0..n {
        let nv = oriented.neighbours(v);
        for (i, &u) in nv.iter().enumerate() {
            for &w in &nv[i + 1..] {
                if has_edge(u as usize, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;

    #[test]
    fn counts_the_triangle() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count(&g), 1);
    }

    #[test]
    fn counts_k4() {
        // K4 has 4 triangles.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        assert_eq!(count(&CsrGraph::from_edges(4, edges)), 4);
    }

    #[test]
    fn no_triangles_in_a_star() {
        let edges: Vec<(u32, u32)> = (1..20u32).map(|v| (0, v)).collect();
        assert_eq!(count(&CsrGraph::from_edges(20, edges)), 0);
    }

    #[test]
    fn all_schedules_agree_with_reference() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 300, 6, 21);
        let expect = reference(&g);
        assert_eq!(count(&g), expect, "unwoven");
        let oriented = orient(&g);
        for sched in TriSchedule::ALL {
            for t in [2usize, 4] {
                let got = Weaver::global()
                    .with_deployed(aspect(t, sched, &oriented), || count_oriented(&oriented));
                assert_eq!(got, expect, "{} t={t}", sched.name());
            }
        }
    }

    #[test]
    fn degree_balanced_ranges_partition_vertices() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 500, 8, 5);
        let oriented = orient(&g);
        let cs = DegreeBalancedSchedule::new(&oriented);
        for t in [1usize, 2, 3, 7] {
            let mut prev = 0;
            for tid in 0..t {
                let (lo, hi) = cs.range(tid, t);
                assert_eq!(lo, prev, "t={t} tid={tid}");
                assert!(hi >= lo);
                prev = hi;
            }
            assert_eq!(prev, oriented.vertices());
        }
    }

    #[test]
    fn degree_balanced_is_actually_balanced() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 2000, 8, 13);
        let oriented = orient(&g);
        let cs = DegreeBalancedSchedule::new(&oriented);
        let cost = |lo: usize, hi: usize| {
            (lo..hi)
                .map(|v| (oriented.degree(v) as u64).pow(2) + 1)
                .sum::<u64>()
        };
        let t = 4;
        let costs: Vec<u64> = (0..t)
            .map(|tid| {
                let (lo, hi) = cs.range(tid, t);
                cost(lo, hi)
            })
            .collect();
        let max = *costs.iter().max().unwrap() as f64;
        let avg = costs.iter().sum::<u64>() as f64 / t as f64;
        assert!(max / avg < 1.6, "imbalance {}: {costs:?}", max / avg);
    }

    #[test]
    fn orientation_halves_edges_of_symmetric_input() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        let o = orient(&g);
        assert_eq!(o.edges(), 2);
    }
}
