//! The CSR graph substrate and deterministic generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kinds of synthetic graphs the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Uniform random (Erdős–Rényi-ish): balanced degrees.
    Uniform,
    /// Power-law-ish (preferential attachment flavour): a few hubs with
    /// huge degree — the irregular case that breaks naive schedules.
    PowerLaw,
}

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `adj[row_ptr[v] .. row_ptr[v+1]]` are v's out-neighbours.
    pub row_ptr: Vec<usize>,
    /// Flattened adjacency.
    pub adj: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.adj[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Build from an edge list (deduplicated, self-loops dropped).
    pub fn from_edges(n: usize, mut edges: Vec<(u32, u32)>) -> CsrGraph {
        edges.retain(|(a, b)| a != b);
        edges.sort_unstable();
        edges.dedup();
        let mut row_ptr = vec![0usize; n + 1];
        for &(a, _) in &edges {
            row_ptr[a as usize + 1] += 1;
        }
        for v in 0..n {
            row_ptr[v + 1] += row_ptr[v];
        }
        let adj = edges.into_iter().map(|(_, b)| b).collect();
        CsrGraph { row_ptr, adj }
    }

    /// Deterministic synthetic graph with ~`avg_degree` out-edges per
    /// vertex.
    pub fn generate(kind: GraphKind, n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = n * avg_degree;
        let mut edges = Vec::with_capacity(m);
        match kind {
            GraphKind::Uniform => {
                for _ in 0..m {
                    edges.push((rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32));
                }
            }
            GraphKind::PowerLaw => {
                // Quadratic skew towards low vertex ids: vertex 0 becomes
                // a heavy hub, the tail stays sparse.
                for _ in 0..m {
                    let skew = |r: &mut StdRng| {
                        let u: f64 = r.gen_range(0.0..1.0);
                        ((u * u) * n as f64) as usize % n
                    };
                    edges.push((skew(&mut rng) as u32, rng.gen_range(0..n) as u32));
                }
            }
        }
        CsrGraph::from_edges(n, edges)
    }

    /// The graph with every edge reversed (used by PageRank's pull
    /// formulation).
    pub fn transpose(&self) -> CsrGraph {
        let n = self.vertices();
        let mut edges = Vec::with_capacity(self.edges());
        for v in 0..n {
            for &w in self.neighbours(v) {
                edges.push((w, v as u32));
            }
        }
        CsrGraph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_csr() {
        let g = CsrGraph::from_edges(4, vec![(2, 1), (0, 1), (0, 3), (2, 0), (1, 1)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.neighbours(0), &[1, 3]);
        assert_eq!(g.neighbours(1), &[] as &[u32]); // self-loop dropped
        assert_eq!(g.neighbours(2), &[0, 1]);
        assert_eq!(g.edges(), 4);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = CsrGraph::generate(GraphKind::Uniform, 100, 4, 7);
        let b = CsrGraph::generate(GraphKind::Uniform, 100, 4, 7);
        assert_eq!(a.adj, b.adj);
        assert!(a.edges() > 300);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = CsrGraph::generate(GraphKind::PowerLaw, 1000, 8, 3);
        let max_deg = (0..g.vertices()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.edges() as f64 / g.vertices() as f64;
        assert!(max_deg as f64 > avg * 5.0, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn transpose_preserves_edge_count_and_reverses() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let t = g.transpose();
        assert_eq!(t.edges(), g.edges());
        assert_eq!(t.neighbours(1), &[0]);
        assert_eq!(t.neighbours(2), &[0, 1]);
    }
}
