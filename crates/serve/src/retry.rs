//! Caller-side retry with jittered exponential backoff.
//!
//! When admission control sheds a request ([`ServeError::Shed`]), the
//! rejection carries a `retry_after` hint derived from the tenant's
//! observed service time. [`submit_with_retry`] is the cooperative
//! client: it honours the hint, backs off exponentially with seeded
//! jitter (so a burst of rejected clients decorrelates instead of
//! re-stampeding), and gives up after a bounded number of attempts.

use crate::{Request, ResponseHandle, ServeError, Server};
use aomp::obs;
use std::time::Duration;

/// Jittered exponential backoff policy for resubmitting shed requests.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First-retry delay before jitter.
    pub base: Duration,
    /// Multiplier applied per attempt.
    pub factor: f64,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Total submission attempts (first try included). 1 disables retry.
    pub max_attempts: u32,
    /// Seed decorrelating this client's jitter from its neighbours'.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(250),
            max_attempts: 5,
            seed: 0,
        }
    }
}

impl Backoff {
    /// The delay to sleep before retry number `attempt` (0-based), given
    /// the server's `retry_after` hint from the rejection.
    ///
    /// The exponential component is `base * factor^attempt`; the server
    /// hint acts as a floor (the server knows its drain rate better than
    /// the client). The result is jittered uniformly into `[d/2, d]` —
    /// deterministic in `(seed, attempt)` — and capped at `max_delay`.
    pub fn delay(&self, attempt: u32, hint: Option<Duration>) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.powi(attempt as i32);
        let mut d = Duration::from_secs_f64(exp.min(self.max_delay.as_secs_f64()));
        if let Some(h) = hint {
            d = d.max(h.min(self.max_delay));
        }
        // Uniform jitter in [d/2, d]: full jitter re-synchronises half
        // the herd at ~0; half-floor keeps the backoff meaningful.
        let x = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let frac = 0.5 + 0.5 * ((x >> 11) as f64 / (1u64 << 53) as f64);
        d.mul_f64(frac)
    }
}

/// Submit `req` to `tenant`, sleeping and resubmitting on shed
/// rejections according to `policy`.
///
/// Returns the accepted request's handle, or the final error once
/// attempts are exhausted (the terminal `Shed` is returned as-is) or a
/// non-shed error occurs (those are never retried: a deadline or fault
/// outcome means the request was *accepted* and consumed capacity).
/// Each resubmission bumps [`obs::Counter::ServeRetries`] on the
/// tenant's runtime.
pub fn submit_with_retry(
    server: &Server,
    tenant: usize,
    req: &Request,
    policy: &Backoff,
) -> Result<ResponseHandle, ServeError> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match server.submit(tenant, req.clone()) {
            Ok(handle) => return Ok(handle),
            Err(err @ ServeError::Shed { .. }) => {
                if attempt + 1 >= attempts {
                    return Err(err);
                }
                let hint = match err {
                    ServeError::Shed { retry_after, .. } => Some(retry_after),
                    _ => unreachable!(),
                };
                std::thread::sleep(policy.delay(attempt, hint));
                server
                    .tenant_runtime(tenant)
                    .record_counter(obs::Counter::ServeRetries);
                attempt += 1;
            }
            Err(other) => return Err(other),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_and_bounded() {
        let p = Backoff::default();
        for attempt in 0..6 {
            let a = p.delay(attempt, None);
            let b = p.delay(attempt, None);
            assert_eq!(a, b, "jitter must be deterministic in (seed, attempt)");
            assert!(a <= p.max_delay, "delay exceeds cap: {a:?}");
        }
    }

    #[test]
    fn hint_floors_the_delay() {
        let p = Backoff {
            base: Duration::from_micros(10),
            ..Backoff::default()
        };
        let hint = Duration::from_millis(20);
        let d = p.delay(0, Some(hint));
        assert!(d >= hint / 2, "hint ignored: {d:?}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = Backoff {
            seed: 1,
            ..Backoff::default()
        };
        let b = Backoff {
            seed: 2,
            ..Backoff::default()
        };
        assert!(
            (0..8).any(|i| a.delay(i, None) != b.delay(i, None)),
            "seeds produced identical jitter streams"
        );
    }
}
