//! Closed- and open-loop load generation against a [`Server`].
//!
//! * **Closed loop** — `concurrency` caller threads submit, wait for the
//!   response inline, and immediately submit again: offered load adapts
//!   to service rate (classic think-time-zero closed system).
//! * **Open loop** — a pacer submits at a fixed request rate regardless
//!   of completions, the regime where an overloaded server without
//!   admission control queue-collapses. Here it sheds instead, which is
//!   the behaviour the bench harness quantifies.
//!
//! Outcome counts come from per-tenant runtime counter deltas; latency
//! quantiles come from the process-global [`aomp::obs`] histograms
//! ([`run`] arms metrics itself).

use crate::{Backoff, Request, ServeError, Server, Workload};
use aomp::obs::{self, Counter, Lat};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How the generator offers load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// `concurrency` workers submit → wait → repeat.
    Closed {
        /// Number of synchronous caller threads.
        concurrency: usize,
    },
    /// Submit at a fixed rate, independent of completions.
    Open {
        /// Offered requests per second (across all target tenants).
        rps: f64,
    },
}

/// One load-generation run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed or open loop.
    pub mode: Mode,
    /// How long to offer load.
    pub duration: Duration,
    /// Target tenants, rotated round-robin per request.
    pub tenants: Vec<usize>,
    /// Per-request deadline.
    pub deadline: Duration,
    /// The workload every request runs.
    pub workload: Workload,
    /// Client-side retry policy for shed requests (None = give up).
    pub retry: Option<Backoff>,
}

/// Aggregated outcome of one [`run`].
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Requests offered (including resubmissions).
    pub submitted: u64,
    /// Requests past admission control.
    pub accepted: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Accepted requests that completed with a valid response.
    pub completed: u64,
    /// Accepted requests that missed their deadline.
    pub deadline_missed: u64,
    /// Accepted requests that faulted (panic/cancel/validation).
    pub faulted: u64,
    /// Client-side resubmissions performed by the retry helper.
    pub retries: u64,
    /// Wall-clock time of the run including the final drain.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// `shed / submitted` (0 when nothing was submitted).
    pub shed_rate: f64,
    /// Median end-to-end request latency (ns, accepted requests).
    pub p50_ns: u64,
    /// 99th-percentile end-to-end request latency (ns).
    pub p99_ns: u64,
    /// Mean end-to-end request latency (ns).
    pub mean_ns: f64,
    /// 99th-percentile queue wait before execution began (ns).
    pub queue_wait_p99_ns: u64,
}

impl LoadStats {
    /// `accepted == completed + deadline_missed + faulted` — must hold
    /// after every drained run.
    pub fn counters_consistent(&self) -> bool {
        self.accepted == self.completed + self.deadline_missed + self.faulted
    }
}

/// Drive `cfg` against `server` and aggregate the outcome.
///
/// Arms [`obs::set_metrics`] so latency histograms populate. Blocks
/// until offered load ends *and* the server drains (bounded by
/// `cfg.duration + 60s`).
pub fn run(server: &Server, cfg: &LoadConfig) -> LoadStats {
    assert!(
        !cfg.tenants.is_empty(),
        "load generator needs target tenants"
    );
    obs::set_metrics(true);
    let global_before = obs::snapshot();
    let tenants_before: Vec<_> = unique(&cfg.tenants)
        .into_iter()
        .map(|t| (t, server.tenant_runtime(t).metrics_snapshot()))
        .collect();
    let started = Instant::now();
    let end = started + cfg.duration;
    let rr = AtomicU64::new(0);
    let next_tenant =
        || cfg.tenants[rr.fetch_add(1, Ordering::Relaxed) as usize % cfg.tenants.len()];

    match cfg.mode {
        Mode::Closed { concurrency } => {
            std::thread::scope(|s| {
                for worker in 0..concurrency.max(1) {
                    let next_tenant = &next_tenant;
                    let retry = cfg.retry.map(|p| Backoff {
                        seed: p.seed ^ worker as u64,
                        ..p
                    });
                    s.spawn(move || {
                        while Instant::now() < end {
                            let tenant = next_tenant();
                            let req = Request::new(cfg.workload).deadline(cfg.deadline);
                            let submitted = match &retry {
                                Some(policy) => {
                                    crate::submit_with_retry(server, tenant, &req, policy)
                                }
                                None => server.submit(tenant, req),
                            };
                            match submitted {
                                Ok(handle) => {
                                    let _ = handle.wait();
                                }
                                Err(ServeError::Shed { retry_after, .. }) => {
                                    // Terminal shed: brief pause so a
                                    // saturated closed loop doesn't spin.
                                    std::thread::sleep(retry_after.min(Duration::from_millis(10)));
                                }
                                Err(_) => {}
                            }
                        }
                    });
                }
            });
        }
        Mode::Open { rps } => {
            let interval = Duration::from_secs_f64(1.0 / rps.max(0.001));
            let mut handles = Vec::new();
            let mut next = started;
            while Instant::now() < end {
                let tenant = next_tenant();
                let req = Request::new(cfg.workload).deadline(cfg.deadline);
                // Open loop never retries inline — that would stall the
                // pacer and silently close the loop.
                if let Ok(handle) = server.submit(tenant, req) {
                    handles.push(handle);
                }
                next += interval;
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
            }
            for handle in handles {
                let _ = handle.wait();
            }
        }
    }

    server.drain(cfg.duration + Duration::from_secs(60));
    let wall = started.elapsed();
    let global_delta = obs::snapshot().since(&global_before);

    let sum = |c: Counter| -> u64 {
        tenants_before
            .iter()
            .map(|(t, before)| {
                server
                    .tenant_runtime(*t)
                    .metrics_snapshot()
                    .since(before)
                    .counter(c)
            })
            .sum()
    };
    let submitted = sum(Counter::ServeSubmitted);
    let accepted = sum(Counter::ServeAccepted);
    let shed = sum(Counter::ServeShed);
    let completed = sum(Counter::ServeCompleted);
    let deadline_missed = sum(Counter::ServeDeadlineMissed);
    let faulted = sum(Counter::ServeFaulted);
    let retries = sum(Counter::ServeRetries);
    let req_hist = global_delta.hist(Lat::ServeRequest);
    LoadStats {
        submitted,
        accepted,
        shed,
        completed,
        deadline_missed,
        faulted,
        retries,
        wall,
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        shed_rate: if submitted == 0 {
            0.0
        } else {
            shed as f64 / submitted as f64
        },
        p50_ns: req_hist.quantile_ns(0.5),
        p99_ns: req_hist.quantile_ns(0.99),
        mean_ns: req_hist.mean_ns(),
        queue_wait_p99_ns: global_delta.hist(Lat::ServeQueueWait).quantile_ns(0.99),
    }
}

fn unique(tenants: &[usize]) -> Vec<usize> {
    let mut u = tenants.to_vec();
    u.sort_unstable();
    u.dedup();
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TenantSpec;

    #[test]
    fn closed_loop_completes_and_balances() {
        let server = Server::config()
            .graph(256, 6, 3)
            .tenant(TenantSpec::new("a").threads(2).queue_capacity(8))
            .build();
        let stats = run(
            &server,
            &LoadConfig {
                mode: Mode::Closed { concurrency: 2 },
                duration: Duration::from_millis(300),
                tenants: vec![0],
                deadline: Duration::from_secs(5),
                workload: Workload::SumRange { n: 20_000 },
                retry: None,
            },
        );
        assert!(stats.completed > 0, "closed loop completed nothing");
        assert!(stats.counters_consistent(), "{stats:?}");
        assert!(stats.p50_ns > 0, "histogram never populated");
    }
}
