//! Request workloads: small parallel task graphs over aomp constructs.
//!
//! Each [`Workload`] is a self-validating parallel computation — it has a
//! closed-form (or precomputable) expected result, so the serving layer
//! can verify every completed response and the robustness suite can
//! prove that shedding, deadlines and injected faults never corrupt an
//! accepted request's answer.

use crate::faults::Fault;
use aomp::prelude::*;
use aomp_irregular::graph::CsrGraph;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A request's computation, executed as a parallel region (plus spawned
/// futures for [`Workload::Fanout`]) on the owning tenant's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Workload {
    /// Sum a scrambling hash of `0..n` under a static-block for
    /// construct.
    SumRange {
        /// Number of loop iterations.
        n: u64,
    },
    /// Sum all vertex degrees of the server's shared graph `rounds`
    /// times under a dynamic schedule (irregular, chunk-handout path).
    DegreeSum {
        /// Number of passes over the vertex set.
        rounds: u32,
    },
    /// Split `0..n` into `parts` slices, hash-sum each in a spawned
    /// future on the tenant's task executor, and join them with a
    /// deadline-bounded wait.
    Fanout {
        /// Number of spawned futures.
        parts: u32,
        /// Total iterations across all parts.
        n: u64,
    },
}

/// A completed workload's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Output {
    /// Scalar checksum.
    U64(u64),
}

/// Cheap avalanche hash so loop iterations are not compiler-foldable.
#[inline]
fn scramble(i: u64) -> u64 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x
}

fn sum_range_expected(n: u64) -> u64 {
    (0..n).fold(0u64, |acc, i| acc.wrapping_add(scramble(i)))
}

impl Workload {
    /// The result this workload must produce (given the server's shared
    /// `graph`). Sequential reference used to validate parallel answers.
    pub fn expected(&self, graph: &CsrGraph) -> Output {
        match *self {
            Workload::SumRange { n } => Output::U64(sum_range_expected(n)),
            Workload::DegreeSum { rounds } => {
                let per_round: u64 = (0..graph.vertices()).map(|v| graph.degree(v) as u64).sum();
                Output::U64(per_round.wrapping_mul(rounds as u64))
            }
            Workload::Fanout { n, .. } => Output::U64(sum_range_expected(n)),
        }
    }
}

/// Outcome of [`execute`], before serve-layer accounting.
pub(crate) enum ExecError {
    /// The region tripped its stall watchdog or a fanout join timed out.
    TimedOut,
    /// The region was cooperatively cancelled.
    Cancelled,
    /// A worker panicked.
    Panicked(String),
}

/// Run `work` on `rt` inside a cancellable region with a stall deadline
/// of `remaining`, optionally applying an injected `fault`.
///
/// Fault placement is deliberate: panics and cancels fire on the master
/// (tid 0) so the error path through team poisoning is exercised; stalls
/// wedge the *last* member (never the master) so the master reaches the
/// join wait-site and the stall watchdog can observe and diagnose the
/// hang. A stalled worker also polls its cancellation point and carries
/// a wall-clock bound, so the region always unwinds even on one-thread
/// teams where the stalled member *is* the master.
pub(crate) fn execute(
    rt: &Runtime,
    threads: usize,
    graph: &Arc<CsrGraph>,
    work: Workload,
    remaining: Duration,
    fault: Option<Fault>,
) -> Result<Output, ExecError> {
    let acc = AtomicU64::new(0);
    let timed_out = AtomicBool::new(false);
    // Constructs must be created once and shared by the whole team —
    // their identity keys the team-shared handout state, so a per-member
    // construct would give every thread the full range.
    let for_static = ForConstruct::new(Schedule::StaticBlock);
    let for_dynamic = ForConstruct::new(Schedule::Dynamic { chunk: 256 });
    let cfg = RegionConfig::new()
        .threads(threads)
        .runtime(rt)
        .cancellable(true)
        .stall_deadline(remaining.max(Duration::from_millis(5)));
    let deadline = Instant::now() + remaining;
    let result = region::try_parallel_with(cfg, || {
        if apply_fault(fault, remaining) {
            return;
        }
        match work {
            Workload::SumRange { n } => {
                let mut local = 0u64;
                for_static.execute(LoopRange::upto(0, n as i64), |lo, hi, step| {
                    let mut i = lo;
                    while i < hi {
                        local = local.wrapping_add(scramble(i as u64));
                        i += step;
                    }
                });
                acc.fetch_add(local, Ordering::Relaxed);
            }
            Workload::DegreeSum { rounds } => {
                let mut local = 0u64;
                for _ in 0..rounds {
                    for_dynamic.execute(
                        LoopRange::upto(0, graph.vertices() as i64),
                        |lo, hi, step| {
                            let mut v = lo;
                            while v < hi {
                                local = local.wrapping_add(graph.degree(v as usize) as u64);
                                v += step;
                            }
                        },
                    );
                }
                acc.fetch_add(local, Ordering::Relaxed);
            }
            Workload::Fanout { parts, n } => {
                // Each member fans out its share of the slices as
                // futures on the tenant's executor, then joins them
                // against the request deadline.
                let parts = parts.max(1) as u64;
                let tid = thread_id() as u64;
                let team = team_size() as u64;
                let mut futs = Vec::new();
                let mut p = tid;
                while p < parts {
                    let lo = n * p / parts;
                    let hi = n * (p + 1) / parts;
                    futs.push(task::spawn_future(move || {
                        (lo..hi).fold(0u64, |a, i| a.wrapping_add(scramble(i)))
                    }));
                    p += team;
                }
                let mut local = 0u64;
                for fut in futs {
                    match fut.get_by(deadline) {
                        Ok(part) => local = local.wrapping_add(part),
                        Err(_) => {
                            timed_out.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                acc.fetch_add(local, Ordering::Relaxed);
            }
        }
    });
    match result {
        Ok(()) if timed_out.load(Ordering::Relaxed) => Err(ExecError::TimedOut),
        Ok(()) => Ok(Output::U64(acc.load(Ordering::Relaxed))),
        Err(RegionError::Stalled { .. }) => Err(ExecError::TimedOut),
        Err(RegionError::Cancelled) => Err(ExecError::Cancelled),
        Err(err) => Err(ExecError::Panicked(err.to_string())),
    }
}

/// Apply an injected fault from inside the region body. Returns true if
/// the calling member must skip its workload share.
fn apply_fault(fault: Option<Fault>, remaining: Duration) -> bool {
    match fault {
        None => false,
        Some(Fault::Panic) if thread_id() == 0 => panic!("injected fault: panic"),
        Some(Fault::Panic) => false,
        Some(Fault::Cancel) => {
            if thread_id() == 0 {
                cancel_team();
            }
            // Everyone observes the flag and unwinds cooperatively.
            let _ = cancellation_point();
            true
        }
        // Wedge the last member, not the master: the master then blocks
        // at the join wait-site, which is what arms the stall watchdog's
        // diagnosis. Bounded by wall clock so the region unwinds even if
        // the watchdog path is unavailable.
        Some(Fault::Stall) if thread_id() == team_size() - 1 => {
            let give_up = Instant::now() + remaining + Duration::from_millis(100);
            while Instant::now() < give_up {
                if cancellation_point().is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            true
        }
        Some(Fault::Stall) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aomp_irregular::graph::GraphKind;

    fn test_graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::generate(GraphKind::Uniform, 512, 8, 1))
    }

    fn rt() -> Runtime {
        Runtime::builder().threads(2).build()
    }

    #[test]
    fn sum_range_matches_expected() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::SumRange { n: 10_000 };
        let out = execute(&rt, 2, &g, w, Duration::from_secs(5), None)
            .unwrap_or_else(|_| panic!("clean workload failed"));
        assert_eq!(out, w.expected(&g));
    }

    #[test]
    fn degree_sum_matches_expected() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::DegreeSum { rounds: 3 };
        let out = execute(&rt, 2, &g, w, Duration::from_secs(5), None)
            .unwrap_or_else(|_| panic!("clean workload failed"));
        assert_eq!(out, w.expected(&g));
    }

    #[test]
    fn fanout_matches_expected() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::Fanout {
            parts: 4,
            n: 10_000,
        };
        let out = execute(&rt, 2, &g, w, Duration::from_secs(5), None)
            .unwrap_or_else(|_| panic!("clean workload failed"));
        assert_eq!(out, w.expected(&g));
    }

    #[test]
    fn injected_panic_surfaces() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::SumRange { n: 100 };
        match execute(&rt, 2, &g, w, Duration::from_secs(5), Some(Fault::Panic)) {
            Err(ExecError::Panicked(msg)) => assert!(msg.contains("injected"), "msg: {msg}"),
            _ => panic!("expected a panic outcome"),
        }
    }

    #[test]
    fn injected_cancel_surfaces() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::SumRange { n: 100 };
        match execute(&rt, 2, &g, w, Duration::from_secs(5), Some(Fault::Cancel)) {
            Err(ExecError::Cancelled) => {}
            _ => panic!("expected a cancelled outcome"),
        }
    }

    #[test]
    fn injected_stall_times_out() {
        let g = test_graph();
        let rt = rt();
        let w = Workload::SumRange { n: 100 };
        match execute(&rt, 2, &g, w, Duration::from_millis(50), Some(Fault::Stall)) {
            Err(ExecError::TimedOut) => {}
            Err(ExecError::Cancelled) => {} // watchdog may cancel first
            other => panic!(
                "expected a timeout outcome, got {:?}",
                match other {
                    Ok(_) => "Ok",
                    Err(ExecError::Panicked(_)) => "Panicked",
                    _ => unreachable!(),
                }
            ),
        }
    }
}
