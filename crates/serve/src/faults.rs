//! Deterministic fault injection for serve requests.
//!
//! A [`FaultPlan`] decides, per request sequence number, whether to
//! inject a fault into that request's parallel region and which kind.
//! Decisions are a pure function of `(seed, seq)`, so a plan replays
//! identically across runs — the property the robustness suite leans on
//! when it asserts "exactly these requests faulted, the server survived,
//! and the counters still add up".

/// Environment variable carrying a default fault plan, e.g.
/// `AOMP_SERVE_FAULTS="panic=0.1,stall=0.05,cancel=0.1,seed=42"`.
/// Read by [`FaultPlan::from_env`]; the serve bench binary applies it
/// when no fault flags are given on the command line.
pub const ENV_FAULTS: &str = "AOMP_SERVE_FAULTS";

/// The kind of fault injected into a request's worker region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A worker thread panics mid-region (surfaces as
    /// [`RegionError::Panicked`](aomp::error::RegionError::Panicked)).
    Panic,
    /// A non-master worker wedges in a compute loop until the stall
    /// watchdog trips the region deadline
    /// ([`RegionError::Stalled`](aomp::error::RegionError::Stalled)).
    Stall,
    /// The master requests team cancellation and the region unwinds
    /// cooperatively
    /// ([`RegionError::Cancelled`](aomp::error::RegionError::Cancelled)).
    Cancel,
}

/// A seeded, per-request fault schedule.
///
/// Fractions are cumulative probabilities over a uniform draw in
/// `[0, 1)`: a request faults with probability `panic + stall + cancel`
/// (saturated at 1). `FaultPlan::none()` never injects.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    panic: f64,
    stall: f64,
    cancel: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan that never injects a fault.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            panic: 0.0,
            stall: 0.0,
            cancel: 0.0,
        }
    }

    /// Replace the seed that randomises which requests fault.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of requests whose region panics.
    pub fn panic_fraction(mut self, f: f64) -> Self {
        self.panic = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of requests whose region stalls past its deadline.
    pub fn stall_fraction(mut self, f: f64) -> Self {
        self.stall = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of requests whose region is cooperatively cancelled.
    pub fn cancel_fraction(mut self, f: f64) -> Self {
        self.cancel = f.clamp(0.0, 1.0);
        self
    }

    /// Parse a plan from a `key=value` list: recognised keys are
    /// `panic`, `stall`, `cancel` (fractions in `[0, 1]`) and `seed`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let bad = || format!("fault spec `{part}` has a malformed value");
            match key.trim() {
                "panic" => {
                    plan.panic = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad())?
                        .clamp(0.0, 1.0)
                }
                "stall" => {
                    plan.stall = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad())?
                        .clamp(0.0, 1.0)
                }
                "cancel" => {
                    plan.cancel = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad())?
                        .clamp(0.0, 1.0)
                }
                "seed" => plan.seed = value.trim().parse::<u64>().map_err(|_| bad())?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan named by [`ENV_FAULTS`], if set and well-formed
    /// (malformed specs are reported on stderr and ignored).
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var(ENV_FAULTS).ok()?;
        match Self::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(err) => {
                eprintln!("ignoring {ENV_FAULTS}: {err}");
                None
            }
        }
    }

    /// True if this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.panic + self.stall + self.cancel > 0.0
    }

    /// Decide the fault (if any) for request number `seq`.
    ///
    /// Pure in `(self.seed, seq)`; two calls with the same inputs always
    /// agree.
    pub fn decide(&self, seq: u64) -> Option<Fault> {
        if !self.is_active() {
            return None;
        }
        let draw = u01(splitmix64(
            self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        if draw < self.panic {
            Some(Fault::Panic)
        } else if draw < self.panic + self.stall {
            Some(Fault::Stall)
        } else if draw < self.panic + self.stall + self.cancel {
            Some(Fault::Cancel)
        } else {
            None
        }
    }
}

/// SplitMix64 scramble — cheap, stateless, good enough to decorrelate
/// consecutive sequence numbers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a u64 to a uniform f64 in `[0, 1)` using the high 53 bits.
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!((0..10_000).all(|s| plan.decide(s).is_none()));
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::none()
            .seed(42)
            .panic_fraction(0.1)
            .stall_fraction(0.1)
            .cancel_fraction(0.1);
        let b = a;
        assert!((0..10_000).all(|s| a.decide(s) == b.decide(s)));
    }

    #[test]
    fn fractions_land_near_targets() {
        let plan = FaultPlan::none()
            .seed(7)
            .panic_fraction(0.2)
            .cancel_fraction(0.3);
        let n = 100_000u64;
        let mut panics = 0u64;
        let mut cancels = 0u64;
        for s in 0..n {
            match plan.decide(s) {
                Some(Fault::Panic) => panics += 1,
                Some(Fault::Cancel) => cancels += 1,
                Some(Fault::Stall) => panic!("stall fraction is zero"),
                None => {}
            }
        }
        let fp = panics as f64 / n as f64;
        let fc = cancels as f64 / n as f64;
        assert!((fp - 0.2).abs() < 0.02, "panic fraction drifted: {fp}");
        assert!((fc - 0.3).abs() < 0.02, "cancel fraction drifted: {fc}");
    }

    #[test]
    fn parse_round_trips_a_spec() {
        let plan = FaultPlan::parse("panic=0.1, stall=0.05, cancel=0.2, seed=7").unwrap();
        assert!(plan.is_active());
        assert_eq!(plan.seed, 7);
        assert!((plan.panic - 0.1).abs() < 1e-12);
        assert!((plan.stall - 0.05).abs() < 1e-12);
        assert!((plan.cancel - 0.2).abs() < 1e-12);
        assert!(FaultPlan::parse("panic=zero").is_err());
        assert!(FaultPlan::parse("explode=1").is_err());
        assert!(FaultPlan::parse("").unwrap().decide(1).is_none());
    }

    #[test]
    fn full_fraction_always_fires() {
        let plan = FaultPlan::none().panic_fraction(1.0);
        assert!((0..1_000).all(|s| plan.decide(s) == Some(Fault::Panic)));
    }
}
