//! # aomp-serve — multi-tenant request serving over aomp runtimes
//!
//! This crate turns the aomp runtime layer into a *server*: N tenants,
//! each pinned to its own [`aomp::Runtime`] (own workers, own hot-team
//! cache, own counter scope), accept a stream of requests whose bodies
//! are parallel task graphs ([`work::Workload`]) over the crate's
//! shared graph and loop kernels. Three robustness mechanisms compose:
//!
//! * **Deadline propagation** — a request's time budget flows into
//!   [`RegionConfig::stall_deadline`](aomp::region::RegionConfig::stall_deadline)
//!   and every bounded join
//!   ([`FutureTask::get_by`](aomp::task::FutureTask::get_by)), so a slow
//!   or wedged request resolves as [`ServeError::DeadlineExceeded`]
//!   instead of hanging a worker forever.
//! * **Admission control & load-shedding** — each tenant has a bounded
//!   in-flight queue; beyond capacity the server *rejects newest* with a
//!   [`ServeError::Shed`] carrying a retry-after hint derived from the
//!   tenant's observed service time. The cooperative client side is
//!   [`retry::submit_with_retry`] (jittered exponential backoff).
//! * **Fault injection** — a [`faults::FaultPlan`] deterministically
//!   panics, stalls or cancels a configurable fraction of requests,
//!   proving the server stays live and its counters stay consistent:
//!   after a drain, `accepted == completed + deadline_missed + faulted`
//!   per tenant, always.
//!
//! Because every tenant is its own runtime, a tenant's bursts, faults
//! and cancellations degrade only its own latency — the tenant-isolation
//! invariant checked by `aomp-check`'s
//! [`check_tenant_isolation`](../aomp_check/oracle/fn.check_tenant_isolation.html)
//! oracle.

#![warn(missing_docs)]

pub mod faults;
pub mod loadgen;
pub mod retry;
pub mod work;

pub use faults::{Fault, FaultPlan};
pub use retry::{submit_with_retry, Backoff};
pub use work::{Output, Workload};

use aomp::nr::{Dispatch, Replicated};
use aomp::obs::{Counter, Lat};
use aomp::prelude::*;
use aomp::{obs, Runtime};
use aomp_irregular::graph::{CsrGraph, GraphKind};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Extra join slack [`ResponseHandle::wait`] allows past the request
/// deadline, covering watchdog diagnosis and unwind time.
const WAIT_GRACE: Duration = Duration::from_secs(5);

/// One tenant's capacity and policy knobs.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    name: String,
    threads: usize,
    queue_capacity: usize,
    default_deadline: Duration,
    faults: FaultPlan,
}

impl TenantSpec {
    /// A tenant with 2 worker threads, an in-flight capacity of 8, a
    /// 2-second default deadline and no fault injection.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            threads: 2,
            queue_capacity: 8,
            default_deadline: Duration::from_secs(2),
            faults: FaultPlan::none(),
        }
    }

    /// Team size for this tenant's parallel regions (≥ 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Maximum in-flight (admitted, not yet resolved) requests before
    /// admission control sheds (≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Deadline applied to requests that don't carry their own.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = d;
        self
    }

    /// Fault-injection plan applied to this tenant's admitted requests.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// Server-wide configuration: the tenant set and the shared graph that
/// [`Workload::DegreeSum`] requests traverse.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    tenants: Vec<TenantSpec>,
    graph_vertices: usize,
    graph_degree: usize,
    graph_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerConfig {
    /// An empty configuration with a 4096-vertex power-law graph.
    pub fn new() -> Self {
        ServerConfig {
            tenants: Vec::new(),
            graph_vertices: 4096,
            graph_degree: 8,
            graph_seed: 42,
        }
    }

    /// Add a tenant.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Size and seed of the shared request graph.
    pub fn graph(mut self, vertices: usize, avg_degree: usize, seed: u64) -> Self {
        self.graph_vertices = vertices.max(1);
        self.graph_degree = avg_degree.max(1);
        self.graph_seed = seed;
        self
    }

    /// Build the server: one [`Runtime`] per tenant plus the shared
    /// graph. Panics if no tenants were added.
    pub fn build(self) -> Server {
        assert!(
            !self.tenants.is_empty(),
            "a server needs at least one tenant"
        );
        let graph = Arc::new(CsrGraph::generate(
            GraphKind::PowerLaw,
            self.graph_vertices,
            self.graph_degree,
            self.graph_seed,
        ));
        let tenants = self
            .tenants
            .into_iter()
            .map(|spec| {
                let rt = Runtime::builder()
                    .threads(spec.threads)
                    .task_workers(spec.queue_capacity.max(2))
                    .build();
                Arc::new(TenantState {
                    spec,
                    rt,
                    depth: AtomicUsize::new(0),
                    seq: AtomicU64::new(0),
                    stats: Replicated::new(TenantStats::default()),
                })
            })
            .collect();
        Server {
            inner: Arc::new(ServerInner { tenants, graph }),
        }
    }
}

/// Why a request did not produce a normal response.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the tenant's in-flight
    /// queue was full. The request consumed no capacity; resubmit after
    /// `retry_after` (see [`retry::submit_with_retry`]).
    Shed {
        /// In-flight depth observed at rejection.
        queue_depth: usize,
        /// Server's estimate of when capacity will free up.
        retry_after: Duration,
    },
    /// The request was admitted but missed its deadline — in queue, via
    /// the region stall watchdog, or by finishing late.
    DeadlineExceeded {
        /// The request's total time budget.
        budget: Duration,
        /// Where the budget ran out.
        cause: DeadlineCause,
    },
    /// The request's region was cancelled (injected or cooperative).
    Cancelled,
    /// The request's region panicked, or its response failed
    /// validation.
    Faulted {
        /// Panic payload summary or validation diagnosis.
        msg: String,
    },
    /// The response future was dropped without resolving (server
    /// teardown mid-request).
    Lost,
}

/// Which phase exhausted a request's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeadlineCause {
    /// Spent too long waiting for an executor slot.
    QueueWait,
    /// The region stall watchdog fired, or a fan-out join timed out.
    Stalled,
    /// The work completed, but after the deadline had passed.
    FinishedLate,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shed {
                queue_depth,
                retry_after,
            } => write!(
                f,
                "request shed: tenant queue full at depth {queue_depth}, retry after {retry_after:?}"
            ),
            ServeError::DeadlineExceeded { budget, cause } => {
                let phase = match cause {
                    DeadlineCause::QueueWait => "while queued",
                    DeadlineCause::Stalled => "stalled in its region",
                    DeadlineCause::FinishedLate => "finished after the deadline",
                };
                write!(f, "request exceeded its {budget:?} deadline ({phase})")
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Faulted { msg } => write!(f, "request faulted: {msg}"),
            ServeError::Lost => write!(f, "response lost: server dropped the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A unit of work submitted to a tenant.
#[derive(Debug, Clone)]
pub struct Request {
    workload: Workload,
    deadline: Option<Duration>,
}

impl Request {
    /// A request running `workload` under the tenant's default deadline.
    pub fn new(workload: Workload) -> Self {
        Request {
            workload,
            deadline: None,
        }
    }

    /// Override the tenant's default deadline for this request.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// The workload this request runs.
    pub fn workload(&self) -> Workload {
        self.workload
    }
}

/// Join handle for an admitted request.
pub struct ResponseHandle {
    fut: FutureTask<Result<Output, ServeError>>,
    submitted: Instant,
    budget: Duration,
}

impl ResponseHandle {
    /// Block for the response, bounded by the request deadline plus a
    /// fixed grace period (the deadline itself is enforced server-side;
    /// the grace only covers watchdog diagnosis and unwind time).
    pub fn wait(self) -> Result<Output, ServeError> {
        let bound = self.submitted + self.budget + WAIT_GRACE;
        match self.fut.get_by(bound) {
            Ok(outcome) => outcome,
            Err(WaitTimedOut { .. }) => Err(ServeError::Lost),
        }
    }

    /// The request's total time budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }
}

/// One tenant's observed service-time statistics.
///
/// The single-threaded structure is replicated via [`aomp::nr`]: every
/// completion *logs* an [`StatsOp::Observe`] and the flat-combining
/// replicas apply the log in one order, so the EWMA fold — which is
/// *not* commutative — is deterministic and identical on every replica,
/// where the old lock-free read-modify-write could drop samples under
/// contention.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// EWMA of successful service time, in nanoseconds (0 = no samples).
    pub ewma_service_ns: u64,
    /// Number of successful completions folded into the EWMA.
    pub samples: u64,
    /// Worst successful service time seen, in nanoseconds.
    pub max_service_ns: u64,
}

/// Write operations on [`TenantStats`] (the replication log alphabet).
#[derive(Clone, Debug)]
pub enum StatsOp {
    /// Fold one successful completion's service time into the stats.
    Observe {
        /// Service time of the completion, in nanoseconds.
        ns: u64,
    },
}

impl Dispatch for TenantStats {
    type ReadOp = ();
    type WriteOp = StatsOp;
    type Response = TenantStats;

    fn dispatch(&self, _op: &()) -> TenantStats {
        self.clone()
    }

    fn dispatch_mut(&mut self, op: &StatsOp) -> TenantStats {
        let StatsOp::Observe { ns } = *op;
        self.ewma_service_ns = if self.ewma_service_ns == 0 {
            ns
        } else {
            // 0.8 * prev + 0.2 * sample, in integer ns.
            self.ewma_service_ns - self.ewma_service_ns / 5 + ns / 5
        };
        self.samples += 1;
        self.max_service_ns = self.max_service_ns.max(ns);
        self.clone()
    }
}

struct TenantState {
    spec: TenantSpec,
    rt: Runtime,
    /// Admitted-but-unresolved requests; the admission bound.
    depth: AtomicUsize,
    /// Per-tenant request sequence number, feeds the fault plan.
    seq: AtomicU64,
    /// Service-time statistics, replicated shared state; drives
    /// retry-after.
    stats: Replicated<TenantStats>,
}

impl TenantState {
    /// Estimate how long a rejected client should wait before retrying:
    /// roughly one observed service time (capacity frees at that rate),
    /// clamped to something a client can reasonably sleep.
    fn retry_after(&self) -> Duration {
        let ewma = self.stats.execute_ro(&()).ewma_service_ns;
        let est = if ewma == 0 {
            self.spec.default_deadline / 4
        } else {
            Duration::from_nanos(ewma)
        };
        est.clamp(Duration::from_millis(1), Duration::from_secs(5))
    }

    fn observe_service(&self, took: Duration) {
        let ns = took.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.stats.execute(StatsOp::Observe { ns });
    }
}

struct ServerInner {
    tenants: Vec<Arc<TenantState>>,
    graph: Arc<CsrGraph>,
}

/// A multi-tenant server: one isolated [`Runtime`] per tenant, bounded
/// admission, deadline-propagating request execution.
///
/// Cloning is cheap and shares the server.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Start configuring a server.
    pub fn config() -> ServerConfig {
        ServerConfig::new()
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.inner.tenants.len()
    }

    /// A tenant's configured name.
    pub fn tenant_name(&self, tenant: usize) -> &str {
        &self.inner.tenants[tenant].spec.name
    }

    /// The [`Runtime`] owning a tenant's workers and counter scope. Use
    /// [`Runtime::metrics_snapshot`] on it to read per-tenant serve
    /// counters.
    pub fn tenant_runtime(&self, tenant: usize) -> &Runtime {
        &self.inner.tenants[tenant].rt
    }

    /// A tenant's current in-flight depth.
    pub fn queue_depth(&self, tenant: usize) -> usize {
        self.inner.tenants[tenant].depth.load(Ordering::Acquire)
    }

    /// A linearizable snapshot of a tenant's service-time statistics
    /// (reads its [`aomp::nr::Replicated`] store after syncing to the
    /// operation-log tail).
    pub fn tenant_stats(&self, tenant: usize) -> TenantStats {
        self.inner.tenants[tenant].stats.execute_ro(&())
    }

    /// The shared graph that [`Workload::DegreeSum`] traverses.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.inner.graph
    }

    /// The answer `workload` must produce on this server — exposed so
    /// callers can validate responses end-to-end.
    pub fn expected_output(&self, workload: Workload) -> Output {
        workload.expected(&self.inner.graph)
    }

    /// Offer `req` to `tenant`'s admission control.
    ///
    /// Admitted requests return a [`ResponseHandle`] and will resolve —
    /// successfully, or as a deadline/fault outcome — without outside
    /// help. Rejected requests return [`ServeError::Shed`] immediately
    /// and consume no tenant capacity.
    pub fn submit(&self, tenant: usize, req: Request) -> Result<ResponseHandle, ServeError> {
        let t = &self.inner.tenants[tenant];
        t.rt.record_counter(Counter::ServeSubmitted);
        // Reserve a queue slot (reject-newest): CAS so a racing burst
        // cannot overshoot the bound.
        let mut depth = t.depth.load(Ordering::Relaxed);
        loop {
            if depth >= t.spec.queue_capacity {
                t.rt.record_counter(Counter::ServeShed);
                return Err(ServeError::Shed {
                    queue_depth: depth,
                    retry_after: t.retry_after(),
                });
            }
            match t.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => depth = cur,
            }
        }
        t.rt.record_counter(Counter::ServeAccepted);
        let budget = req.deadline.unwrap_or(t.spec.default_deadline);
        let submitted = Instant::now();
        let seq = t.seq.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(t);
        let graph = Arc::clone(&self.inner.graph);
        let fut = t.rt.spawn_future(move || {
            run_request(&state, &graph, req.workload, budget, submitted, seq)
        });
        Ok(ResponseHandle {
            fut,
            submitted,
            budget,
        })
    }

    /// Block until every tenant's in-flight depth reaches zero, or the
    /// timeout elapses. Returns true on full drain. After a successful
    /// drain, per-tenant counters satisfy
    /// `accepted == completed + deadline_missed + faulted`.
    pub fn drain(&self, timeout: Duration) -> bool {
        let give_up = Instant::now() + timeout;
        loop {
            if self
                .inner
                .tenants
                .iter()
                .all(|t| t.depth.load(Ordering::Acquire) == 0)
            {
                return true;
            }
            if Instant::now() >= give_up {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Decrement the tenant's in-flight depth when the request resolves —
/// on success, error, or panic of the serving path itself.
struct DepthGuard<'a>(&'a TenantState);

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.0.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The admitted request's whole lifecycle, run on the tenant's task
/// executor. Bumps exactly one of `ServeCompleted` /
/// `ServeDeadlineMissed` / `ServeFaulted` before returning.
fn run_request(
    t: &TenantState,
    graph: &Arc<CsrGraph>,
    workload: Workload,
    budget: Duration,
    submitted: Instant,
    seq: u64,
) -> Result<Output, ServeError> {
    let _guard = DepthGuard(t);
    let queue_wait = submitted.elapsed();
    obs::record_latency(Lat::ServeQueueWait, queue_wait);
    let finish = |outcome: Result<Output, ServeError>| {
        let took = submitted.elapsed();
        obs::record_latency(Lat::ServeRequest, took);
        let counter = match &outcome {
            Ok(_) => {
                t.observe_service(took);
                Counter::ServeCompleted
            }
            Err(ServeError::DeadlineExceeded { .. }) => Counter::ServeDeadlineMissed,
            Err(_) => Counter::ServeFaulted,
        };
        t.rt.record_counter(counter);
        outcome
    };
    let remaining = match budget.checked_sub(queue_wait) {
        Some(r) if !r.is_zero() => r,
        _ => {
            return finish(Err(ServeError::DeadlineExceeded {
                budget,
                cause: DeadlineCause::QueueWait,
            }))
        }
    };
    let fault = t.spec.faults.decide(seq);
    if fault.is_some() {
        t.rt.record_counter(Counter::ServeFaultInjected);
    }
    let outcome = match work::execute(&t.rt, t.spec.threads, graph, workload, remaining, fault) {
        Ok(out) => {
            if submitted.elapsed() > budget {
                Err(ServeError::DeadlineExceeded {
                    budget,
                    cause: DeadlineCause::FinishedLate,
                })
            } else if out != workload.expected(graph) {
                Err(ServeError::Faulted {
                    msg: "response failed validation against the sequential reference".into(),
                })
            } else {
                Ok(out)
            }
        }
        Err(work::ExecError::TimedOut) => Err(ServeError::DeadlineExceeded {
            budget,
            cause: DeadlineCause::Stalled,
        }),
        Err(work::ExecError::Cancelled) => Err(ServeError::Cancelled),
        Err(work::ExecError::Panicked(msg)) => Err(ServeError::Faulted { msg }),
    };
    finish(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_server(capacity: usize) -> Server {
        Server::config()
            .graph(512, 6, 7)
            .tenant(
                TenantSpec::new("t0")
                    .threads(2)
                    .queue_capacity(capacity)
                    .default_deadline(Duration::from_secs(5)),
            )
            .build()
    }

    #[test]
    fn accepted_request_completes_and_validates() {
        let srv = small_server(4);
        let w = Workload::SumRange { n: 50_000 };
        let out = srv
            .submit(0, Request::new(w))
            .expect("admitted")
            .wait()
            .expect("completed");
        assert_eq!(out, srv.expected_output(w));
        assert!(srv.drain(Duration::from_secs(5)));
        let snap = srv.tenant_runtime(0).metrics_snapshot();
        assert_eq!(snap.counter(Counter::ServeAccepted), 1);
        assert_eq!(snap.counter(Counter::ServeCompleted), 1);
    }

    #[test]
    fn replicated_stats_count_every_completion() {
        let srv = small_server(64);
        let mut handles = Vec::new();
        for i in 0..16u64 {
            handles.push(
                srv.submit(0, Request::new(Workload::SumRange { n: 5_000 + i * 31 }))
                    .expect("admitted"),
            );
        }
        for h in handles {
            h.wait().expect("completed");
        }
        assert!(srv.drain(Duration::from_secs(30)));
        let stats = srv.tenant_stats(0);
        let snap = srv.tenant_runtime(0).metrics_snapshot();
        assert_eq!(
            stats.samples,
            snap.counter(Counter::ServeCompleted),
            "the replicated log must fold exactly one sample per completion"
        );
        assert!(stats.ewma_service_ns > 0);
        assert!(stats.max_service_ns >= stats.ewma_service_ns / 2);
    }

    #[test]
    fn counters_add_up_after_drain() {
        let srv = small_server(64);
        for i in 0..40u64 {
            let _ = srv.submit(0, Request::new(Workload::SumRange { n: 10_000 + i * 97 }));
        }
        assert!(srv.drain(Duration::from_secs(30)), "server failed to drain");
        let snap = srv.tenant_runtime(0).metrics_snapshot();
        let accepted = snap.counter(Counter::ServeAccepted);
        let resolved = snap.counter(Counter::ServeCompleted)
            + snap.counter(Counter::ServeDeadlineMissed)
            + snap.counter(Counter::ServeFaulted);
        assert_eq!(accepted, resolved, "counter choreography broken");
        assert_eq!(
            snap.counter(Counter::ServeSubmitted),
            accepted + snap.counter(Counter::ServeShed)
        );
    }

    #[test]
    fn zero_deadline_misses_in_queue() {
        let srv = small_server(4);
        let req = Request::new(Workload::SumRange { n: 1_000_000 }).deadline(Duration::ZERO);
        match srv.submit(0, req).expect("admitted").wait() {
            Err(ServeError::DeadlineExceeded { cause, .. }) => {
                assert_eq!(cause, DeadlineCause::QueueWait)
            }
            other => panic!("expected a queue-wait deadline miss, got {other:?}"),
        }
        assert!(srv.drain(Duration::from_secs(5)));
        let snap = srv.tenant_runtime(0).metrics_snapshot();
        assert_eq!(snap.counter(Counter::ServeDeadlineMissed), 1);
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        let srv = small_server(2);
        let slow = Request::new(Workload::SumRange { n: 40_000_000 });
        let h0 = srv.submit(0, slow.clone());
        let h1 = srv.submit(0, slow.clone());
        // Capacity 2 is now reserved (even if a request finished already,
        // submit more until we observe a shed or prove the bound leaks).
        let mut shed = false;
        for _ in 0..64 {
            match srv.submit(0, slow.clone()) {
                Err(ServeError::Shed { retry_after, .. }) => {
                    assert!(retry_after >= Duration::from_millis(1));
                    shed = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(shed, "bounded queue never shed under sustained overload");
        drop((h0, h1));
        assert!(srv.drain(Duration::from_secs(60)));
        let snap = srv.tenant_runtime(0).metrics_snapshot();
        assert!(snap.counter(Counter::ServeShed) >= 1);
    }

    #[test]
    fn serve_error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: &E) {}
        let e = ServeError::Shed {
            queue_depth: 3,
            retry_after: Duration::from_millis(10),
        };
        takes_error(&e);
        assert!(e.to_string().contains("retry after"));
    }
}
