//! # aomp-macros — the annotation style of the AOmpLib reproduction
//!
//! AOmpLib supports two programming styles: *annotations* (plain Java
//! annotations such as `@Parallel` that library aspects act upon) and
//! *pointcuts*. These attribute macros are the Rust stand-in for the
//! annotations: like the AspectJ weaver, they rewrite the annotated
//! function at compile time into the shim of paper Figure 12 — the
//! original body moves into a closure and the mechanism's runtime
//! construct wraps it.
//!
//! | Paper annotation | Attribute |
//! |---|---|
//! | `@Parallel[(threads=n)]` | `#[parallel]`, `#[parallel(threads = 4)]`, `#[parallel(cancellable, stall_deadline_ms = 200)]` |
//! | `@For[(schedule=…)]` | `#[for_loop]`, `#[for_loop(schedule = "staticCyclic")]`, `#[for_loop(schedule = "dynamic", chunk = 8)]` |
//! | `@Critical[(id=name)]` | `#[critical]`, `#[critical(id = "lockname")]` |
//! | `@Critical` via flat combining | `#[replicated]`, `#[replicated(id = "name")]` |
//! | `@BarrierBefore` / `@BarrierAfter` | `#[barrier_before]` / `#[barrier_after]` |
//! | `@Master` | `#[master]` (broadcasts the return value, if any) |
//! | `@Single` | `#[single]` (ditto) |
//! | `@Task` | `#[task]` (detached activity), `#[task(depend(in = "a", out = "b"))]` (dependent task) |
//! | `@FutureTask` + `@FutureResult` | `#[future_task]` (returns `FutureTask<T>`) |
//! | OpenMP 4.5 `taskloop` | `#[taskloop]`, `#[taskloop(min_chunk = 8)]` (lazily-splitting range task) |
//!
//! `@ThreadLocalField`, `@Reduce`, `@Ordered`, `@Reader`/`@Writer` are
//! data- or scope-coupled constructs: use the `aomp` runtime API or the
//! pointcut style (`aomp-weaver`) for those.
//!
//! ## Composition
//!
//! Stacked attributes expand top-down, each wrapping the current body, so
//! **the first attribute binds closest to the body** and later attributes
//! wrap outside it. Paper Figure 8's
//! `@Master @BarrierBefore @BarrierAfter void interchange(..)` is written
//! identically in Rust and produces barrier-outside-master, as AOmpLib
//! does:
//!
//! ```ignore
//! #[master]
//! #[barrier_before]
//! #[barrier_after]
//! fn interchange(&self, k: i64, l: i64) { /* … */ }
//! ```
//!
//! ## Constraints inherited from the model
//!
//! * `#[parallel]` bodies run on every team thread, so the closure must
//!   be `Fn + Sync`: parameters should be `Copy` or shared references.
//! * `#[for_loop]` requires the first three (non-receiver) parameters to
//!   be the `i64` loop `(start, end, step)` — the paper's *for method*
//!   convention.
//! * Sequential semantics: `aomp::runtime::set_parallel_enabled(false)`
//!   turns every `#[parallel]` region into an inline sequential call.
//!
//! ## Implementation note
//!
//! These macros are written against raw `proc_macro` (no `syn`/`quote`),
//! so the workspace builds with zero registry dependencies. They support
//! plain functions with simple identifier parameters — exactly the shape
//! the paper's annotated *for methods* and activities take.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Emit a `compile_error!` with the given message.
fn compile_err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

/// Split a function item into its header (attrs, visibility, signature)
/// and its brace-delimited body — the last token of any `fn` item.
fn split_fn(item: TokenStream) -> Result<(Vec<TokenTree>, Group), String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    match tokens.split_last() {
        Some((TokenTree::Group(g), rest)) if g.delimiter() == Delimiter::Brace => {
            Ok((rest.to_vec(), g.clone()))
        }
        _ => Err("aomp attribute macros apply to functions with a body".to_owned()),
    }
}

/// Index of the parameter-list group: the first parenthesis group after
/// the `fn` keyword.
fn param_group_index(header: &[TokenTree]) -> Result<usize, String> {
    let mut seen_fn = false;
    for (i, t) in header.iter().enumerate() {
        match t {
            TokenTree::Ident(id) if id.to_string() == "fn" => seen_fn = true,
            TokenTree::Group(g) if seen_fn && g.delimiter() == Delimiter::Parenthesis => {
                return Ok(i)
            }
            _ => {}
        }
    }
    Err("aomp: could not find the function parameter list".to_owned())
}

/// The `-> Type` return tokens after the parameter list, if any, as
/// `(arrow_index, type_string)`.
fn return_type(header: &[TokenTree], params_idx: usize) -> Option<(usize, String)> {
    let rest = &header[params_idx + 1..];
    for (off, pair) in rest.windows(2).enumerate() {
        if let (TokenTree::Punct(a), TokenTree::Punct(b)) = (&pair[0], &pair[1]) {
            if a.as_char() == '-' && b.as_char() == '>' {
                let ty: TokenStream = rest[off + 2..].iter().cloned().collect();
                return Some((params_idx + 1 + off, ty.to_string()));
            }
        }
    }
    None
}

/// Split a token slice on top-level commas. Commas inside groups are
/// never top-level; commas inside `<…>` generic arguments are excluded
/// by tracking angle depth.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = (angle - 1).max(0),
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Names of the first `n` non-receiver parameters (the identifier before
/// each top-level `:`).
fn leading_param_names(params: &Group, n: usize) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = params.stream().into_iter().collect();
    let mut names = Vec::new();
    for seg in split_top_commas(&tokens) {
        let colon = seg.iter().position(
            |t| matches!(t, TokenTree::Punct(p) if p.as_char() == ':' && p.spacing() == proc_macro::Spacing::Alone),
        );
        let Some(colon) = colon else {
            continue; // receiver (`self`, `&self`, …)
        };
        match &seg[..colon] {
            [TokenTree::Ident(id)] => names.push(id.to_string()),
            [TokenTree::Ident(m), TokenTree::Ident(id)] if m.to_string() == "mut" => {
                names.push(id.to_string())
            }
            _ => return Err("aomp for methods need simple identifier parameters".to_owned()),
        }
        if names.len() == n {
            return Ok(names);
        }
    }
    Err(format!(
        "aomp: expected at least {n} loop-bound parameters (start, end, step)"
    ))
}

/// One parsed attribute argument: `name` or `name = <tokens>` (the value
/// kept as raw source text, so arbitrary expressions pass through).
struct AttrArg {
    name: String,
    value: Option<String>,
}

fn parse_attr_args(attr: TokenStream) -> Result<Vec<AttrArg>, String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let mut out = Vec::new();
    if tokens.is_empty() {
        return Ok(out);
    }
    for seg in split_top_commas(&tokens) {
        let mut it = seg.into_iter();
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("aomp: expected attribute key, found {other:?}")),
        };
        let value = match it.next() {
            None => None,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                let rest: TokenStream = it.collect();
                let text = rest.to_string();
                if text.is_empty() {
                    return Err(format!("aomp: `{name} =` needs a value"));
                }
                Some(text)
            }
            Some(other) => return Err(format!("aomp: expected `=` after `{name}`, found {other}")),
        };
        out.push(AttrArg { name, value });
    }
    Ok(out)
}

fn int_value(arg: &AttrArg) -> Result<u64, String> {
    let v = arg
        .value
        .as_deref()
        .ok_or_else(|| format!("aomp: `{}` needs an integer value", arg.name))?;
    v.replace('_', "")
        .parse::<u64>()
        .map_err(|_| format!("aomp: `{}` expects an integer, got `{v}`", arg.name))
}

fn bool_value(arg: &AttrArg) -> Result<bool, String> {
    match arg.value.as_deref() {
        None => Ok(true),
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        Some(v) => Err(format!("aomp: `{}` expects a bool, got `{v}`", arg.name)),
    }
}

fn str_value(arg: &AttrArg) -> Result<String, String> {
    let v = arg
        .value
        .as_deref()
        .ok_or_else(|| format!("aomp: `{}` needs a string value", arg.name))?;
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(format!(
            "aomp: `{}` expects a string literal, got `{v}`",
            arg.name
        ))
    }
}

/// Re-emit the function with `new_body` (statement text) as its body.
fn rewrap(header: Vec<TokenTree>, new_body: &str) -> TokenStream {
    let header_ts: TokenStream = header.into_iter().collect();
    let src = format!("{header_ts} {{ {new_body} }}");
    src.parse()
        .unwrap_or_else(|e| compile_err(&format!("aomp: generated code failed to parse: {e}")))
}

/// `@Parallel` — the function execution becomes a parallel region: a team
/// of threads each execute the body, with an implicit join (paper
/// Figure 9).
///
/// Arguments: `threads = <int>` (team size), `nested = <bool>`,
/// `only_if = <expr>` (OpenMP's `if` clause, evaluated at call time),
/// `cancellable` (honour `cancel_team()`, OpenMP 4.0 `cancel`), and
/// `stall_deadline_ms = <int>` (arm the stall watchdog; a team stuck in
/// its synchronisation primitives is cancelled and diagnosed instead of
/// deadlocking — see `aomp::region` for what the watchdog can and
/// cannot interrupt), `pooled = <bool>` (default `true`: serve the
/// region from the runtime's hot-team cache; `false` forces freshly
/// spawned threads), and `runtime = <expr>` (run the region on an
/// explicit [`aomp::Runtime`] instead of the ambient one; the
/// expression is evaluated at call time and borrowed).
#[proc_macro_attribute]
pub fn parallel(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let args = match parse_attr_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    if return_type(&header, params_idx).is_some() {
        return compile_err(
            "#[parallel] regions cannot return a value (the paper's parallel regions are void)",
        );
    }
    let mut cfg = String::new();
    for arg in &args {
        match arg.name.as_str() {
            "threads" => match int_value(arg) {
                Ok(t) => cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.threads({t}usize);")),
                Err(e) => return compile_err(&e),
            },
            "nested" => match bool_value(arg) {
                Ok(n) => cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.nested({n});")),
                Err(e) => return compile_err(&e),
            },
            "only_if" => match &arg.value {
                Some(e) => cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.only_if({e});")),
                None => return compile_err("aomp: `only_if` needs a value"),
            },
            "cancellable" => match bool_value(arg) {
                Ok(c) => cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.cancellable({c});")),
                Err(e) => return compile_err(&e),
            },
            "stall_deadline_ms" => match int_value(arg) {
                Ok(ms) => cfg.push_str(&format!(
                    "__aomp_cfg = __aomp_cfg.stall_deadline(::std::time::Duration::from_millis({ms}u64));"
                )),
                Err(e) => return compile_err(&e),
            },
            "pooled" => match bool_value(arg) {
                Ok(p) => cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.pooled({p});")),
                Err(e) => return compile_err(&e),
            },
            "runtime" => match &arg.value {
                Some(e) => {
                    cfg.push_str(&format!("__aomp_cfg = __aomp_cfg.runtime(&({e}));"))
                }
                None => return compile_err("aomp: `runtime` needs a value"),
            },
            other => {
                return compile_err(&format!(
                    "aomp: unknown #[parallel] argument `{other}` (expected threads/nested/only_if/cancellable/stall_deadline_ms/pooled/runtime)"
                ))
            }
        }
    }
    let new_body = format!(
        "#[allow(unused_mut)] let mut __aomp_cfg = ::aomp::region::RegionConfig::new();\n\
         {cfg}\n\
         ::aomp::region::parallel_with(__aomp_cfg, || {body});"
    );
    rewrap(header, &new_body)
}

/// `@For` — the function is a *for method*: its first three `i64`
/// parameters are the loop `(start, end, step)`, rewritten per thread
/// according to the schedule (paper Figures 10 and 11).
///
/// Arguments: `schedule = "staticBlock" | "staticCyclic" | "dynamic" |
/// "guided" | "blockCyclic" | "adaptive" | "runtime"` (default
/// `staticBlock`), `chunk = <int>` (dynamic/blockCyclic),
/// `min_chunk = <int>` (guided/adaptive), `nowait`.
#[proc_macro_attribute]
pub fn for_loop(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let args = match parse_attr_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let mut schedule = String::from("staticBlock");
    let mut chunk: u64 = 1;
    let mut min_chunk: u64 = 1;
    let mut nowait = false;
    for arg in &args {
        match arg.name.as_str() {
            "schedule" => match str_value(arg) {
                Ok(s) => schedule = s,
                Err(e) => return compile_err(&e),
            },
            "chunk" => match int_value(arg) {
                Ok(c) => chunk = c,
                Err(e) => return compile_err(&e),
            },
            "min_chunk" => match int_value(arg) {
                Ok(c) => min_chunk = c,
                Err(e) => return compile_err(&e),
            },
            "nowait" => nowait = true,
            other => return compile_err(&format!("aomp: unknown #[for_loop] argument `{other}`")),
        }
    }
    let sched_expr = match schedule.as_str() {
        "staticBlock" | "static_block" | "static" => "::aomp::schedule::Schedule::StaticBlock".to_owned(),
        "staticCyclic" | "static_cyclic" | "cyclic" => "::aomp::schedule::Schedule::StaticCyclic".to_owned(),
        "dynamic" => format!("::aomp::schedule::Schedule::Dynamic {{ chunk: {chunk}u64 }}"),
        "guided" => format!("::aomp::schedule::Schedule::Guided {{ min_chunk: {min_chunk}u64 }}"),
        "blockCyclic" | "block_cyclic" => {
            format!("::aomp::schedule::Schedule::BlockCyclic {{ chunk: {chunk}u64 }}")
        }
        "adaptive" => {
            format!("::aomp::schedule::Schedule::Adaptive {{ min_chunk: {min_chunk}u64 }}")
        }
        "runtime" => "::aomp::schedule::Schedule::from_env()".to_owned(),
        other => {
            return compile_err(&format!(
                "unknown schedule `{other}` (expected staticBlock/staticCyclic/dynamic/guided/blockCyclic/adaptive/runtime)"
            ))
        }
    };
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    if return_type(&header, params_idx).is_some() {
        return compile_err("#[for_loop] for methods cannot return a value");
    }
    let params = match &header[params_idx] {
        TokenTree::Group(g) => g.clone(),
        _ => unreachable!("param_group_index returns a group index"),
    };
    let names = match leading_param_names(&params, 3) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let (p0, p1, p2) = (&names[0], &names[1], &names[2]);
    let ctor = if nowait {
        format!("::aomp::workshare::ForConstruct::new({sched_expr}).nowait()")
    } else {
        format!("::aomp::workshare::ForConstruct::new({sched_expr})")
    };
    let new_body = format!(
        "static __AOMP_FOR: ::std::sync::OnceLock<::aomp::workshare::ForConstruct> = ::std::sync::OnceLock::new();\n\
         let __aomp_range = ::aomp::range::LoopRange::new({p0} as i64, {p1} as i64, {p2} as i64);\n\
         __AOMP_FOR.get_or_init(|| {ctor}).execute(__aomp_range, |{p0}, {p1}, {p2}| {body});"
    );
    rewrap(header, &new_body)
}

/// `@Critical` — the body executes in mutual exclusion. With
/// `id = "name"` the process-wide named lock is used (sharable across
/// type-unrelated call sites, as the paper extends Java `synchronized`);
/// without an id, a lock private to this function.
#[proc_macro_attribute]
pub fn critical(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let args = match parse_attr_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let mut id: Option<String> = None;
    for arg in &args {
        match arg.name.as_str() {
            "id" => match str_value(arg) {
                Ok(s) => id = Some(s),
                Err(e) => return compile_err(&e),
            },
            other => {
                return compile_err(&format!(
                    "aomp: unknown #[critical] argument `{other}` (expected `id = \"name\"`)"
                ))
            }
        }
    }
    let handle = match &id {
        Some(name) => format!("::aomp::critical::CriticalHandle::named({name:?})"),
        None => "::aomp::critical::CriticalHandle::new()".to_owned(),
    };
    let new_body = format!(
        "static __AOMP_CRIT: ::std::sync::OnceLock<::aomp::critical::CriticalHandle> = ::std::sync::OnceLock::new();\n\
         __AOMP_CRIT.get_or_init(|| {handle}).run(|| {body})"
    );
    rewrap(header, &new_body)
}

/// `@Critical` served by flat combining — a scalable drop-in for
/// [`macro@critical`] on contended sections. The body still executes in
/// mutual exclusion, but instead of every thread fighting for one lock,
/// waiting threads publish their section and the current lock holder
/// (the *combiner*) runs a whole batch in one lock tenure
/// (`aomp::nr::Combiner`). With `id = "name"` a process-wide named
/// combiner is shared across type-unrelated call sites, mirroring
/// `#[critical(id = …)]`; without an id, a combiner private to this
/// function.
///
/// Unlike `#[critical]`, the body may run on a *different* thread (the
/// combiner), so it must be `Send` and close only over `Sync` shared
/// state — which is what a shared-state critical section closes over
/// anyway. Bodies needing thread affinity should stay on `#[critical]`.
#[proc_macro_attribute]
pub fn replicated(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let args = match parse_attr_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let mut id: Option<String> = None;
    for arg in &args {
        match arg.name.as_str() {
            "id" => match str_value(arg) {
                Ok(s) => id = Some(s),
                Err(e) => return compile_err(&e),
            },
            other => {
                return compile_err(&format!(
                    "aomp: unknown #[replicated] argument `{other}` (expected `id = \"name\"`)"
                ))
            }
        }
    }
    let combiner = match &id {
        Some(name) => format!("::aomp::nr::Combiner::named({name:?})"),
        None => "::std::sync::Arc::new(::aomp::nr::Combiner::new())".to_owned(),
    };
    let new_body = format!(
        "static __AOMP_REPL: ::std::sync::OnceLock<::std::sync::Arc<::aomp::nr::Combiner>> = ::std::sync::OnceLock::new();\n\
         __AOMP_REPL.get_or_init(|| {combiner}).run(|| {body})"
    );
    rewrap(header, &new_body)
}

/// `@BarrierBefore` — team barrier before the body executes.
#[proc_macro_attribute]
pub fn barrier_before(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    rewrap(header, &format!("::aomp::ctx::barrier();\n{body}"))
}

/// `@BarrierAfter` — team barrier after the body completes.
#[proc_macro_attribute]
pub fn barrier_after(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    rewrap(
        header,
        &format!("let __aomp_result = {body};\n::aomp::ctx::barrier();\n__aomp_result"),
    )
}

/// `@Master` — only the team master executes the body. If the function
/// returns a value it is broadcast to every team thread (paper §III-C);
/// the return type must then be `Clone + Send + 'static`.
#[proc_macro_attribute]
pub fn master(_attr: TokenStream, item: TokenStream) -> TokenStream {
    gate_macro(item, "::aomp::sync::Master")
}

/// `@Single` — the first-arriving team thread executes the body; a return
/// value is broadcast to the team.
#[proc_macro_attribute]
pub fn single(_attr: TokenStream, item: TokenStream) -> TokenStream {
    gate_macro(item, "::aomp::sync::Single")
}

fn gate_macro(item: TokenStream, construct: &str) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    let is_unit = return_type(&header, params_idx).is_none();
    let new_body = if is_unit {
        format!(
            "static __AOMP_GATE: ::std::sync::OnceLock<{construct}> = ::std::sync::OnceLock::new();\n\
             __AOMP_GATE.get_or_init(<{construct}>::new).run_nowait(|| {body});"
        )
    } else {
        format!(
            "static __AOMP_GATE: ::std::sync::OnceLock<{construct}> = ::std::sync::OnceLock::new();\n\
             __AOMP_GATE.get_or_init(<{construct}>::new).run(|| {body})"
        )
    };
    rewrap(header, &new_body)
}

/// Parse `depend(in = EXPR, out = EXPR, inout = EXPR)` attribute tokens
/// into `Dep` constructor source text. Keys may repeat; each value is an
/// arbitrary expression evaluating to something `Into<Tag>` (a `&'static
/// str` name, `Tag::of(&x)`, `Tag::part("name", i)`, …).
fn parse_depend_args(attr: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    if tokens.is_empty() {
        return Ok(Vec::new());
    }
    let mut deps = Vec::new();
    for seg in split_top_commas(&tokens) {
        let [TokenTree::Ident(kw), TokenTree::Group(g)] = &seg[..] else {
            return Err("aomp: #[task] expects `depend(in = …, out = …, inout = …)`".to_owned());
        };
        if kw.to_string() != "depend" || g.delimiter() != Delimiter::Parenthesis {
            return Err(format!(
                "aomp: unknown #[task] argument `{kw}` (expected `depend(…)`)"
            ));
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        for clause in split_top_commas(&inner) {
            let mut it = clause.into_iter();
            let mode = match it.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => {
                    return Err(format!(
                        "aomp: expected `in`/`out`/`inout` in depend(…), found {other:?}"
                    ))
                }
            };
            let ctor = match mode.as_str() {
                "in" => "input",
                "out" => "output",
                "inout" => "inout",
                other => {
                    return Err(format!(
                        "aomp: unknown depend mode `{other}` (expected in/out/inout)"
                    ))
                }
            };
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                other => {
                    return Err(format!(
                        "aomp: expected `=` after depend mode `{mode}`, found {other:?}"
                    ))
                }
            }
            let expr: TokenStream = it.collect();
            let expr = expr.to_string();
            if expr.is_empty() {
                return Err(format!("aomp: `depend({mode} = )` needs a tag expression"));
            }
            deps.push(format!("::aomp::deps::Dep::{ctor}({expr})"));
        }
    }
    if deps.is_empty() {
        return Err("aomp: `depend(…)` lists at least one clause".to_owned());
    }
    Ok(deps)
}

/// `@Task` — calling the function spawns a new parallel activity that
/// executes the body and returns immediately. Parameters must be
/// `Send + 'static` (they move into the activity).
///
/// With `depend(in = …, out = …, inout = …)` clauses the activity is a
/// *dependent task*: it spawns into the ambient
/// [`aomp::deps::scope`] dependence group, ordered against earlier
/// spawns naming a conflicting tag per the OpenMP 4.x rules. Outside any
/// `scope` the body runs inline (sequential semantics). Tag expressions
/// are anything `Into<aomp::deps::Tag>` — a `&'static str`,
/// `Tag::of(&x)`, `Tag::part("name", i)`.
#[proc_macro_attribute]
pub fn task(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    if return_type(&header, params_idx).is_some() {
        return compile_err("#[task] functions cannot return a value; use #[future_task]");
    }
    let deps = match parse_depend_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    if deps.is_empty() {
        return rewrap(header, &format!("::aomp::task::spawn(move || {body});"));
    }
    let list = deps.join(", ");
    rewrap(
        header,
        &format!("::aomp::deps::spawn_depend(::std::vec![{list}], move || {body});"),
    )
}

/// `taskloop` — the function is a *for method* (first three `i64`
/// parameters are `(start, end, step)`) executed as a lazily-splitting
/// range task: the whole range starts as one task and sheds half of the
/// remainder only when another team member is observed waiting, at
/// min-chunk bite boundaries (OpenMP 4.5 `taskloop` with a work-stealing
/// flavour). Outside a parallel region the range runs inline.
///
/// Arguments: `min_chunk = <int>` — the bite/split granule (OpenMP
/// `grainsize`); defaults to the adaptive schedule's floor.
#[proc_macro_attribute]
pub fn taskloop(attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let args = match parse_attr_args(attr) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let mut ctor = "::aomp::deps::TaskloopConstruct::new()".to_owned();
    for arg in &args {
        match arg.name.as_str() {
            "min_chunk" => match int_value(arg) {
                Ok(c) => ctor.push_str(&format!(".min_chunk({c}u64)")),
                Err(e) => return compile_err(&e),
            },
            other => {
                return compile_err(&format!(
                    "aomp: unknown #[taskloop] argument `{other}` (expected `min_chunk = <int>`)"
                ))
            }
        }
    }
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    if return_type(&header, params_idx).is_some() {
        return compile_err("#[taskloop] for methods cannot return a value");
    }
    let params = match &header[params_idx] {
        TokenTree::Group(g) => g.clone(),
        _ => unreachable!("param_group_index returns a group index"),
    };
    let names = match leading_param_names(&params, 3) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let (p0, p1, p2) = (&names[0], &names[1], &names[2]);
    let new_body = format!(
        "static __AOMP_TL: ::std::sync::OnceLock<::aomp::deps::TaskloopConstruct> = ::std::sync::OnceLock::new();\n\
         let __aomp_range = ::aomp::range::LoopRange::new({p0} as i64, {p1} as i64, {p2} as i64);\n\
         __AOMP_TL.get_or_init(|| {ctor}).execute(__aomp_range, |{p0}, {p1}, {p2}| {body});"
    );
    rewrap(header, &new_body)
}

/// `@FutureTask` — calling the function spawns an activity computing the
/// body and returns an `aomp::task::FutureTask<T>` whose
/// `get` is the `@FutureResult`
/// synchronisation point. The declared return type `T` becomes
/// `FutureTask<T>` in the rewritten signature.
#[proc_macro_attribute]
pub fn future_task(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let (header, body) = match split_fn(item) {
        Ok(v) => v,
        Err(e) => return compile_err(&e),
    };
    let params_idx = match param_group_index(&header) {
        Ok(i) => i,
        Err(e) => return compile_err(&e),
    };
    let Some((arrow_idx, ret_ty)) = return_type(&header, params_idx) else {
        return compile_err(
            "#[future_task] requires a return type; use #[task] for void activities",
        );
    };
    let prefix: TokenStream = header[..arrow_idx].iter().cloned().collect();
    let src = format!(
        "{prefix} -> ::aomp::task::FutureTask<{ret_ty}> {{ ::aomp::task::spawn_future(move || -> {ret_ty} {body}) }}"
    );
    src.parse()
        .unwrap_or_else(|e| compile_err(&format!("aomp: generated code failed to parse: {e}")))
}
