//! # aomp-macros — the annotation style of the AOmpLib reproduction
//!
//! AOmpLib supports two programming styles: *annotations* (plain Java
//! annotations such as `@Parallel` that library aspects act upon) and
//! *pointcuts*. These attribute macros are the Rust stand-in for the
//! annotations: like the AspectJ weaver, they rewrite the annotated
//! function at compile time into the shim of paper Figure 12 — the
//! original body moves into a closure and the mechanism's runtime
//! construct wraps it.
//!
//! | Paper annotation | Attribute |
//! |---|---|
//! | `@Parallel[(threads=n)]` | `#[parallel]`, `#[parallel(threads = 4)]` |
//! | `@For[(schedule=…)]` | `#[for_loop]`, `#[for_loop(schedule = "staticCyclic")]`, `#[for_loop(schedule = "dynamic", chunk = 8)]` |
//! | `@Critical[(id=name)]` | `#[critical]`, `#[critical(id = "lockname")]` |
//! | `@BarrierBefore` / `@BarrierAfter` | `#[barrier_before]` / `#[barrier_after]` |
//! | `@Master` | `#[master]` (broadcasts the return value, if any) |
//! | `@Single` | `#[single]` (ditto) |
//! | `@Task` | `#[task]` (detached activity) |
//! | `@FutureTask` + `@FutureResult` | `#[future_task]` (returns `FutureTask<T>`) |
//!
//! `@ThreadLocalField`, `@Reduce`, `@Ordered`, `@Reader`/`@Writer` are
//! data- or scope-coupled constructs: use the `aomp` runtime API or the
//! pointcut style (`aomp-weaver`) for those.
//!
//! ## Composition
//!
//! Stacked attributes expand top-down, each wrapping the current body, so
//! **the first attribute binds closest to the body** and later attributes
//! wrap outside it. Paper Figure 8's
//! `@Master @BarrierBefore @BarrierAfter void interchange(..)` is written
//! identically in Rust and produces barrier-outside-master, as AOmpLib
//! does:
//!
//! ```ignore
//! #[master]
//! #[barrier_before]
//! #[barrier_after]
//! fn interchange(&self, k: i64, l: i64) { /* … */ }
//! ```
//!
//! ## Constraints inherited from the model
//!
//! * `#[parallel]` bodies run on every team thread, so the closure must
//!   be `Fn + Sync`: parameters should be `Copy` or shared references.
//! * `#[for_loop]` requires the first three (non-receiver) parameters to
//!   be the `i64` loop `(start, end, step)` — the paper's *for method*
//!   convention.
//! * Sequential semantics: `aomp::runtime::set_parallel_enabled(false)`
//!   turns every `#[parallel]` region into an inline sequential call.

use proc_macro::TokenStream;
use proc_macro2::TokenStream as TokenStream2;
use quote::quote;
use syn::{parse_macro_input, FnArg, ItemFn, LitBool, LitInt, LitStr, Pat};

/// Replace the body of `func` with `new_body` (a sequence of statements)
/// and re-emit the function, preserving signature, visibility and the
/// remaining (not yet expanded) attributes.
fn rewrap(mut func: ItemFn, new_body: TokenStream2) -> TokenStream {
    let block: syn::Block = syn::parse2(quote! { { #new_body } }).expect("generated block parses");
    *func.block = block;
    quote!(#func).into()
}

/// Names of the first `n` non-receiver parameters, or an error if they
/// are not simple identifiers.
fn leading_param_idents(func: &ItemFn, n: usize) -> syn::Result<Vec<syn::Ident>> {
    let mut idents = Vec::new();
    for arg in func.sig.inputs.iter() {
        if let FnArg::Typed(pt) = arg {
            match &*pt.pat {
                Pat::Ident(pi) => idents.push(pi.ident.clone()),
                other => {
                    return Err(syn::Error::new_spanned(
                        other,
                        "aomp for methods need simple identifier parameters",
                    ))
                }
            }
            if idents.len() == n {
                break;
            }
        }
    }
    if idents.len() < n {
        return Err(syn::Error::new_spanned(
            &func.sig,
            format!("aomp: expected at least {n} loop-bound parameters (start, end, step)"),
        ));
    }
    Ok(idents)
}

fn is_unit_return(func: &ItemFn) -> bool {
    matches!(func.sig.output, syn::ReturnType::Default)
}

/// `@Parallel` — the function execution becomes a parallel region: a team
/// of threads each execute the body, with an implicit join (paper
/// Figure 9).
///
/// Arguments: `threads = <int>` (team size), `nested = <bool>`,
/// `only_if = <expr>` (OpenMP's `if` clause, evaluated at call time).
#[proc_macro_attribute]
pub fn parallel(attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let mut threads: Option<u64> = None;
    let mut nested: Option<bool> = None;
    let mut only_if: Option<syn::Expr> = None;
    if !attr.is_empty() {
        let parser = syn::meta::parser(|meta| {
            if meta.path.is_ident("threads") {
                threads = Some(meta.value()?.parse::<LitInt>()?.base10_parse()?);
                Ok(())
            } else if meta.path.is_ident("nested") {
                nested = Some(meta.value()?.parse::<LitBool>()?.value());
                Ok(())
            } else if meta.path.is_ident("only_if") {
                only_if = Some(meta.value()?.parse::<syn::Expr>()?);
                Ok(())
            } else {
                Err(meta.error("expected `threads = <int>`, `nested = <bool>` or `only_if = <expr>`"))
            }
        });
        parse_macro_input!(attr with parser);
    }
    if !is_unit_return(&func) {
        return syn::Error::new_spanned(
            &func.sig.output,
            "#[parallel] regions cannot return a value (the paper's parallel regions are void)",
        )
        .to_compile_error()
        .into();
    }
    let body = &func.block;
    let cfg_threads = threads.map(|t| {
        let t = t as usize;
        quote! { __aomp_cfg = __aomp_cfg.threads(#t); }
    });
    let cfg_nested = nested.map(|n| quote! { __aomp_cfg = __aomp_cfg.nested(#n); });
    let cfg_only_if = only_if.map(|e| quote! { __aomp_cfg = __aomp_cfg.only_if(#e); });
    let new_body = quote! {
        #[allow(unused_mut)]
        let mut __aomp_cfg = ::aomp::region::RegionConfig::new();
        #cfg_threads
        #cfg_nested
        #cfg_only_if
        ::aomp::region::parallel_with(__aomp_cfg, || #body);
    };
    rewrap(func, new_body)
}

/// `@For` — the function is a *for method*: its first three `i64`
/// parameters are the loop `(start, end, step)`, rewritten per thread
/// according to the schedule (paper Figures 10 and 11).
///
/// Arguments: `schedule = "staticBlock" | "staticCyclic" | "dynamic" |
/// "guided"` (default `staticBlock`), `chunk = <int>` (dynamic),
/// `min_chunk = <int>` (guided), `nowait`.
#[proc_macro_attribute]
pub fn for_loop(attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let mut schedule = String::from("staticBlock");
    let mut chunk: u64 = 1;
    let mut min_chunk: u64 = 1;
    let mut nowait = false;
    if !attr.is_empty() {
        let parser = syn::meta::parser(|meta| {
            if meta.path.is_ident("schedule") {
                schedule = meta.value()?.parse::<LitStr>()?.value();
                Ok(())
            } else if meta.path.is_ident("chunk") {
                chunk = meta.value()?.parse::<LitInt>()?.base10_parse()?;
                Ok(())
            } else if meta.path.is_ident("min_chunk") {
                min_chunk = meta.value()?.parse::<LitInt>()?.base10_parse()?;
                Ok(())
            } else if meta.path.is_ident("nowait") {
                nowait = true;
                Ok(())
            } else {
                Err(meta.error("expected schedule/chunk/min_chunk/nowait"))
            }
        });
        parse_macro_input!(attr with parser);
    }
    let sched_expr = match schedule.as_str() {
        "staticBlock" | "static_block" | "static" => quote!(::aomp::schedule::Schedule::StaticBlock),
        "staticCyclic" | "static_cyclic" | "cyclic" => quote!(::aomp::schedule::Schedule::StaticCyclic),
        "dynamic" => quote!(::aomp::schedule::Schedule::Dynamic { chunk: #chunk }),
        "guided" => quote!(::aomp::schedule::Schedule::Guided { min_chunk: #min_chunk }),
        "blockCyclic" | "block_cyclic" => quote!(::aomp::schedule::Schedule::BlockCyclic { chunk: #chunk }),
        "runtime" => quote!(::aomp::schedule::Schedule::from_env()),
        other => {
            return syn::Error::new(
                proc_macro2::Span::call_site(),
                format!("unknown schedule `{other}` (expected staticBlock/staticCyclic/dynamic/guided/blockCyclic/runtime)"),
            )
            .to_compile_error()
            .into()
        }
    };
    let idents = match leading_param_idents(&func, 3) {
        Ok(v) => v,
        Err(e) => return e.to_compile_error().into(),
    };
    if !is_unit_return(&func) {
        return syn::Error::new_spanned(
            &func.sig.output,
            "#[for_loop] for methods cannot return a value",
        )
        .to_compile_error()
        .into();
    }
    let (p0, p1, p2) = (&idents[0], &idents[1], &idents[2]);
    let body = &func.block;
    let ctor = if nowait {
        quote! { ::aomp::workshare::ForConstruct::new(#sched_expr).nowait() }
    } else {
        quote! { ::aomp::workshare::ForConstruct::new(#sched_expr) }
    };
    let new_body = quote! {
        static __AOMP_FOR: ::std::sync::OnceLock<::aomp::workshare::ForConstruct> =
            ::std::sync::OnceLock::new();
        let __aomp_range = ::aomp::range::LoopRange::new(#p0 as i64, #p1 as i64, #p2 as i64);
        __AOMP_FOR
            .get_or_init(|| #ctor)
            .execute(__aomp_range, |#p0, #p1, #p2| #body);
    };
    rewrap(func, new_body)
}

/// `@Critical` — the body executes in mutual exclusion. With
/// `id = "name"` the process-wide named lock is used (sharable across
/// type-unrelated call sites, as the paper extends Java `synchronized`);
/// without an id, a lock private to this function.
#[proc_macro_attribute]
pub fn critical(attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let mut id: Option<String> = None;
    if !attr.is_empty() {
        let parser = syn::meta::parser(|meta| {
            if meta.path.is_ident("id") {
                id = Some(meta.value()?.parse::<LitStr>()?.value());
                Ok(())
            } else {
                Err(meta.error("expected `id = \"name\"`"))
            }
        });
        parse_macro_input!(attr with parser);
    }
    let body = &func.block;
    let handle = match &id {
        Some(name) => quote! { ::aomp::critical::CriticalHandle::named(#name) },
        None => quote! { ::aomp::critical::CriticalHandle::new() },
    };
    let new_body = quote! {
        static __AOMP_CRIT: ::std::sync::OnceLock<::aomp::critical::CriticalHandle> =
            ::std::sync::OnceLock::new();
        __AOMP_CRIT.get_or_init(|| #handle).run(|| #body)
    };
    rewrap(func, new_body)
}

/// `@BarrierBefore` — team barrier before the body executes.
#[proc_macro_attribute]
pub fn barrier_before(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let body = &func.block;
    let new_body = quote! {
        ::aomp::ctx::barrier();
        #body
    };
    rewrap(func, new_body)
}

/// `@BarrierAfter` — team barrier after the body completes.
#[proc_macro_attribute]
pub fn barrier_after(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let body = &func.block;
    let new_body = quote! {
        let __aomp_result = #body;
        ::aomp::ctx::barrier();
        __aomp_result
    };
    rewrap(func, new_body)
}

/// `@Master` — only the team master executes the body. If the function
/// returns a value it is broadcast to every team thread (paper §III-C);
/// the return type must then be `Clone + Send + 'static`.
#[proc_macro_attribute]
pub fn master(_attr: TokenStream, item: TokenStream) -> TokenStream {
    gate_macro(item, quote!(::aomp::sync::Master))
}

/// `@Single` — the first-arriving team thread executes the body; a return
/// value is broadcast to the team.
#[proc_macro_attribute]
pub fn single(_attr: TokenStream, item: TokenStream) -> TokenStream {
    gate_macro(item, quote!(::aomp::sync::Single))
}

fn gate_macro(item: TokenStream, construct: TokenStream2) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    let body = &func.block;
    let new_body = if is_unit_return(&func) {
        quote! {
            static __AOMP_GATE: ::std::sync::OnceLock<#construct> = ::std::sync::OnceLock::new();
            __AOMP_GATE.get_or_init(<#construct>::new).run_nowait(|| #body);
        }
    } else {
        quote! {
            static __AOMP_GATE: ::std::sync::OnceLock<#construct> = ::std::sync::OnceLock::new();
            __AOMP_GATE.get_or_init(<#construct>::new).run(|| #body)
        }
    };
    rewrap(func, new_body)
}

/// `@Task` — calling the function spawns a new parallel activity that
/// executes the body and returns immediately. Parameters must be
/// `Send + 'static` (they move into the activity).
#[proc_macro_attribute]
pub fn task(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let func = parse_macro_input!(item as ItemFn);
    if !is_unit_return(&func) {
        return syn::Error::new_spanned(
            &func.sig.output,
            "#[task] functions cannot return a value; use #[future_task]",
        )
        .to_compile_error()
        .into();
    }
    let body = &func.block;
    let new_body = quote! {
        ::aomp::task::spawn(move || #body);
    };
    rewrap(func, new_body)
}

/// `@FutureTask` — calling the function spawns an activity computing the
/// body and returns an `aomp::task::FutureTask<T>` whose
/// `get` is the `@FutureResult`
/// synchronisation point. The declared return type `T` becomes
/// `FutureTask<T>` in the rewritten signature.
#[proc_macro_attribute]
pub fn future_task(_attr: TokenStream, item: TokenStream) -> TokenStream {
    let mut func = parse_macro_input!(item as ItemFn);
    let ret_ty = match &func.sig.output {
        syn::ReturnType::Type(_, ty) => (**ty).clone(),
        syn::ReturnType::Default => {
            return syn::Error::new_spanned(
                &func.sig,
                "#[future_task] requires a return type; use #[task] for void activities",
            )
            .to_compile_error()
            .into()
        }
    };
    let body = func.block.clone();
    func.sig.output = syn::parse_quote!(-> ::aomp::task::FutureTask<#ret_ty>);
    let new_body = quote! {
        ::aomp::task::spawn_future(move || -> #ret_ty #body)
    };
    rewrap(func, new_body)
}
