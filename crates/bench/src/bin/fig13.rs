//! Regenerates paper Figure 13: speed-up of the eight JGF benchmarks,
//! hand-threaded (JGF) vs AOmpLib (Aomp), on the two modelled machines
//! (i7 × 8 threads, Xeon × 24 threads), plus — when run with
//! `--measure` — the AOmp/JGF wall-time ratio measured on this host with
//! the real kernels (the paper's "difference … is less than 1 %" claim).

use aomp::obs;
use aomp_bench::{
    bar, fig13_series, host_threads, json_arg, measure_entry_overhead, metrics_json, write_json,
};
use aomp_jgf::Size;
use aomp_simcore::{Json, Machine, ToJson};

/// Environment variable overriding the timed region entries per path
/// (default 300; CI's bench-smoke job runs a reduced count).
const ENTRY_ITERS_ENV: &str = "AOMP_FIG13_ENTRY_ITERS";

/// Best-of-3 wall time of `f`, in seconds (one-shot timings on a busy
/// single-core container are noisy).
fn best_of<R>(f: impl FnMut() -> R) -> f64 {
    aomp_bench::best_of_secs(3, f)
}

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");

    println!("Figure 13: Speed-up with Java-style threads (JGF) and the proposed approach (Aomp)");
    println!("(virtual-time simulation of the paper's machines; see DESIGN.md §5)\n");
    for (machine, t) in [(Machine::i7(), 8usize), (Machine::xeon(), 24)] {
        println!("== {} — {} threads ==", machine.name, t);
        println!("{:<12} {:>8} {:>8}   speed-up", "benchmark", "JGF", "Aomp");
        for row in fig13_series(&machine, t) {
            println!(
                "{:<12} {:>8.2} {:>8.2}   {}",
                row.benchmark,
                row.jgf,
                row.aomp,
                bar(row.jgf, 3.0)
            );
        }
        println!();
    }

    let iters = std::env::var(ENTRY_ITERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(300);
    let t = host_threads().clamp(2, 8);
    let entry = {
        println!("== Region-entry overhead on this host: hot teams vs spawning ==");
        println!("(empty bodies, {t} threads, {iters} timed entries per path)\n");
        let e = measure_entry_overhead(t, iters);
        println!(
            "pooled {:>10.0} ns/region   spawn {:>10.0} ns/region   speed-up {:>6.1}x\n",
            e.pooled_ns,
            e.spawn_ns,
            e.speedup()
        );
        e
    };

    // Same measurement with the obs registry enabled: the counter/
    // histogram path rides the slow paths, so the two numbers should
    // stay close — the delta is the cost of AOMP_METRICS=1 itself
    // (entry_overhead above stays the guarded metrics-off figure).
    let (entry_metrics_on, metrics) = {
        obs::set_metrics(true);
        let before = obs::snapshot();
        let e = measure_entry_overhead(t, iters);
        let delta = obs::snapshot().since(&before);
        obs::set_metrics(false);
        println!("== Same measurement with AOMP_METRICS on ==");
        println!(
            "pooled {:>10.0} ns/region   spawn {:>10.0} ns/region\n",
            e.pooled_ns, e.spawn_ns
        );
        println!("{}", delta.render_text());
        (e, metrics_json(&delta))
    };

    let all: Vec<(String, usize, Vec<aomp_bench::Fig13Row>)> =
        [(Machine::i7(), 8usize), (Machine::xeon(), 24)]
            .into_iter()
            .map(|(m, t)| (m.name.clone(), t, fig13_series(&m, t)))
            .collect();
    let report = Json::Obj(vec![
        ("entry_overhead".to_owned(), entry.to_json()),
        (
            "entry_overhead_metrics_on".to_owned(),
            entry_metrics_on.to_json(),
        ),
        ("metrics".to_owned(), metrics),
        ("simulated".to_owned(), all.to_json()),
    ]);
    std::fs::write("BENCH_fig13.json", report.pretty()).expect("write BENCH_fig13.json");
    println!("(wrote BENCH_fig13.json)\n");
    if let Some(path) = json_arg() {
        write_json(&path, &all).expect("write fig13 json");
        println!("(wrote {path})\n");
    }

    if measure {
        println!(
            "== Measured on this host: AOmp vs JGF wall time (size A, {} threads) ==",
            host_threads()
        );
        println!("(both versions run the same schedule; the paper reports <1% difference)\n");
        measure_ratios();
    } else {
        println!("(run with --measure to also time the real kernels on this host)");
    }
}

fn ratio_line(name: &str, jgf_s: f64, aomp_s: f64) {
    let diff = (aomp_s - jgf_s) / jgf_s * 100.0;
    println!("{name:<12} jgf {jgf_s:>8.3}s   aomp {aomp_s:>8.3}s   diff {diff:>+6.2}%");
}

fn measure_ratios() {
    let t = host_threads();
    {
        let data = aomp_jgf::crypt::generate(Size::A);
        let tj = best_of(|| aomp_jgf::crypt::mt::run(&data, t));
        let ta = best_of(|| aomp_jgf::crypt::aomp::run(&data, t));
        ratio_line("Crypt", tj, ta);
    }
    {
        let data = aomp_jgf::lufact::generate(Size::A);
        let tj = best_of(|| aomp_jgf::lufact::mt::run(&data, t));
        let ta = best_of(|| aomp_jgf::lufact::aomp::run(&data, t));
        ratio_line("LUFact", tj, ta);
    }
    {
        let n = aomp_jgf::series::coefficients_for(Size::A);
        let tj = best_of(|| aomp_jgf::series::mt::run(n, t));
        let ta = best_of(|| aomp_jgf::series::aomp::run(n, t));
        ratio_line("Series", tj, ta);
    }
    {
        let grid = aomp_jgf::sor::generate(Size::A);
        let iters = aomp_jgf::sor::ITERATIONS;
        let tj = best_of(|| aomp_jgf::sor::mt::run(&grid, iters, t));
        let ta = best_of(|| aomp_jgf::sor::aomp::run(&grid, iters, t));
        ratio_line("SOR", tj, ta);
    }
    {
        let d = aomp_jgf::sparse::generate(Size::A);
        let iters = aomp_jgf::sparse::ITERATIONS;
        let tj = best_of(|| aomp_jgf::sparse::mt::run(&d, iters, t));
        let ta = best_of(|| aomp_jgf::sparse::aomp::run(&d, iters, t));
        ratio_line("Sparse", tj, ta);
    }
    {
        let d = aomp_jgf::moldyn::generate(aomp_jgf::moldyn::mm_for(Size::A), 10);
        let tj = best_of(|| aomp_jgf::moldyn::mt::run(&d, t));
        let ta = best_of(|| aomp_jgf::moldyn::aomp::run(&d, t));
        ratio_line("MolDyn", tj, ta);
    }
    {
        let d = aomp_jgf::montecarlo::generate(Size::A);
        let tj = best_of(|| aomp_jgf::montecarlo::mt::run(&d, t));
        let ta = best_of(|| aomp_jgf::montecarlo::aomp::run(&d, t));
        ratio_line("MonteCarlo", tj, ta);
    }
    {
        let scene = aomp_jgf::raytracer::generate(Size::A);
        let tj = best_of(|| aomp_jgf::raytracer::mt::run(&scene, t));
        let ta = best_of(|| aomp_jgf::raytracer::aomp::run(&scene, t));
        ratio_line("RayTracer", tj, ta);
    }
}
