//! Dependent task graphs vs barriered phases (`aomp::deps`): PageRank
//! with a fixed iteration count as a per-(iteration × partition) task
//! graph (`pagerank::run_deps`) against its barriered twin
//! (`pagerank::run_phased`) — measured on this host and on the simcore
//! Xeon model, where the dag's critical path is computed by longest-path
//! DP over the *actual* dependence graph the runtime builds (RAW edges
//! from the transpose's partition structure, WAR edges from the previous
//! iteration's reader set). Writes `BENCH_dag.json`.
//!
//! The expected shape, and what CI validates: on the skewed input (a
//! power-law graph transposed so the in-degree — the pull-sweep's cost —
//! concentrates in the head partitions) the barriered twin pays every
//! round's worst-thread overload plus two barriers per iteration, while
//! the dependent graph lets light partitions pipeline into the next
//! iteration as soon as their own source partitions settle; on the
//! uniform input the two stay close. Every measured run, both variants,
//! is asserted bitwise equal to the sequential `reference_iters` — and
//! BFS's dependent graph (`bfs::run_deps`) equal to its reference — so
//! the report's `"equal"` bit certifies the refactor preserved
//! sequential semantics on this host.
//!
//! ```text
//! dag [--n N] [--deg D]   (or AOMP_DAG_BENCH_N; defaults 20000, 12)
//! ```

use aomp_bench::{best_of_secs, host_threads, thread_ladder, SweepGrid};
use aomp_irregular::{bfs, pagerank, CsrGraph, GraphKind};
use aomp_simcore::{Json, Machine, Program, Simulator, Step, ToJson};
use aomp_weaver::Weaver;

/// Power iterations per run (fixed — the twins must do identical work).
const ITERS: usize = 10;
/// Vertex partitions of the dependent graph (tasks per iteration).
const PARTS: usize = 32;
/// Machine ops charged per in-edge of a pull sweep (load, divide-free
/// multiply-add via the cached reciprocal path, accumulate).
const OPS_PER_EDGE: f64 = 4.0;
/// Per-vertex framing ops (teleport term, store).
const OPS_PER_VERTEX: f64 = 8.0;

/// Modelled ops of each partition's sweep task (from the actual
/// transpose, not a synthetic skew parameter).
fn partition_costs(gt: &CsrGraph, parts: usize) -> Vec<f64> {
    let n = gt.vertices();
    (0..parts)
        .map(|p| {
            let (lo, hi) = pagerank::partition_bounds(n, parts, p);
            (lo..hi)
                .map(|v| gt.degree(v) as f64 * OPS_PER_EDGE + OPS_PER_VERTEX)
                .sum()
        })
        .collect()
}

/// Most-loaded-thread share over the even share under the contiguous
/// block partition the barriered sweep uses at team size `t`.
fn block_imbalance(gt: &CsrGraph, t: usize) -> f64 {
    let n = gt.vertices();
    let per_vertex: Vec<f64> = (0..n)
        .map(|v| gt.degree(v) as f64 * OPS_PER_EDGE + OPS_PER_VERTEX)
        .collect();
    let total: f64 = per_vertex.iter().sum();
    if total == 0.0 || t == 0 {
        return 1.0;
    }
    let chunk = n.div_ceil(t);
    let max = (0..t)
        .map(|tid| {
            let lo = (tid * chunk).min(n);
            let hi = ((tid + 1) * chunk).min(n);
            per_vertex[lo..hi].iter().sum::<f64>()
        })
        .fold(0.0, f64::max);
    (max * t as f64 / total).max(1.0)
}

/// Ops-weighted longest path through the dependence DAG `run_deps`
/// builds: iteration k's partition-p task waits on the iteration-(k-1)
/// tasks of the partitions it reads (RAW, from `source_partitions`) and
/// of the partitions that read *it* last iteration (WAR, the runtime's
/// reader-set fence).
fn critical_path_ops(costs: &[f64], srcparts: &[Vec<u64>], iters: usize) -> f64 {
    let parts = costs.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for p in 0..parts {
        for &q in &srcparts[p] {
            preds[p].push(q as usize); // RAW: p reads q's slice
        }
    }
    for q in 0..parts {
        for &p in &srcparts[q] {
            let p = p as usize;
            if !preds[p].contains(&q) {
                preds[p].push(q); // WAR: q read the slice p rewrites
            }
        }
    }
    let mut prev = costs.to_vec();
    for _ in 1..iters {
        prev = (0..parts)
            .map(|p| costs[p] + preds[p].iter().map(|&q| prev[q]).fold(0.0, f64::max))
            .collect();
    }
    prev.iter().copied().fold(0.0, f64::max)
}

/// Simulated sweep-ops/µs of the two formulations on the Xeon model.
fn simulated_grid(label: &str, gt: &CsrGraph) -> (SweepGrid, f64, f64) {
    let m = Machine::xeon();
    let sim = Simulator::new(m.clone());
    let costs = partition_costs(gt, PARTS);
    let srcparts = pagerank::source_partitions(gt, PARTS);
    let per_iter: f64 = costs.iter().sum();
    let total_ops = per_iter * ITERS as f64;
    let crit_ops = critical_path_ops(&costs, &srcparts, ITERS);
    let tasks = (ITERS * PARTS) as f64;

    let mut grid = SweepGrid::new(label.to_owned(), "ops/us", (1..=m.hw_threads).collect());
    grid.run("barriered", |t| {
        let p = Program::repeat(
            "phased",
            vec![
                Step::Parallel {
                    ops: per_iter,
                    bytes: 0.0,
                    imbalance: block_imbalance(gt, t),
                },
                Step::Barrier,
            ],
            ITERS,
        );
        total_ops / sim.run(&p, t)
    });
    grid.run("dag", |t| {
        let p = Program::new(
            "dag",
            vec![Step::TaskDag {
                ops: total_ops,
                bytes: 0.0,
                crit_ops,
                tasks,
            }],
        );
        total_ops / sim.run(&p, t)
    });
    (grid, crit_ops, total_ops)
}

/// Measured sweep-ops/µs of the two formulations on this host; every
/// repetition is asserted bitwise equal to the sequential reference.
fn measured_grid(label: &str, g: &CsrGraph, expect: &[f64], total_ops: f64) -> SweepGrid {
    let mut grid = SweepGrid::new(
        format!("{label} on this host ({} hw threads)", host_threads()),
        "ops/us",
        thread_ladder(host_threads().max(4)),
    );
    grid.run("barriered", |t| {
        let secs = best_of_secs(2, || {
            let got = Weaver::global()
                .with_deployed(pagerank::aspect(t), || pagerank::run_phased(g, ITERS));
            assert_eq!(got, expect, "phased t={t} diverged from reference");
        });
        total_ops / (secs * 1e6)
    });
    grid.run("dag", |t| {
        let secs = best_of_secs(2, || {
            let got = Weaver::global().with_deployed(pagerank::aspect_deps(t), || {
                pagerank::run_deps(g, ITERS, PARTS)
            });
            assert_eq!(got, expect, "dag t={t} diverged from reference");
        });
        total_ops / (secs * 1e6)
    });
    grid
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.trim().parse::<usize>().ok())
    };
    let n = flag("--n")
        .or_else(|| {
            std::env::var("AOMP_DAG_BENCH_N")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .filter(|&n| n >= 100)
        .unwrap_or(20_000);
    let deg = flag("--deg").filter(|&d| d >= 2).unwrap_or(12);

    let mut sections = Vec::new();
    for (key, g) in [
        // Transposed power-law: the pull sweep's cost (in-degree) lands
        // skewed into the head partitions — the dag's home turf.
        (
            "skewed",
            CsrGraph::generate(GraphKind::PowerLaw, n, deg, 42).transpose(),
        ),
        (
            "uniform",
            CsrGraph::generate(GraphKind::Uniform, n, deg, 42),
        ),
    ] {
        let gt = g.transpose();
        let costs = partition_costs(&gt, PARTS);
        let per_iter: f64 = costs.iter().sum();
        let total_ops = per_iter * ITERS as f64;
        let expect = pagerank::reference_iters(&g, ITERS);
        println!(
            "== {key}: {} vertices, {} edges, block imbalance at 12 threads {:.2} ==\n",
            g.vertices(),
            g.edges(),
            block_imbalance(&gt, 12),
        );

        let measured = measured_grid(key, &g, &expect, total_ops);
        measured.print_table();
        let (simulated, crit_ops, _) = simulated_grid(&format!("{key} on the Xeon model"), &gt);
        simulated.print_table();

        sections.push((
            key.to_owned(),
            Json::Obj(vec![
                ("measured".to_owned(), measured.to_json()),
                ("simulated".to_owned(), simulated.to_json()),
                ("total_ops".to_owned(), Json::Num(total_ops)),
                ("crit_ops".to_owned(), Json::Num(crit_ops)),
                ("tasks".to_owned(), Json::Num((ITERS * PARTS) as f64)),
                (
                    "block_imbalance_t12".to_owned(),
                    Json::Num(block_imbalance(&gt, 12)),
                ),
            ]),
        ));
    }

    // BFS's dependent graph must also match its sequential reference —
    // part of the report's equality certificate.
    let bg = CsrGraph::generate(GraphKind::PowerLaw, n, deg, 7);
    let bfs_equal = bfs::run_deps(&bg, 0, 64, PARTS) == bfs::reference(&bg, 0);
    println!("bfs dag == reference: {bfs_equal}\n");

    // The measured grids assert equality every repetition, so reaching
    // this point certifies both pagerank variants; record it with BFS's.
    let mut report = vec![
        ("vertices".to_owned(), Json::Num(n as f64)),
        ("avg_degree".to_owned(), Json::Num(deg as f64)),
        ("iters".to_owned(), Json::Num(ITERS as f64)),
        ("parts".to_owned(), Json::Num(PARTS as f64)),
        ("equal".to_owned(), Json::Bool(bfs_equal)),
    ];
    report.extend(sections);
    std::fs::write("BENCH_dag.json", Json::Obj(report).pretty()).expect("write BENCH_dag.json");
    println!("(wrote BENCH_dag.json)");
}
