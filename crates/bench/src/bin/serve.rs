//! Load-generation harness for `aomp-serve`: drives a multi-tenant
//! server in closed-loop then open-loop mode and writes
//! `BENCH_serve.json` with throughput, latency quantiles and shed rate.
//!
//! The open-loop phase deliberately offers ~2× the closed-loop measured
//! capacity: a server without admission control queue-collapses there
//! (latency grows without bound); this one sheds, and the report
//! quantifies both the shed rate and the accepted requests' p99.
//!
//! ```text
//! serve [--duration-ms N] [--tenants N] [--threads N] [--concurrency N]
//!       [--deadline-ms N] [--rps F] [--fault-panic F] [--fault-cancel F]
//!       [--sweep]
//! ```
//!
//! `--sweep` additionally runs a per-tenant worker-thread sweep of
//! closed-loop throughput through the shared [`SweepGrid`] measurement
//! loop and embeds it in the report under `"thread_sweep"`.

use aomp::obs;
use aomp_bench::{metrics_json, thread_ladder, SweepGrid};
use aomp_serve::loadgen::{self, LoadConfig, LoadStats, Mode};
use aomp_serve::{Backoff, FaultPlan, Server, TenantSpec, Workload};
use aomp_simcore::{Json, ToJson};
use std::time::Duration;

struct Opts {
    duration: Duration,
    tenants: usize,
    threads: usize,
    concurrency: usize,
    deadline: Duration,
    rps: Option<f64>,
    fault_panic: f64,
    fault_cancel: f64,
    sweep: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        duration: Duration::from_millis(1000),
        tenants: 2,
        threads: 2,
        concurrency: 4,
        deadline: Duration::from_millis(500),
        rps: None,
        fault_panic: 0.0,
        fault_cancel: 0.0,
        sweep: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: serve [--duration-ms N] [--tenants N] [--threads N] [--concurrency N]\n\
             \x20            [--deadline-ms N] [--rps F] [--fault-panic F] [--fault-cancel F]\n\
             \x20            [--sweep]"
        );
        std::process::exit(2)
    };
    while i < args.len() {
        let val = |args: &[String], i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--duration-ms" => {
                opts.duration =
                    Duration::from_millis(val(&args, i).parse().unwrap_or_else(|_| usage()))
            }
            "--tenants" => opts.tenants = val(&args, i).parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = val(&args, i).parse().unwrap_or_else(|_| usage()),
            "--concurrency" => opts.concurrency = val(&args, i).parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                opts.deadline =
                    Duration::from_millis(val(&args, i).parse().unwrap_or_else(|_| usage()))
            }
            "--rps" => opts.rps = Some(val(&args, i).parse().unwrap_or_else(|_| usage())),
            "--fault-panic" => opts.fault_panic = val(&args, i).parse().unwrap_or_else(|_| usage()),
            "--fault-cancel" => {
                opts.fault_cancel = val(&args, i).parse().unwrap_or_else(|_| usage())
            }
            "--sweep" => {
                opts.sweep = true;
                i += 1;
                continue;
            }
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn stats_json(stats: &LoadStats) -> Json {
    Json::Obj(vec![
        ("submitted".to_owned(), Json::Num(stats.submitted as f64)),
        ("accepted".to_owned(), Json::Num(stats.accepted as f64)),
        ("shed".to_owned(), Json::Num(stats.shed as f64)),
        ("completed".to_owned(), Json::Num(stats.completed as f64)),
        (
            "deadline_missed".to_owned(),
            Json::Num(stats.deadline_missed as f64),
        ),
        ("faulted".to_owned(), Json::Num(stats.faulted as f64)),
        ("retries".to_owned(), Json::Num(stats.retries as f64)),
        (
            "wall_ms".to_owned(),
            Json::Num(stats.wall.as_secs_f64() * 1e3),
        ),
        ("throughput_rps".to_owned(), Json::Num(stats.throughput_rps)),
        ("shed_rate".to_owned(), Json::Num(stats.shed_rate)),
        ("p50_ns".to_owned(), Json::Num(stats.p50_ns as f64)),
        ("p99_ns".to_owned(), Json::Num(stats.p99_ns as f64)),
        ("mean_ns".to_owned(), Json::Num(stats.mean_ns)),
        (
            "queue_wait_p99_ns".to_owned(),
            Json::Num(stats.queue_wait_p99_ns as f64),
        ),
        (
            "counters_consistent".to_owned(),
            Json::Bool(stats.counters_consistent()),
        ),
    ])
}

fn print_stats(label: &str, s: &LoadStats) {
    println!(
        "{label:<8} {:>7.1} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  shed {:>5.1}%  \
         (completed {} / missed {} / faulted {} / retries {})",
        s.throughput_rps,
        s.p50_ns as f64 / 1e6,
        s.p99_ns as f64 / 1e6,
        s.shed_rate * 100.0,
        s.completed,
        s.deadline_missed,
        s.faulted,
        s.retries,
    );
}

fn main() {
    let opts = parse_args();
    obs::set_metrics(true);
    let before = obs::snapshot();

    // CLI flags override the AOMP_SERVE_FAULTS env plan when given.
    let mut faults = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::none().seed(11));
    if opts.fault_panic > 0.0 {
        faults = faults.panic_fraction(opts.fault_panic);
    }
    if opts.fault_cancel > 0.0 {
        faults = faults.cancel_fraction(opts.fault_cancel);
    }
    let mut cfg = Server::config().graph(4096, 8, 42);
    for t in 0..opts.tenants.max(1) {
        cfg = cfg.tenant(
            TenantSpec::new(format!("tenant{t}"))
                .threads(opts.threads)
                .queue_capacity(opts.concurrency.max(2))
                .default_deadline(opts.deadline)
                .faults(faults),
        );
    }
    let server = cfg.build();
    let tenants: Vec<usize> = (0..server.tenant_count()).collect();
    let workload = Workload::SumRange { n: 400_000 };

    // Phase 1: closed loop measures sustainable capacity.
    let closed = loadgen::run(
        &server,
        &LoadConfig {
            mode: Mode::Closed {
                concurrency: opts.concurrency,
            },
            duration: opts.duration,
            tenants: tenants.clone(),
            deadline: opts.deadline,
            workload,
            retry: Some(Backoff::default()),
        },
    );
    print_stats("closed", &closed);

    // Phase 2: open loop at ~2x measured capacity — the overload regime
    // where shedding (not queue collapse) must carry the server.
    let rps = opts
        .rps
        .unwrap_or_else(|| (closed.throughput_rps * 2.0).max(50.0));
    let open = loadgen::run(
        &server,
        &LoadConfig {
            mode: Mode::Open { rps },
            duration: opts.duration,
            tenants: tenants.clone(),
            deadline: opts.deadline,
            workload,
            retry: None,
        },
    );
    print_stats("open", &open);

    // Optional worker-thread sweep: closed-loop throughput per tenant
    // worker count, through the shared SweepGrid measurement loop.
    let sweep_json = opts.sweep.then(|| {
        let per_point = Duration::from_millis((opts.duration.as_millis() as u64 / 2).max(100));
        let mut grid = SweepGrid::new(
            format!("{} tenants, closed loop", opts.tenants.max(1)),
            "req/s",
            thread_ladder(opts.threads.max(2)),
        );
        grid.run("closed_rps", |t| {
            let mut cfg = Server::config().graph(4096, 8, 42);
            for k in 0..opts.tenants.max(1) {
                cfg = cfg.tenant(
                    TenantSpec::new(format!("tenant{k}"))
                        .threads(t)
                        .queue_capacity(opts.concurrency.max(2))
                        .default_deadline(opts.deadline),
                );
            }
            let server = cfg.build();
            let tenants: Vec<usize> = (0..server.tenant_count()).collect();
            loadgen::run(
                &server,
                &LoadConfig {
                    mode: Mode::Closed {
                        concurrency: opts.concurrency,
                    },
                    duration: per_point,
                    tenants,
                    deadline: opts.deadline,
                    workload,
                    retry: Some(Backoff::default()),
                },
            )
            .throughput_rps
        });
        grid.print_table();
        grid.to_json()
    });

    let delta = obs::snapshot().since(&before);
    obs::set_metrics(false);
    let mut fields = vec![
        (
            "workload".to_owned(),
            Json::Str("sum_range_400k".to_owned()),
        ),
        (
            "tenants".to_owned(),
            Json::Num(server.tenant_count() as f64),
        ),
        ("open_rps_offered".to_owned(), Json::Num(rps)),
        ("closed".to_owned(), stats_json(&closed)),
        ("open".to_owned(), stats_json(&open)),
        ("metrics".to_owned(), metrics_json(&delta)),
    ];
    if let Some(sweep) = sweep_json {
        fields.push(("thread_sweep".to_owned(), sweep));
    }
    let report = Json::Obj(fields);
    std::fs::write("BENCH_serve.json", report.pretty()).expect("write BENCH_serve.json");
    println!("(wrote BENCH_serve.json)");

    let consistent = closed.counters_consistent() && open.counters_consistent();
    if closed.completed == 0 || !consistent {
        eprintln!(
            "FAILED: completed={} consistent={consistent}",
            closed.completed
        );
        std::process::exit(1);
    }
}
