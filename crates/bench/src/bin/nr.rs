//! Contention crossover bench for `aomp::nr`: the same shared counter
//! driven through flat-combining node replication (`Replicated<T>`),
//! the paper's single named lock (`critical_named`), and the
//! thread-local `@Reduce` pattern, swept across team sizes — plus the
//! simcore NUMA curve (`Step::NrCritical` vs `Step::Critical` on the
//! modelled Xeon) and the unarmed-hook cost of the replicated fast
//! path. Writes `BENCH_nr.json`.
//!
//! The expected shape, and what CI validates: uncontended the plain
//! lock wins (the NR protocol pays a slot round-trip per op), and past
//! a measured thread-count crossover the replicated structure wins —
//! the lock's handoff storm grows with the team while the combiner
//! batches. `Reduce` is the upper bound where commutativity allows it.
//!
//! ```text
//! nr [--ops N]   (or AOMP_NR_BENCH_OPS=N; default 100000)
//! ```

use aomp::nr::{Dispatch, Replicated};
use aomp::prelude::*;
use aomp_bench::{best_of_secs, host_threads, thread_ladder, SweepGrid};
use aomp_simcore::{Json, Machine, Program, Simulator, Step, ToJson};
use std::cell::UnsafeCell;

/// The replicated structure: a counter whose write op adds and returns
/// the new total (forcing a real response round-trip per op, like a
/// ticket or stats update — not a fire-and-forget add).
#[derive(Clone)]
struct Count(u64);

#[derive(Clone, Debug)]
struct Add(u64);

impl Dispatch for Count {
    type ReadOp = ();
    type WriteOp = Add;
    type Response = u64;

    fn dispatch(&self, _op: &()) -> u64 {
        self.0
    }

    fn dispatch_mut(&mut self, op: &Add) -> u64 {
        self.0 += op.0;
        self.0
    }
}

/// The single-lock reference: a plain cell only ever touched inside
/// `critical_named`.
struct LockCell(UnsafeCell<u64>);
// SAFETY: every access goes through the process-wide named lock below.
unsafe impl Sync for LockCell {}

impl LockCell {
    /// Increment and return the new total. Caller must hold the lock.
    /// (A method, not inline field access: closures would otherwise
    /// capture the non-`Sync` `UnsafeCell` field under edition-2021
    /// precise capture.)
    unsafe fn bump(&self) -> u64 {
        let p = self.0.get();
        unsafe {
            *p += 1;
            *p
        }
    }

    fn get(&self) -> u64 {
        unsafe { *self.0.get() }
    }
}

fn per_thread(total: usize, t: usize) -> usize {
    total.div_ceil(t)
}

/// ops/µs of the replicated counter at team size `t`.
fn run_replicated(total: usize, t: usize) -> f64 {
    let n = per_thread(total, t);
    let secs = best_of_secs(2, || {
        let repl = Replicated::new(Count(0));
        region::parallel_with(RegionConfig::new().threads(t), || {
            for _ in 0..n {
                std::hint::black_box(repl.execute(Add(1)));
            }
        });
        assert_eq!(repl.execute_ro(&()), (n * t) as u64);
    });
    (n * t) as f64 / (secs * 1e6)
}

/// ops/µs of the same counter behind one named lock.
fn run_lock(total: usize, t: usize) -> f64 {
    let n = per_thread(total, t);
    let secs = best_of_secs(2, || {
        let cell = LockCell(UnsafeCell::new(0));
        region::parallel_with(RegionConfig::new().threads(t), || {
            for _ in 0..n {
                let v = critical_named("bench.nr.lock", || unsafe { cell.bump() });
                std::hint::black_box(v);
            }
        });
        assert_eq!(cell.get(), (n * t) as u64);
    });
    (n * t) as f64 / (secs * 1e6)
}

/// ops/µs of the thread-local `@Reduce` pattern — the commutative upper
/// bound (no response per op, one merge at the end).
fn run_reduce(total: usize, t: usize) -> f64 {
    let n = per_thread(total, t);
    let secs = best_of_secs(2, || {
        let field = ThreadLocalField::new(0u64);
        region::parallel_with(RegionConfig::new().threads(t), || {
            for _ in 0..n {
                field.update_or_init(|| 0, |v| *v += 1);
            }
        });
        field.reduce(&SumReducer);
        assert_eq!(field.with_global(|v| *v), (n * t) as u64);
    });
    (n * t) as f64 / (secs * 1e6)
}

/// Mean ns per `Replicated::execute` on a lone thread with no checker
/// armed — the unarmed-hook fast path a release build actually pays.
fn unarmed_execute_ns(ops: usize) -> f64 {
    let repl = Replicated::new(Count(0));
    let secs = best_of_secs(3, || {
        for _ in 0..ops {
            std::hint::black_box(repl.execute(Add(1)));
        }
    });
    secs * 1e9 / ops as f64
}

/// The simcore side of the crossover: modelled ops/µs of the same
/// contended phase on the dual-socket Xeon, one lock vs NR.
fn simulated_grid() -> SweepGrid {
    let m = Machine::xeon();
    let sim = Simulator::new(m.clone());
    let entries = 2e5;
    let phase = |step: Step| Program::new("contended", vec![step]);
    let lock = phase(Step::Critical {
        entries,
        ops_each: 10.0,
        overlap_ops: 0.0,
        bytes: 0.0,
    });
    let nr = phase(Step::NrCritical {
        entries,
        ops_each: 10.0,
        overlap_ops: 0.0,
        bytes: 0.0,
    });
    let mut grid = SweepGrid::new(m.name.clone(), "ops/us", (1..=m.hw_threads).collect());
    grid.run("replicated", |t| entries * 10.0 / sim.run(&nr, t));
    grid.run("critical_named", |t| entries * 10.0 / sim.run(&lock, t));
    grid
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("AOMP_NR_BENCH_OPS").ok())
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1000)
        .unwrap_or(100_000);

    // Sweep past the core count on purpose: oversubscription is where a
    // single contended lock degrades hardest (handoff + scheduler
    // storms) while the combiner keeps batching.
    let max_t = host_threads().max(8);
    let mut measured = SweepGrid::new(
        format!("this host ({} hw threads)", host_threads()),
        "ops/us",
        thread_ladder(max_t),
    );
    measured.run("replicated", |t| run_replicated(ops, t));
    measured.run("critical_named", |t| run_lock(ops, t));
    measured.run("reduce", |t| run_reduce(ops, t));
    measured.print_table();

    let crossover = measured.crossover("replicated", "critical_named");
    match crossover {
        Some(t) => println!("measured crossover: replicated >= critical_named from t={t}\n"),
        None => println!("measured crossover: none on this host\n"),
    }

    let simulated = simulated_grid();
    simulated.print_table();
    let sim_crossover = simulated.crossover("replicated", "critical_named");
    println!(
        "simulated crossover (Xeon model): t={}\n",
        sim_crossover.map_or("none".to_owned(), |t| t.to_string())
    );

    let fast_path_ns = unarmed_execute_ns(ops.min(50_000));
    println!("unarmed replicated fast path: {fast_path_ns:.0} ns/op\n");

    let num = |v: Option<usize>| v.map_or(Json::Null, |t| Json::Num(t as f64));
    let report = Json::Obj(vec![
        ("ops_total".to_owned(), Json::Num(ops as f64)),
        ("measured".to_owned(), measured.to_json()),
        ("measured_crossover_threads".to_owned(), num(crossover)),
        ("simulated".to_owned(), simulated.to_json()),
        ("simulated_crossover_threads".to_owned(), num(sim_crossover)),
        ("unarmed_execute_ns".to_owned(), Json::Num(fast_path_ns)),
    ]);
    std::fs::write("BENCH_nr.json", report.pretty()).expect("write BENCH_nr.json");
    println!("(wrote BENCH_nr.json)");
}
