//! Thread-sweep curves: simulated speed-up of every JGF benchmark for
//! each thread count 1..=hw_threads on both machine models — a
//! continuous version of Figure 13's two bar groups, useful for seeing
//! where each kernel saturates (SMT knee, memory roofline, barrier
//! overhead).
//!
//! `--json <path>` writes the full grid; `--event` uses the per-thread
//! event executor instead of the bulk-synchronous one (the two agree on
//! these barrier-separated models; the option exists for cross-checking).

use aomp_bench::{json_arg, write_json};
use aomp_simcore::models::{self, MolDynStrategy};
use aomp_simcore::{EventSimulator, Json, Machine, Program, Simulator, ToJson};

struct SweepPoint {
    machine: String,
    benchmark: String,
    threads: usize,
    speedup: f64,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("machine".to_owned(), Json::Str(self.machine.clone())),
            ("benchmark".to_owned(), Json::Str(self.benchmark.clone())),
            ("threads".to_owned(), Json::Num(self.threads as f64)),
            ("speedup".to_owned(), Json::Num(self.speedup)),
        ])
    }
}

fn benchmarks() -> Vec<(&'static str, Program)> {
    vec![
        ("Crypt", models::crypt(20_000_000, false)),
        ("LUFact", models::lufact(1000, false)),
        ("Series", models::series(10_000, false)),
        ("SOR", models::sor(1000, 100, false)),
        ("Sparse", models::sparse(500_000, 200, false)),
        ("MonteCarlo", models::montecarlo(60_000, false)),
        ("RayTracer", models::raytracer(500, false)),
    ]
}

fn main() {
    let use_event = std::env::args().any(|a| a == "--event");
    let mut points = Vec::new();
    for machine in [Machine::i7(), Machine::xeon()] {
        println!(
            "== {} ({}) ==",
            machine.name,
            if use_event {
                "event executor"
            } else {
                "bulk-sync executor"
            }
        );
        print!("{:<12}", "threads");
        for t in 1..=machine.hw_threads {
            print!("{t:>6}");
        }
        println!();
        let run = |p: &Program, t: usize| -> f64 {
            if use_event {
                EventSimulator::new(machine.clone()).speedup(p, t)
            } else {
                Simulator::new(machine.clone()).speedup(p, t)
            }
        };
        for (name, p) in benchmarks() {
            print!("{name:<12}");
            for t in 1..=machine.hw_threads {
                let su = run(&p, t);
                print!("{su:>6.2}");
                points.push(SweepPoint {
                    machine: machine.name.clone(),
                    benchmark: name.to_owned(),
                    threads: t,
                    speedup: su,
                });
            }
            println!();
        }
        // MolDyn is thread-aware: rebuild the model per thread count.
        print!("{:<12}", "MolDyn");
        for t in 1..=machine.hw_threads {
            let base = Simulator::new(machine.clone()).run(
                &models::moldyn(8788, 50, 1, MolDynStrategy::ThreadLocal, &machine, false),
                1,
            );
            let this = Simulator::new(machine.clone()).run(
                &models::moldyn(8788, 50, t, MolDynStrategy::ThreadLocal, &machine, false),
                t,
            );
            let su = base / this;
            print!("{su:>6.2}");
            points.push(SweepPoint {
                machine: machine.name.clone(),
                benchmark: "MolDyn".to_owned(),
                threads: t,
                speedup: su,
            });
        }
        println!("\n");
    }
    if let Some(path) = json_arg() {
        write_json(&path, &points).expect("write sweep json");
        println!("(wrote {path})");
    }
}
