//! Thread-sweep curves: simulated speed-up of every JGF benchmark for
//! each thread count 1..=hw_threads on both machine models — a
//! continuous version of Figure 13's two bar groups, useful for seeing
//! where each kernel saturates (SMT knee, memory roofline, barrier
//! overhead).
//!
//! `--json <path>` writes the full grid; `--event` uses the per-thread
//! event executor instead of the bulk-synchronous one (the two agree on
//! these barrier-separated models; the option exists for cross-checking).

use aomp_bench::{json_arg, write_json, SweepGrid};
use aomp_simcore::models::{self, MolDynStrategy};
use aomp_simcore::{EventSimulator, Machine, Program, Simulator};

fn benchmarks() -> Vec<(&'static str, Program)> {
    vec![
        ("Crypt", models::crypt(20_000_000, false)),
        ("LUFact", models::lufact(1000, false)),
        ("Series", models::series(10_000, false)),
        ("SOR", models::sor(1000, 100, false)),
        ("Sparse", models::sparse(500_000, 200, false)),
        ("MonteCarlo", models::montecarlo(60_000, false)),
        ("RayTracer", models::raytracer(500, false)),
    ]
}

fn main() {
    let use_event = std::env::args().any(|a| a == "--event");
    let mut grids = Vec::new();
    for machine in [Machine::i7(), Machine::xeon()] {
        let label = format!(
            "{} ({})",
            machine.name,
            if use_event {
                "event executor"
            } else {
                "bulk-sync executor"
            }
        );
        let mut grid = SweepGrid::new(label, "speedup", (1..=machine.hw_threads).collect());
        let run = |p: &Program, t: usize| -> f64 {
            if use_event {
                EventSimulator::new(machine.clone()).speedup(p, t)
            } else {
                Simulator::new(machine.clone()).speedup(p, t)
            }
        };
        for (name, p) in benchmarks() {
            grid.run(name, |t| run(&p, t));
        }
        // MolDyn is thread-aware: rebuild the model per thread count.
        grid.run("MolDyn", |t| {
            let base = Simulator::new(machine.clone()).run(
                &models::moldyn(8788, 50, 1, MolDynStrategy::ThreadLocal, &machine, false),
                1,
            );
            let this = Simulator::new(machine.clone()).run(
                &models::moldyn(8788, 50, t, MolDynStrategy::ThreadLocal, &machine, false),
                t,
            );
            base / this
        });
        grid.print_table();
        grids.push(grid);
    }
    if let Some(path) = json_arg() {
        write_json(&path, &grids).expect("write sweep json");
        println!("(wrote {path})");
    }
}
