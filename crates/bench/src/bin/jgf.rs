//! A command-line runner for the JGF suite: pick a benchmark, variant,
//! size and thread count; the tool runs it, validates the result and
//! prints the wall time.
//!
//! ```text
//! jgf <benchmark> [--variant seq|mt|aomp] [--size small|A|B] [--threads N]
//! jgf all         # run every benchmark's aomp variant at size small
//! ```
//!
//! Every run also records an `aomp::obs` metrics delta and writes the
//! per-benchmark timings plus the runtime counters to `BENCH_jgf.json`.
//! Set `AOMP_TRACE=out.json` to additionally export a chrome://tracing
//! timeline of the run.

use aomp::obs;
use aomp_bench::metrics_json;
use aomp_jgf::harness::timed;
use aomp_jgf::Size;
use aomp_simcore::Json;

fn usage() -> ! {
    eprintln!(
        "usage: jgf <crypt|lufact|series|sor|sparse|moldyn|montecarlo|raytracer|all>\n\
         \x20      [--variant seq|mt|aomp] [--size small|A|B] [--threads N]"
    );
    std::process::exit(2)
}

struct Opts {
    benchmark: String,
    variant: String,
    size: Size,
    threads: usize,
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts {
        benchmark: args[0].clone(),
        variant: "aomp".into(),
        size: Size::Small,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--variant" => {
                opts.variant = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--size" => {
                opts.size = match args.get(i + 1).map(String::as_str) {
                    Some("small") => Size::Small,
                    Some("A") | Some("a") => Size::A,
                    Some("B") | Some("b") => Size::B,
                    _ => usage(),
                };
                i += 2;
            }
            "--threads" => {
                opts.threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    opts
}

/// Run one benchmark; returns (validated, seconds).
fn run_one(name: &str, variant: &str, size: Size, threads: usize) -> (bool, f64) {
    match name {
        "crypt" => {
            let d = aomp_jgf::crypt::generate(size);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::crypt::seq::run(&d)),
                "mt" => timed(|| aomp_jgf::crypt::mt::run(&d, threads)),
                _ => timed(|| aomp_jgf::crypt::aomp::run(&d, threads)),
            };
            (aomp_jgf::crypt::validate(&d, &r), t.as_secs_f64())
        }
        "lufact" => {
            let d = aomp_jgf::lufact::generate(size);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::lufact::seq::run(&d)),
                "mt" => timed(|| aomp_jgf::lufact::mt::run(&d, threads)),
                _ => timed(|| aomp_jgf::lufact::aomp::run(&d, threads)),
            };
            (aomp_jgf::lufact::validate(&d, &r), t.as_secs_f64())
        }
        "series" => {
            let n = aomp_jgf::series::coefficients_for(size);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::series::seq::run(n)),
                "mt" => timed(|| aomp_jgf::series::mt::run(n, threads)),
                _ => timed(|| aomp_jgf::series::aomp::run(n, threads)),
            };
            (aomp_jgf::series::validate(&r), t.as_secs_f64())
        }
        "sor" => {
            let g = aomp_jgf::sor::generate(size);
            let iters = aomp_jgf::sor::ITERATIONS;
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::sor::seq::run(&g, iters)),
                "mt" => timed(|| aomp_jgf::sor::mt::run(&g, iters, threads)),
                _ => timed(|| aomp_jgf::sor::aomp::run(&g, iters, threads)),
            };
            (aomp_jgf::sor::validate(&r), t.as_secs_f64())
        }
        "sparse" => {
            let d = aomp_jgf::sparse::generate(size);
            let iters = aomp_jgf::sparse::ITERATIONS;
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::sparse::seq::run(&d, iters)),
                "mt" => timed(|| aomp_jgf::sparse::mt::run(&d, iters, threads)),
                _ => timed(|| aomp_jgf::sparse::aomp::run(&d, iters, threads)),
            };
            (aomp_jgf::sparse::ytotal(&r).is_finite(), t.as_secs_f64())
        }
        "moldyn" => {
            let d = aomp_jgf::moldyn::generate(aomp_jgf::moldyn::mm_for(size), 10);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::moldyn::seq::run(&d)),
                "mt" => timed(|| aomp_jgf::moldyn::mt::run(&d, threads)),
                "critical" => timed(|| aomp_jgf::moldyn::variants::run_critical(&d, threads)),
                "locks" => timed(|| aomp_jgf::moldyn::variants::run_locks(&d, threads)),
                _ => timed(|| aomp_jgf::moldyn::aomp::run(&d, threads)),
            };
            (aomp_jgf::moldyn::validate(&r), t.as_secs_f64())
        }
        "montecarlo" => {
            let d = aomp_jgf::montecarlo::generate(size);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::montecarlo::seq::run(&d)),
                "mt" => timed(|| aomp_jgf::montecarlo::mt::run(&d, threads)),
                "tasks" => timed(|| aomp_jgf::montecarlo::tasks::run(&d)),
                _ => timed(|| aomp_jgf::montecarlo::aomp::run(&d, threads)),
            };
            (aomp_jgf::montecarlo::validate(&d, &r), t.as_secs_f64())
        }
        "raytracer" => {
            let s = aomp_jgf::raytracer::generate(size);
            let (r, t) = match variant {
                "seq" => timed(|| aomp_jgf::raytracer::seq::run(&s)),
                "mt" => timed(|| aomp_jgf::raytracer::mt::run(&s, threads)),
                _ => timed(|| aomp_jgf::raytracer::aomp::run(&s, threads)),
            };
            (aomp_jgf::raytracer::validate(&s, &r), t.as_secs_f64())
        }
        _ => usage(),
    }
}

const ALL: [&str; 8] = [
    "crypt",
    "lufact",
    "series",
    "sor",
    "sparse",
    "moldyn",
    "montecarlo",
    "raytracer",
];

fn main() {
    let opts = parse_args();
    let names: Vec<&str> = if opts.benchmark == "all" {
        ALL.to_vec()
    } else {
        vec![opts.benchmark.as_str()]
    };
    obs::set_metrics(true);
    let before = obs::snapshot();
    let mut failed = false;
    let mut rows = Vec::new();
    for name in names {
        let (ok, secs) = run_one(name, &opts.variant, opts.size, opts.threads);
        println!(
            "{name:<12} variant={:<6} size={:<5} threads={:<2}  {:>9.1} ms  valid={ok}",
            opts.variant,
            opts.size.name(),
            opts.threads,
            secs * 1e3
        );
        rows.push(Json::Obj(vec![
            ("benchmark".to_owned(), Json::Str(name.to_owned())),
            ("variant".to_owned(), Json::Str(opts.variant.clone())),
            ("size".to_owned(), Json::Str(opts.size.name().to_owned())),
            ("threads".to_owned(), Json::Num(opts.threads as f64)),
            ("ms".to_owned(), Json::Num(secs * 1e3)),
            ("valid".to_owned(), Json::Bool(ok)),
        ]));
        failed |= !ok;
    }
    let delta = obs::snapshot().since(&before);
    obs::set_metrics(false);
    let report = Json::Obj(vec![
        ("runs".to_owned(), Json::Arr(rows)),
        ("metrics".to_owned(), metrics_json(&delta)),
    ]);
    std::fs::write("BENCH_jgf.json", report.pretty()).expect("write BENCH_jgf.json");
    println!("(wrote BENCH_jgf.json)");
    let trace_path = obs::trace::env_path();
    match obs::trace::flush_env() {
        Ok(0) => {}
        Ok(n) => println!(
            "(wrote {n} trace events to {})",
            trace_path.as_deref().unwrap_or("?")
        ),
        Err(e) => eprintln!("trace export failed: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
