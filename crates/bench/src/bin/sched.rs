//! Schedule skew sweep for the adaptive dispenser
//! (`Schedule::Adaptive`): triangle counting on a power-law (skewed)
//! and a uniform graph across every `TriSchedule` ablation point —
//! measured on this host, plus the simcore Xeon grid where the
//! block / degree-balanced / adaptive ordering is a deterministic
//! function of the generated graphs' true per-vertex merge costs.
//! Writes `BENCH_sched.json`.
//!
//! The expected shape, and what CI validates: on the skewed input the
//! static block schedule collapses (the cheap-to-predict deg²+1 model
//! under the hand-tuned `DegreeBalanced` custom aspect recovers most of
//! it, but mis-predicts the true merge cost and cannot split below
//! vertex granularity), while the adaptive dispenser self-refines to
//! the measured balance and wins; on the uniform input adaptive stays
//! within noise of static block — refinement never triggers, so the
//! only cost is a logarithmic number of handouts.
//!
//! ```text
//! sched [--n N] [--deg D]   (or AOMP_SCHED_BENCH_N; defaults 20000, 16)
//! ```

use aomp::obs;
use aomp_bench::{best_of_secs, host_threads, metrics_json, thread_ladder, SweepGrid};
use aomp_irregular::triangles::{
    aspect, count_oriented, orient, DegreeBalancedSchedule, TriSchedule,
};
use aomp_irregular::{CsrGraph, GraphKind};
use aomp_simcore::{Json, Machine, Program, Simulator, Step, ToJson};
use aomp_weaver::Weaver;

/// `min_chunk` the `TriSchedule::Adaptive` aspect binds — the simulated
/// grid must model the same refinement floor the measured runs use.
const MIN_CHUNK: f64 = 16.0;

/// Machine ops per body invocation (call, hook gate, loop framing).
/// Contiguous schedules invoke the body once per multi-iteration chunk,
/// so this vanishes for them; static cyclic's assignments are
/// non-contiguous, so it pays this once per *iteration* (~11 ns on the
/// modelled Xeon).
const CALL_OPS: f64 = 30.0;

/// True merge-loop steps charged to vertex `v` of the oriented graph:
/// the sorted intersection over out-neighbour pairs walks at most
/// `deg(v)·(deg(v)−1)/2 + Σ_{u∈N(v)} deg(u)` elements. This is the cost
/// the adaptive dispenser observes — and what the `DegreeBalanced`
/// aspect's deg²+1 proxy only approximates.
fn vertex_cost(g: &CsrGraph, v: usize) -> u64 {
    let d = g.degree(v) as u64;
    let neigh: u64 = g
        .neighbours(v)
        .iter()
        .map(|&u| g.degree(u as usize) as u64)
        .sum();
    d * d.saturating_sub(1) / 2 + neigh
}

/// Max-over-average load of a vertex partition under the true costs.
fn imbalance(shares: &[u64], total: u64) -> f64 {
    let t = shares.len() as f64;
    let max = shares.iter().copied().max().unwrap_or(0) as f64;
    if total == 0 {
        1.0
    } else {
        (max * t / total as f64).max(1.0)
    }
}

/// Imbalance of the static block partition (what the adaptive dispenser
/// is seeded with) at team size `t`.
fn block_imbalance(costs: &[u64], total: u64, t: usize) -> f64 {
    let chunk = costs.len().div_ceil(t);
    let shares: Vec<u64> = (0..t)
        .map(|tid| {
            let lo = (tid * chunk).min(costs.len());
            let hi = ((tid + 1) * chunk).min(costs.len());
            costs[lo..hi].iter().sum()
        })
        .collect();
    imbalance(&shares, total)
}

/// Imbalance of the static cyclic partition at team size `t`.
fn cyclic_imbalance(costs: &[u64], total: u64, t: usize) -> f64 {
    let mut shares = vec![0u64; t];
    for (v, &c) in costs.iter().enumerate() {
        shares[v % t] += c;
    }
    imbalance(&shares, total)
}

/// Imbalance of the `DegreeBalanced` custom aspect at team size `t`,
/// charged at the *true* merge costs (its deg²+1 split is only a model).
fn degree_balanced_imbalance(
    cs: &DegreeBalancedSchedule,
    costs: &[u64],
    total: u64,
    t: usize,
) -> f64 {
    let shares: Vec<u64> = (0..t)
        .map(|tid| {
            let (lo, hi) = cs.range(tid, t);
            costs[lo..hi].iter().sum()
        })
        .collect();
    imbalance(&shares, total)
}

/// Handouts per thread once the dispenser runs hot: splitting `rem/8`
/// off a block of `block` iterations reaches the `MIN_CHUNK` floor
/// after ~log_{8/7}(block/min) steps — the chunk count the simulated
/// `AdaptiveChunk` step charges for dispensing and residual imbalance.
fn adaptive_chunks_per_thread(n: usize, t: usize) -> f64 {
    let block = (n.div_ceil(t) as f64).max(MIN_CHUNK);
    ((block / MIN_CHUNK).ln() / (8.0f64 / 7.0).ln()).max(1.0)
}

/// The simcore side: modelled merge-steps/µs of the counting loop on
/// the dual-socket Xeon, with every imbalance parameter computed from
/// the actual generated graph (nothing hand-picked but the 4 ops/step
/// scale, which cancels in the ordering).
fn simulated_grid(label: &str, oriented: &CsrGraph, costs: &[u64]) -> SweepGrid {
    let m = Machine::xeon();
    let sim = Simulator::new(m.clone());
    let total: u64 = costs.iter().sum();
    let ops = total as f64 * 4.0;
    let n = oriented.vertices();
    let cs = DegreeBalancedSchedule::new(oriented);
    let phase = |step: Step| Program::new("count", vec![step]);
    let steps_per_us = move |p: &Program, t: usize| total as f64 / sim.run(p, t);

    let mut grid = SweepGrid::new(label.to_owned(), "steps/us", (1..=m.hw_threads).collect());
    grid.run("block", |t| {
        let p = phase(Step::Parallel {
            ops,
            bytes: 0.0,
            imbalance: block_imbalance(costs, total, t),
        });
        steps_per_us(&p, t)
    });
    grid.run("cyclic", |t| {
        let p = phase(Step::Parallel {
            // One body invocation per iteration, not per chunk.
            ops: ops + n as f64 * CALL_OPS,
            bytes: 0.0,
            imbalance: cyclic_imbalance(costs, total, t),
        });
        steps_per_us(&p, t)
    });
    grid.run("degree-balanced (CS)", |t| {
        let p = phase(Step::Parallel {
            ops,
            bytes: 0.0,
            imbalance: degree_balanced_imbalance(&cs, costs, total, t),
        });
        steps_per_us(&p, t)
    });
    grid.run("adaptive", |t| {
        let p = phase(Step::AdaptiveChunk {
            ops,
            bytes: 0.0,
            // Seeded exactly like static block; refinement grinds the
            // seed imbalance down by the chunk count.
            imbalance: block_imbalance(costs, total, t),
            chunks_per_thread: adaptive_chunks_per_thread(n, t),
        });
        steps_per_us(&p, t)
    });
    grid
}

/// Measured merge-steps/µs of one schedule at team size `t`, asserting
/// the count against the unwoven sequential run every repetition.
fn run_measured(
    oriented: &CsrGraph,
    expect: u64,
    total_steps: u64,
    sched: TriSchedule,
    t: usize,
) -> f64 {
    let secs = best_of_secs(2, || {
        let got =
            Weaver::global().with_deployed(aspect(t, sched, oriented), || count_oriented(oriented));
        assert_eq!(got, expect, "{} t={t} miscounted", sched.name());
    });
    total_steps as f64 / (secs * 1e6)
}

fn measured_grid(label: &str, oriented: &CsrGraph, expect: u64, total_steps: u64) -> SweepGrid {
    let mut grid = SweepGrid::new(
        format!("{label} on this host ({} hw threads)", host_threads()),
        "steps/us",
        thread_ladder(host_threads().max(4)),
    );
    for sched in TriSchedule::ALL {
        grid.run(sched.name(), |t| {
            run_measured(oriented, expect, total_steps, sched, t)
        });
    }
    grid
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.trim().parse::<usize>().ok())
    };
    let n = flag("--n")
        .or_else(|| {
            std::env::var("AOMP_SCHED_BENCH_N")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .filter(|&n| n >= 100)
        .unwrap_or(20_000);
    let deg = flag("--deg").filter(|&d| d >= 2).unwrap_or(16);

    let mut sections = Vec::new();
    let mut metrics = Json::Null;
    for (kind, key) in [
        (GraphKind::PowerLaw, "skewed"),
        (GraphKind::Uniform, "uniform"),
    ] {
        let oriented = orient(&CsrGraph::generate(kind, n, deg, 42));
        let costs: Vec<u64> = (0..oriented.vertices())
            .map(|v| vertex_cost(&oriented, v))
            .collect();
        let total: u64 = costs.iter().sum();
        let expect = count_oriented(&oriented);
        println!(
            "== {key}: {} vertices, {} oriented edges, {total} merge steps, {expect} triangles ==\n",
            oriented.vertices(),
            oriented.edges()
        );

        let measured = measured_grid(key, &oriented, expect, total);
        measured.print_table();

        // One metrics-armed adaptive run on the skewed input, proving
        // the dispenser actually refines and steals on this host.
        if kind == GraphKind::PowerLaw {
            obs::set_metrics(true);
            let before = obs::snapshot();
            Weaver::global().with_deployed(aspect(4, TriSchedule::Adaptive, &oriented), || {
                count_oriented(&oriented)
            });
            let delta = obs::snapshot().since(&before);
            obs::set_metrics(false);
            println!(
                "adaptive handouts: {} chunks, {} steals\n",
                delta.counter(obs::Counter::ChunkAdaptive),
                delta.counter(obs::Counter::ChunkAdaptiveSteals),
            );
            metrics = metrics_json(&delta);
        }

        let simulated = simulated_grid(&format!("{key} on the Xeon model"), &oriented, &costs);
        simulated.print_table();

        let t12 = 12usize;
        sections.push((
            key.to_owned(),
            Json::Obj(vec![
                ("measured".to_owned(), measured.to_json()),
                ("simulated".to_owned(), simulated.to_json()),
                (
                    "block_imbalance_t12".to_owned(),
                    Json::Num(block_imbalance(&costs, total, t12)),
                ),
                (
                    "degree_balanced_imbalance_t12".to_owned(),
                    Json::Num(degree_balanced_imbalance(
                        &DegreeBalancedSchedule::new(&oriented),
                        &costs,
                        total,
                        t12,
                    )),
                ),
                ("merge_steps_total".to_owned(), Json::Num(total as f64)),
            ]),
        ));
    }

    let mut report = vec![
        ("vertices".to_owned(), Json::Num(n as f64)),
        ("avg_degree".to_owned(), Json::Num(deg as f64)),
    ];
    report.extend(sections);
    report.push(("metrics".to_owned(), metrics));
    std::fs::write("BENCH_sched.json", Json::Obj(report).pretty()).expect("write BENCH_sched.json");
    println!("(wrote BENCH_sched.json)");
}
