//! Regenerates paper Table 2 ("Refactoring and abstractions used") from
//! the metadata each AOmp benchmark implementation registers, and checks
//! it against the published rows.

use aomp_jgf::meta::all_benchmarks;

/// The paper's Table 2, row for row (benchmark, refactorings,
/// abstractions).
const PAPER: [(&str, &str, &str); 8] = [
    ("Crypt", "M2FOR, M2M", "PR, FOR (block)"),
    ("LUFact", "M2FOR, M2M", "PR, FOR (block), 4xBR, 2xMA"),
    ("Series", "M2FOR, M2M", "PR, FOR (block)"),
    ("SOR", "M2FOR, M2M", "PR, FOR (block), BR"),
    ("Sparse", "M2FOR, M2M", "PR, FOR (Case Specific), CS"),
    ("MolDyn", "M2FOR, 3xM2M", "PR, FOR (cyclic), 2xTLF"),
    ("MonteCarlo", "M2FOR, M2M", "PR, FOR (cyclic)"),
    ("RayTracer", "M2FOR", "PR, FOR (cyclic), TLF"),
];

fn main() {
    println!("Table 2: Refactoring and abstractions used\n");
    println!("{:<12} {:<16} Abstractions", "", "Refactorings");
    let rows = all_benchmarks();
    let mut mismatches = 0;
    for meta in &rows {
        let refs = meta.refactorings_column();
        let abs = meta.abstractions_column();
        println!("{:<12} {:<16} {}", meta.name, refs, abs);
        let expected = PAPER.iter().find(|(n, _, _)| *n == meta.name);
        match expected {
            Some((_, er, ea)) => {
                if &refs != er || &abs != ea {
                    mismatches += 1;
                    eprintln!("  MISMATCH vs paper: expected `{er}` / `{ea}`");
                }
            }
            None => {
                mismatches += 1;
                eprintln!("  benchmark {} not in the paper's table", meta.name);
            }
        }
    }
    println!();
    if mismatches == 0 {
        println!("All {} rows match the paper's Table 2.", rows.len());
    } else {
        println!("{mismatches} rows deviate from the paper's Table 2.");
        std::process::exit(1);
    }
}
