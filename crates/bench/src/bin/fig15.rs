//! Regenerates paper Figure 15: performance of the MolDyn
//! parallelisation variants — force updates under a global critical
//! section, one lock per particle, and the JGF thread-local arrays — for
//! the paper's particle counts at 4 and 12 threads (Xeon model).
//!
//! With `--measure` it also times the real Rust variants on this host at
//! a reduced size (relative ordering only; absolute speed-up is not
//! observable on a single-core container).

use aomp_bench::{bar, fig15_series, json_arg, write_json, FIG15_SIZES, FIG15_THREADS};
use aomp_jgf::harness::timed;

fn label(n: usize) -> String {
    if n >= 1000 && n.is_multiple_of(1000) {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");

    println!("Figure 15: Performance of different JGF MolDyn parallelisations");
    println!("(virtual-time simulation of the Xeon model; see DESIGN.md §5)\n");
    let rows = fig15_series();
    for &t in &FIG15_THREADS {
        println!("== {t} threads ==");
        for variant in ["Critical", "Locks"] {
            for &n in &FIG15_SIZES {
                let r = rows
                    .iter()
                    .find(|r| r.variant == variant && r.particles == n && r.threads == t)
                    .expect("series row");
                println!(
                    "{variant:<9} {:>7}  {:>6.2}  {}",
                    label(n),
                    r.speedup,
                    bar(r.speedup, 6.0)
                );
            }
        }
        let jgf = rows
            .iter()
            .find(|r| r.variant == "JGF" && r.threads == t)
            .expect("jgf row");
        println!(
            "{:<9} {:>7}  {:>6.2}  {}",
            "JGF",
            label(jgf.particles),
            jgf.speedup,
            bar(jgf.speedup, 6.0)
        );
        println!();
    }

    if let Some(path) = json_arg() {
        write_json(&path, &rows).expect("write fig15 json");
        println!("(wrote {path})\n");
    }

    if measure {
        measure_variants();
    } else {
        println!("(run with --measure to also time the real variants on this host)");
    }
}

fn measure_variants() {
    let t = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    println!("== Measured on this host ({t} threads, 10 moves; per-variant overhead ordering) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "particles", "thread-local", "critical", "locks"
    );
    for mm in [4usize, 6] {
        let d = aomp_jgf::moldyn::generate(mm, 10);
        // Interleaved best-of-2 per variant to tame container noise.
        let mut best = [f64::INFINITY; 3];
        for _ in 0..2 {
            best[0] = best[0].min(timed(|| aomp_jgf::moldyn::mt::run(&d, t)).1.as_secs_f64());
            best[1] = best[1].min(
                timed(|| aomp_jgf::moldyn::variants::run_critical(&d, t))
                    .1
                    .as_secs_f64(),
            );
            best[2] = best[2].min(
                timed(|| aomp_jgf::moldyn::variants::run_locks(&d, t))
                    .1
                    .as_secs_f64(),
            );
        }
        println!(
            "{:<10} {:>11.1}ms {:>11.1}ms {:>11.1}ms",
            aomp_jgf::moldyn::particles(mm),
            best[0] * 1e3,
            best[1] * 1e3,
            best[2] * 1e3
        );
    }
}
