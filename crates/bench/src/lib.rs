//! # aomp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the AOmpLib paper's evaluation
//! section (§V):
//!
//! * **Figure 13** (`cargo run -p aomp-bench --bin fig13 --release`) —
//!   speed-ups of the eight JGF benchmarks, JGF-MT vs AOmp, on the
//!   modelled i7 (8 threads) and Xeon (24 threads), plus the measured
//!   AOmp/JGF wall-time ratio on this host (the paper's <1 % claim).
//! * **Table 2** (`--bin table2`) — refactorings and abstractions per
//!   benchmark, assembled from the implementations' registered metadata.
//! * **Figure 15** (`--bin fig15`) — MolDyn parallelisation variants
//!   (Critical / Locks / JGF thread-local) across particle counts and
//!   thread counts.
//!
//! Criterion benches (`cargo bench -p aomp-bench`) measure the real
//! kernels on this host: `overhead_fig13` (JGF-MT vs AOmp pairs),
//! `moldyn_fig15` (the three variants) and `mechanisms` (per-construct
//! micro-costs).

#![warn(missing_docs)]

use aomp_simcore::models::{self, MolDynStrategy};
use aomp_simcore::{Json, Machine, Simulator, ToJson};

/// One Figure 13 bar group: benchmark × the two variants.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Speed-up of the hand-threaded JGF version.
    pub jgf: f64,
    /// Speed-up of the AOmp version.
    pub aomp: f64,
}

/// The per-benchmark simulated speed-ups for one machine at `t` threads
/// (Figure 13's two groups: i7 × 8 and Xeon × 24).
pub fn fig13_series(machine: &Machine, t: usize) -> Vec<Fig13Row> {
    let sim = Simulator::new(machine.clone());
    let mut rows = Vec::new();
    let mut push = |name: &'static str, jgf: aomp_simcore::Program, aomp: aomp_simcore::Program| {
        rows.push(Fig13Row {
            benchmark: name,
            jgf: sim.speedup(&jgf, t),
            aomp: sim.speedup(&aomp, t),
        });
    };
    push(
        "Crypt",
        models::crypt(20_000_000, false),
        models::crypt(20_000_000, true),
    );
    push(
        "LUFact",
        models::lufact(1000, false),
        models::lufact(1000, true),
    );
    push(
        "Series",
        models::series(10_000, false),
        models::series(10_000, true),
    );
    push(
        "SOR",
        models::sor(1000, 100, false),
        models::sor(1000, 100, true),
    );
    push(
        "Sparse",
        models::sparse(500_000, 200, false),
        models::sparse(500_000, 200, true),
    );
    push(
        "MonteCarlo",
        models::montecarlo(60_000, false),
        models::montecarlo(60_000, true),
    );
    push(
        "RayTracer",
        models::raytracer(500, false),
        models::raytracer(500, true),
    );
    #[allow(dropping_copy_types, clippy::drop_non_drop)]
    {
        drop(push);
    }
    // MolDyn's model is thread-aware (thread-local arrays), so its
    // speed-up is computed against the 1-thread model explicitly.
    let base = sim.run(
        &models::moldyn(8788, 50, 1, MolDynStrategy::ThreadLocal, machine, false),
        1,
    );
    let jgf = base
        / sim.run(
            &models::moldyn(8788, 50, t, MolDynStrategy::ThreadLocal, machine, false),
            t,
        );
    let base_a = sim.run(
        &models::moldyn(8788, 50, 1, MolDynStrategy::ThreadLocal, machine, true),
        1,
    );
    let aomp = base_a
        / sim.run(
            &models::moldyn(8788, 50, t, MolDynStrategy::ThreadLocal, machine, true),
            t,
        );
    rows.insert(
        5,
        Fig13Row {
            benchmark: "MolDyn",
            jgf,
            aomp,
        },
    );
    rows
}

impl ToJson for Fig13Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".to_owned(), Json::Str(self.benchmark.to_owned())),
            ("jgf".to_owned(), Json::Num(self.jgf)),
            ("aomp".to_owned(), Json::Num(self.aomp)),
        ])
    }
}

/// One Figure 15 bar: variant × particle count × thread count.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Series label (`Critical`, `Locks`, `JGF`).
    pub variant: &'static str,
    /// Particle count.
    pub particles: usize,
    /// Team size.
    pub threads: usize,
    /// Simulated speed-up over the 1-thread thread-local baseline
    /// (matching the paper's normalisation to the sequential run).
    pub speedup: f64,
}

impl ToJson for Fig15Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("variant".to_owned(), Json::Str(self.variant.to_owned())),
            ("particles".to_owned(), Json::Num(self.particles as f64)),
            ("threads".to_owned(), Json::Num(self.threads as f64)),
            ("speedup".to_owned(), Json::Num(self.speedup)),
        ])
    }
}

/// Particle counts on the paper's Figure 15 x-axis.
pub const FIG15_SIZES: [usize; 6] = [864, 2048, 8788, 19_652, 256_000, 500_000];
/// Thread counts of Figure 15's two groups.
pub const FIG15_THREADS: [usize; 2] = [4, 12];

/// The full Figure 15 series (on the Xeon model, where the paper's 4 and
/// 12 thread runs live).
pub fn fig15_series() -> Vec<Fig15Row> {
    let machine = Machine::xeon();
    let sim = Simulator::new(machine.clone());
    let mut rows = Vec::new();
    for &t in &FIG15_THREADS {
        for strategy in [MolDynStrategy::Critical, MolDynStrategy::Locks] {
            for &n in &FIG15_SIZES {
                let base = sim.run(
                    &models::moldyn(n, 50, 1, MolDynStrategy::ThreadLocal, &machine, false),
                    1,
                );
                let this = sim.run(&models::moldyn(n, 50, t, strategy, &machine, false), t);
                rows.push(Fig15Row {
                    variant: strategy.label(),
                    particles: n,
                    threads: t,
                    speedup: base / this,
                });
            }
        }
        // The paper shows the JGF (thread-local) series at its own size.
        let n = 8788;
        let base = sim.run(
            &models::moldyn(n, 50, 1, MolDynStrategy::ThreadLocal, &machine, false),
            1,
        );
        let this = sim.run(
            &models::moldyn(n, 50, t, MolDynStrategy::ThreadLocal, &machine, false),
            t,
        );
        rows.push(Fig15Row {
            variant: "JGF",
            particles: n,
            threads: t,
            speedup: base / this,
        });
    }
    rows
}

/// Region-entry overhead measured on this host: wall time of an empty
/// `parallel_with` region entered through the hot-team cache vs through
/// the spawning fallback (`RegionConfig::pooled(false)`).
#[derive(Debug, Clone)]
pub struct EntryOverhead {
    /// Team size used for both paths.
    pub threads: usize,
    /// Timed region entries per path (after warm-up).
    pub iters: usize,
    /// Mean wall time per pooled region entry, nanoseconds.
    pub pooled_ns: f64,
    /// Mean wall time per spawn-path region entry, nanoseconds.
    pub spawn_ns: f64,
}

impl EntryOverhead {
    /// How much faster the hot-team path enters a region (`spawn / pooled`).
    pub fn speedup(&self) -> f64 {
        self.spawn_ns / self.pooled_ns
    }
}

impl ToJson for EntryOverhead {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".to_owned(), Json::Num(self.threads as f64)),
            ("iters".to_owned(), Json::Num(self.iters as f64)),
            ("pooled_ns".to_owned(), Json::Num(self.pooled_ns)),
            ("spawn_ns".to_owned(), Json::Num(self.spawn_ns)),
            ("speedup".to_owned(), Json::Num(self.speedup())),
        ])
    }
}

/// Time `iters` empty region entries per path at team size `threads`.
/// Each path is warmed first (the pooled warm-up populates the hot-team
/// cache; the spawn warm-up faults in thread stacks), so the numbers
/// isolate steady-state entry cost — what a program paying region entry
/// in a loop actually sees.
pub fn measure_entry_overhead(threads: usize, iters: usize) -> EntryOverhead {
    use aomp::region::{parallel_with, RegionConfig};
    use std::time::Instant;

    let pooled_cfg = RegionConfig::new().threads(threads);
    let spawn_cfg = RegionConfig::new().threads(threads).pooled(false);
    let warmup = 8.min(iters.max(1));

    let time_path = |cfg: RegionConfig| {
        for _ in 0..warmup {
            parallel_with(cfg.clone(), || {});
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            // The per-iteration clone is two `Option` copies plus an
            // `Option<Arc>` bump — noise next to the µs-scale entry cost
            // it measures, and exactly what a caller reusing a config
            // pays since `RegionConfig` stopped being `Copy`.
            parallel_with(cfg.clone(), || {});
        }
        t0.elapsed().as_nanos() as f64 / iters.max(1) as f64
    };

    let pooled_ns = time_path(pooled_cfg);
    let spawn_ns = time_path(spawn_cfg);
    EntryOverhead {
        threads,
        iters,
        pooled_ns,
        spawn_ns,
    }
}

/// Convert an [`aomp::obs`] snapshot (or delta — it derefs to a
/// snapshot) into a [`Json`] object: every counter, per-histogram
/// count/mean/coarse-quantiles, and the derived hot-team cache hit rate.
/// This is what the bench binaries embed under `"metrics"` in their
/// `BENCH_*.json` reports.
pub fn metrics_json(snap: &aomp::obs::Snapshot) -> Json {
    use aomp::obs::{Counter, Lat};
    let counters: Vec<(String, Json)> = Counter::ALL
        .iter()
        .map(|c| (c.name().to_owned(), Json::Num(snap.counter(*c) as f64)))
        .collect();
    let latency: Vec<(String, Json)> = Lat::ALL
        .iter()
        .map(|l| {
            let h = snap.hist(*l);
            (
                l.name().to_owned(),
                Json::Obj(vec![
                    ("count".to_owned(), Json::Num(h.count() as f64)),
                    ("mean_ns".to_owned(), Json::Num(h.mean_ns())),
                    ("p50_ns".to_owned(), Json::Num(h.quantile_ns(0.5) as f64)),
                    ("p99_ns".to_owned(), Json::Num(h.quantile_ns(0.99) as f64)),
                ]),
            )
        })
        .collect();
    let hits = snap.counter(Counter::PoolCacheHit) as f64;
    let misses = snap.counter(Counter::PoolCacheMiss) as f64;
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    Json::Obj(vec![
        ("counters".to_owned(), Json::Obj(counters)),
        ("latency_ns".to_owned(), Json::Obj(latency)),
        ("pool_hit_rate".to_owned(), Json::Num(hit_rate)),
    ])
}

/// Write any serialisable result set to `path` as pretty JSON (the
/// `--json <path>` option of the figure binaries).
pub fn write_json<T: ToJson + ?Sized>(path: &str, value: &T) -> std::io::Result<()> {
    std::fs::write(path, value.to_json().pretty())
}

/// Parse a `--json <path>` argument pair from the command line.
pub fn json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Render a simple ASCII bar.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(120);
    "#".repeat(n.max(usize::from(value > 0.25)))
}

/// Hardware threads available on this host (1 if unknown).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Best-of-`reps` wall time of `f`, in seconds — one-shot timings on a
/// busy shared container are noisy, and the minimum is the least noisy
/// location estimator for a deterministic workload.
pub fn best_of_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    use std::time::Instant;
    (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The standard sweep x-axis: powers of two from 1 up to (and always
/// including) `max` — `1, 2, 4, …, max`.
pub fn thread_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut ts = Vec::new();
    let mut t = 1;
    while t < max {
        ts.push(t);
        t *= 2;
    }
    ts.push(max);
    ts
}

/// The one measurement loop shared by the sweep/fig13/serve/nr binaries:
/// a threads × variants grid of scalar measurements, with table
/// rendering and JSON emission in one place instead of one copy per
/// binary.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Grid label (machine name, server config, …).
    pub label: String,
    /// Unit of the measured values (`"speedup"`, `"Mops/s"`, `"req/s"`).
    pub unit: &'static str,
    /// The thread counts on the x-axis.
    pub threads: Vec<usize>,
    /// One measured series per variant, `values[i]` at `threads[i]`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SweepGrid {
    /// An empty grid over `threads`.
    pub fn new(label: impl Into<String>, unit: &'static str, threads: Vec<usize>) -> Self {
        Self {
            label: label.into(),
            unit,
            threads: if threads.is_empty() { vec![1] } else { threads },
            series: Vec::new(),
        }
    }

    /// Measure one variant across the whole x-axis: calls `f(t)` for
    /// every thread count and records the series.
    pub fn run(&mut self, name: impl Into<String>, mut f: impl FnMut(usize) -> f64) -> &mut Self {
        let values = self.threads.iter().map(|&t| f(t)).collect();
        self.series.push((name.into(), values));
        self
    }

    /// The measured value of `name` at thread count `t`.
    pub fn value(&self, name: &str, t: usize) -> Option<f64> {
        let col = self.threads.iter().position(|&x| x == t)?;
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, vs)| vs.get(col).copied())
    }

    /// Largest thread count on the x-axis.
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }

    /// Smallest thread count at which `a`'s value reaches `b`'s and
    /// never falls back below it for the rest of the axis — the
    /// contention crossover point, if the grid has one.
    pub fn crossover(&self, a: &str, b: &str) -> Option<usize> {
        let mut from = None;
        for &t in &self.threads {
            let (va, vb) = (self.value(a, t)?, self.value(b, t)?);
            if va >= vb {
                from.get_or_insert(t);
            } else {
                from = None;
            }
        }
        from
    }

    /// Print the grid as an aligned text table.
    pub fn print_table(&self) {
        println!("== {} ({}) ==", self.label, self.unit);
        print!("{:<16}", "threads");
        for t in &self.threads {
            print!("{t:>10}");
        }
        println!();
        for (name, values) in &self.series {
            print!("{name:<16}");
            for v in values {
                print!("{v:>10.2}");
            }
            println!();
        }
        println!();
    }
}

impl ToJson for SweepGrid {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".to_owned(), Json::Str(self.label.clone())),
            ("unit".to_owned(), Json::Str(self.unit.to_owned())),
            (
                "threads".to_owned(),
                Json::Arr(self.threads.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            (
                "series".to_owned(),
                Json::Obj(
                    self.series
                        .iter()
                        .map(|(n, vs)| {
                            (
                                n.clone(),
                                Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_has_eight_benchmarks_per_machine() {
        for (m, t) in [(Machine::i7(), 8usize), (Machine::xeon(), 24)] {
            let rows = fig13_series(&m, t);
            assert_eq!(rows.len(), 8);
            for r in &rows {
                assert!(r.jgf > 0.9, "{} jgf {}", r.benchmark, r.jgf);
                assert!(
                    (r.aomp - r.jgf).abs() / r.jgf < 0.02,
                    "{}: {} vs {}",
                    r.benchmark,
                    r.jgf,
                    r.aomp
                );
            }
        }
    }

    #[test]
    fn fig13_shape_matches_paper() {
        // Xeon/24: embarrassingly parallel kernels above 10×; LUFact and
        // SOR the two worst ("scale poorly due to the lack of locality").
        let rows = fig13_series(&Machine::xeon(), 24);
        let get = |n: &str| rows.iter().find(|r| r.benchmark == n).unwrap().jgf;
        assert!(get("Series") > 12.0, "Series {}", get("Series"));
        assert!(get("Crypt") > 10.0, "Crypt {}", get("Crypt"));
        let worst_two = {
            let mut v: Vec<(&str, f64)> = rows.iter().map(|r| (r.benchmark, r.jgf)).collect();
            v.sort_by(|a, b| a.1.total_cmp(&b.1));
            [v[0].0, v[1].0]
        };
        assert!(
            worst_two.contains(&"LUFact") && worst_two.contains(&"SOR"),
            "{worst_two:?}"
        );
    }

    #[test]
    fn fig15_rows_cover_grid() {
        let rows = fig15_series();
        // 2 thread counts × (2 variants × 6 sizes + 1 JGF row).
        assert_eq!(rows.len(), 2 * (2 * 6 + 1));
        for r in &rows {
            assert!(r.speedup > 0.1 && r.speedup < 24.0, "{r:?}");
        }
    }

    #[test]
    fn fig15_headline_claims() {
        let rows = fig15_series();
        let find = |v: &str, n: usize, t: usize| {
            rows.iter()
                .find(|r| r.variant == v && r.particles == n && r.threads == t)
                .map(|r| r.speedup)
                .unwrap()
        };
        // Locks beat the JGF thread-local version at 12 threads (8788).
        assert!(find("Locks", 8788, 12) > find("JGF", 8788, 12));
        // Critical is the best strategy at 256k/500k with few threads.
        for n in [256_000, 500_000] {
            assert!(find("Critical", n, 4) >= find("Locks", n, 4), "n={n}");
        }
        // Critical is the worst choice at the smallest size.
        assert!(find("Critical", 864, 12) < find("Locks", 864, 12));
    }

    #[test]
    fn bar_renders_monotonically() {
        assert!(bar(8.0, 2.0).len() > bar(2.0, 2.0).len());
        assert_eq!(bar(0.0, 2.0), "");
    }

    #[test]
    fn thread_ladder_is_powers_of_two_plus_max() {
        assert_eq!(thread_ladder(1), vec![1]);
        assert_eq!(thread_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_ladder(12), vec![1, 2, 4, 8, 12]);
        assert_eq!(thread_ladder(0), vec![1]);
    }

    #[test]
    fn sweep_grid_records_and_finds_the_crossover() {
        let mut g = SweepGrid::new("m", "Mops/s", vec![1, 2, 4, 8]);
        g.run("lock", |t| 10.0 / t as f64) // collapses
            .run("nr", |t| 2.0 + t as f64); // scales
        assert_eq!(g.value("lock", 1), Some(10.0));
        assert_eq!(g.value("nr", 8), Some(10.0));
        assert_eq!(g.max_threads(), 8);
        // lock: 10, 5, 2.5, 1.25; nr: 3, 4, 6, 10 → nr wins from t=4 on.
        assert_eq!(g.crossover("nr", "lock"), Some(4));
        assert_eq!(g.crossover("lock", "nr"), None);
    }

    #[test]
    fn sweep_grid_crossover_requires_staying_ahead() {
        let mut g = SweepGrid::new("m", "x", vec![1, 2, 4]);
        g.series.push(("a".into(), vec![2.0, 0.5, 3.0]));
        g.series.push(("b".into(), vec![1.0, 1.0, 1.0]));
        // `a` dips back below `b` at t=2, so only t=4 counts.
        assert_eq!(g.crossover("a", "b"), Some(4));
    }

    #[test]
    fn sweep_grid_json_shape() {
        let mut g = SweepGrid::new("xeon", "speedup", vec![1, 2]);
        g.run("crypt", |t| t as f64);
        let j = g.to_json().pretty();
        for key in ["\"label\"", "\"unit\"", "\"threads\"", "\"crypt\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
