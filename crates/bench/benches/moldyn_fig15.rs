//! Criterion bench backing Figure 15: the three MolDyn parallelisation
//! strategies (JGF thread-local arrays, global critical, per-particle
//! locks) on the real Rust kernels, at two particle counts.
//!
//! On this single-core container the absolute numbers measure per-variant
//! overhead (locking, reduction) rather than parallel speed-up; the
//! simulated Figure 15 lives in `--bin fig15`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    for (mm, moves) in [(4usize, 3usize), (6, 2)] {
        let d = aomp_jgf::moldyn::generate(mm, moves);
        let n = aomp_jgf::moldyn::particles(mm);
        let mut g = c.benchmark_group(format!("fig15/n{n}"));
        g.sample_size(10);
        g.warm_up_time(Duration::from_millis(300));
        g.measurement_time(Duration::from_millis(900));
        for threads in [1usize, 2] {
            g.bench_with_input(
                BenchmarkId::new("jgf-threadlocal", threads),
                &threads,
                |b, &t| b.iter(|| black_box(aomp_jgf::moldyn::mt::run(&d, t))),
            );
            g.bench_with_input(BenchmarkId::new("critical", threads), &threads, |b, &t| {
                b.iter(|| black_box(aomp_jgf::moldyn::variants::run_critical(&d, t)))
            });
            g.bench_with_input(BenchmarkId::new("locks", threads), &threads, |b, &t| {
                b.iter(|| black_box(aomp_jgf::moldyn::variants::run_locks(&d, t)))
            });
            g.bench_with_input(
                BenchmarkId::new("aomp-threadlocal", threads),
                &threads,
                |b, &t| b.iter(|| black_box(aomp_jgf::moldyn::aomp::run(&d, t))),
            );
        }
        g.finish();
    }
}

criterion_group!(fig15, bench_variants);
criterion_main!(fig15);
