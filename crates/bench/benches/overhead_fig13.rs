//! Criterion bench backing Figure 13's comparative claim: for every JGF
//! benchmark, the AOmp version is within ~1 % of the hand-threaded JGF
//! version (both run the same schedule on the same team size, so the
//! difference is pure aspect-machinery overhead).
//!
//! Sizes are the `Small` presets: this container has one core, so the
//! point is the JGF-vs-AOmp *ratio*, not absolute scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use aomp_jgf::Size;

const THREADS: usize = 2;

fn bench_crypt(c: &mut Criterion) {
    let data = aomp_jgf::crypt::generate(Size::Small);
    let mut g = c.benchmark_group("fig13/crypt");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::crypt::mt::run(&data, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::crypt::aomp::run(&data, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::crypt::seq::run(&data)))
    });
    g.finish();
}

fn bench_lufact(c: &mut Criterion) {
    let data = aomp_jgf::lufact::generate(Size::Small);
    let mut g = c.benchmark_group("fig13/lufact");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::lufact::mt::run(&data, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::lufact::aomp::run(&data, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::lufact::seq::run(&data)))
    });
    g.finish();
}

fn bench_series(c: &mut Criterion) {
    let n = aomp_jgf::series::coefficients_for(Size::Small);
    let mut g = c.benchmark_group("fig13/series");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::series::mt::run(n, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::series::aomp::run(n, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::series::seq::run(n)))
    });
    g.finish();
}

fn bench_sor(c: &mut Criterion) {
    let grid = aomp_jgf::sor::generate(Size::Small);
    let iters = 20;
    let mut g = c.benchmark_group("fig13/sor");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::sor::mt::run(&grid, iters, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::sor::aomp::run(&grid, iters, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::sor::seq::run(&grid, iters)))
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let d = aomp_jgf::sparse::generate(Size::Small);
    let iters = 40;
    let mut g = c.benchmark_group("fig13/sparse");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::sparse::mt::run(&d, iters, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::sparse::aomp::run(&d, iters, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::sparse::seq::run(&d, iters)))
    });
    g.finish();
}

fn bench_moldyn(c: &mut Criterion) {
    let d = aomp_jgf::moldyn::generate(4, 4);
    let mut g = c.benchmark_group("fig13/moldyn");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::moldyn::mt::run(&d, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::moldyn::aomp::run(&d, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::moldyn::seq::run(&d)))
    });
    g.finish();
}

fn bench_montecarlo(c: &mut Criterion) {
    let d = aomp_jgf::montecarlo::generate(Size::Small);
    let mut g = c.benchmark_group("fig13/montecarlo");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::montecarlo::mt::run(&d, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::montecarlo::aomp::run(&d, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::montecarlo::seq::run(&d)))
    });
    g.finish();
}

fn bench_raytracer(c: &mut Criterion) {
    let scene = aomp_jgf::raytracer::generate(Size::Small);
    let mut g = c.benchmark_group("fig13/raytracer");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("jgf-mt", |b| {
        b.iter(|| black_box(aomp_jgf::raytracer::mt::run(&scene, THREADS)))
    });
    g.bench_function("aomp", |b| {
        b.iter(|| black_box(aomp_jgf::raytracer::aomp::run(&scene, THREADS)))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(aomp_jgf::raytracer::seq::run(&scene)))
    });
    g.finish();
}

criterion_group!(
    fig13,
    bench_crypt,
    bench_lufact,
    bench_series,
    bench_sor,
    bench_sparse,
    bench_moldyn,
    bench_montecarlo,
    bench_raytracer
);
criterion_main!(fig13);
