//! Micro-benchmarks of the individual AOmpLib mechanisms: parallel-region
//! spawn/join, barrier rounds, schedules, critical sections, single /
//! master, thread-local access, tasks, and the weaver's join-point
//! dispatch overhead (the cost the paper's <1 % claim rides on).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aomp::prelude::*;
use aomp_weaver::prelude::*;

#[inline]
fn ctx_work() -> usize {
    aomp::ctx::thread_id() + aomp::ctx::team_size()
}

fn bench_region(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/region");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for t in [1usize, 2, 4] {
        g.bench_function(format!("spawn_join_t{t}"), |b| {
            b.iter(|| {
                region::parallel_with(RegionConfig::new().threads(t), || {
                    black_box(ctx_work());
                })
            })
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/barrier");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for t in [2usize, 4] {
        g.bench_function(format!("barrier100_t{t}"), |b| {
            b.iter(|| {
                region::parallel_with(RegionConfig::new().threads(t), || {
                    for _ in 0..100 {
                        aomp::ctx::barrier();
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/for");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    let sum = AtomicU64::new(0);
    for (name, sched) in [
        ("static_block", Schedule::StaticBlock),
        ("static_cyclic", Schedule::StaticCyclic),
        ("dynamic8", Schedule::Dynamic { chunk: 8 }),
        ("guided", Schedule::GUIDED),
    ] {
        let for_c = ForConstruct::new(sched);
        g.bench_function(name, |b| {
            b.iter(|| {
                region::parallel_with(RegionConfig::new().threads(2), || {
                    for_c.execute(LoopRange::upto(0, 10_000), |lo, hi, step| {
                        let mut local = 0u64;
                        let mut i = lo;
                        while i < hi {
                            local = local.wrapping_add(i as u64);
                            i += step;
                        }
                        sum.fetch_add(local, Ordering::Relaxed);
                    });
                })
            })
        });
    }
    g.finish();
}

fn bench_critical(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/critical");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("uncontended_10k", |b| {
        let h = CriticalHandle::new();
        let mut v = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                h.run(|| v = v.wrapping_add(1));
            }
            black_box(v)
        })
    });
    g.bench_function("contended_t2_10k", |b| {
        let h = CriticalHandle::new();
        b.iter(|| {
            let counter = AtomicU64::new(0);
            region::parallel_with(RegionConfig::new().threads(2), || {
                for _ in 0..5_000 {
                    h.run(|| counter.fetch_add(1, Ordering::Relaxed));
                }
            });
            black_box(counter.load(Ordering::Relaxed))
        })
    });
    g.finish();
}

fn bench_gates(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/gates");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("single_broadcast_x100_t2", |b| {
        let s = Single::new();
        b.iter(|| {
            region::parallel_with(RegionConfig::new().threads(2), || {
                for _ in 0..100 {
                    black_box(s.run(|| 42u64));
                    aomp::ctx::barrier();
                }
            })
        })
    });
    g.bench_function("master_broadcast_x100_t2", |b| {
        let m = Master::new();
        b.iter(|| {
            region::parallel_with(RegionConfig::new().threads(2), || {
                for _ in 0..100 {
                    black_box(m.run(|| 42u64));
                    aomp::ctx::barrier();
                }
            })
        })
    });
    g.finish();
}

fn bench_threadlocal(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/threadlocal");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("update_x10k", |b| {
        let f = ThreadLocalField::new(0u64);
        b.iter(|| {
            for _ in 0..10_000 {
                f.update(|v| *v = v.wrapping_add(1));
            }
            f.drain_locals()
        })
    });
    g.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/tasks");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("spawn_wait_x32", |b| {
        b.iter(|| {
            let group = TaskGroup::new();
            for _ in 0..32 {
                group.spawn(|| {
                    black_box(1 + 1);
                });
            }
            group.wait();
        })
    });
    g.bench_function("future_x16", |b| {
        b.iter(|| {
            let futs: Vec<FutureTask<u64>> =
                (0..16).map(|i| task::spawn_future(move || i * 2)).collect();
            futs.into_iter().map(|f| f.get()).sum::<u64>()
        })
    });
    g.finish();
}

fn bench_weaver_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms/weaver");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    // Unmatched join point: the cost of sequential semantics.
    g.bench_function("unmatched_call_x10k", |b| {
        let v = AtomicU64::new(0);
        b.iter(|| {
            for _ in 0..10_000 {
                aomp_weaver::call("bench.unmatched", || {
                    v.fetch_add(1, Ordering::Relaxed);
                });
            }
            black_box(v.load(Ordering::Relaxed))
        })
    });
    // Matched by an inert (non-parallel) aspect: dispatch + plan cost.
    g.bench_function("matched_critical_call_x10k", |b| {
        let aspect = AspectModule::builder("bench-matched")
            .bind(Pointcut::call("bench.matched"), Mechanism::critical())
            .build();
        Weaver::global().with_deployed(aspect, || {
            let v = AtomicU64::new(0);
            b.iter(|| {
                for _ in 0..10_000 {
                    aomp_weaver::call("bench.matched", || {
                        v.fetch_add(1, Ordering::Relaxed);
                    });
                }
                black_box(v.load(Ordering::Relaxed))
            })
        })
    });
    g.finish();
}

criterion_group!(
    mechanisms,
    bench_region,
    bench_barrier,
    bench_schedules,
    bench_critical,
    bench_gates,
    bench_threadlocal,
    bench_tasks,
    bench_weaver_dispatch
);
criterion_main!(mechanisms);
