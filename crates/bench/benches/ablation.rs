//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **spawn-per-region vs pooled team** — paper Figure 9's model spawns
//!   threads on every region entry; `aomp::pool::TeamPool` is the §VII
//!   "optimised mechanisms" alternative. This bench quantifies the
//!   region-entry cost difference.
//! * **schedule choice on irregular work** — triangle counting on a
//!   power-law graph under every library schedule plus the case-specific
//!   degree-balanced aspect (the Table 2 "CS" idiom).
//! * **weaver dispatch depth** — join-point cost as deployed aspect
//!   count grows (the price of the pluggability the paper advertises).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aomp::prelude::*;
use aomp_weaver::prelude::*;

fn bench_spawn_vs_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/region_pool");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for t in [2usize, 4] {
        let work = AtomicU64::new(0);
        g.bench_function(format!("spawn_per_region_t{t}"), |b| {
            b.iter(|| {
                for _ in 0..20 {
                    region::parallel_with(RegionConfig::new().threads(t), || {
                        work.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        });
        let pool = TeamPool::new(t);
        g.bench_function(format!("pooled_team_t{t}"), |b| {
            b.iter(|| {
                for _ in 0..20 {
                    pool.parallel(|| {
                        work.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        });
        black_box(work.load(Ordering::Relaxed));
    }
    g.finish();
}

fn bench_triangle_schedules(c: &mut Criterion) {
    use aomp_irregular::triangles::{aspect, count_oriented, orient, TriSchedule};
    use aomp_irregular::{CsrGraph, GraphKind};

    let g_raw = CsrGraph::generate(GraphKind::PowerLaw, 2_000, 8, 99);
    let oriented = orient(&g_raw);
    let mut g = c.benchmark_group("ablation/tri_schedule");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(count_oriented(&oriented)))
    });
    for sched in TriSchedule::ALL {
        g.bench_function(sched.name(), |b| {
            b.iter(|| {
                Weaver::global().with_deployed(aspect(2, sched, &oriented), || {
                    black_box(count_oriented(&oriented))
                })
            })
        });
    }
    g.finish();
}

fn bench_weaver_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/weaver_depth");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for deployed in [0usize, 1, 4, 16] {
        // Deploy `deployed` aspects that do NOT match the probed join
        // point: measures pure registry-scan overhead.
        let handles: Vec<AspectHandle> = (0..deployed)
            .map(|i| {
                Weaver::global().deploy(
                    AspectModule::builder(format!("noise-{i}"))
                        .bind(
                            Pointcut::call(format!("noise.jp.{i}")),
                            Mechanism::critical(),
                        )
                        .build(),
                )
            })
            .collect();
        let v = AtomicU64::new(0);
        g.bench_function(format!("unmatched_x1k_deployed{deployed}"), |b| {
            b.iter(|| {
                for _ in 0..1_000 {
                    aomp_weaver::call("ablation.unmatched", || {
                        v.fetch_add(1, Ordering::Relaxed);
                    });
                }
                black_box(v.load(Ordering::Relaxed))
            })
        });
        for h in handles {
            Weaver::global().undeploy(h);
        }
    }
    g.finish();
}

criterion_group!(
    ablation,
    bench_spawn_vs_pool,
    bench_triangle_schedules,
    bench_weaver_depth
);
criterion_main!(ablation);
