//! Pointcuts: predicates selecting the join points an aspect acts on.
//!
//! Mirrors the subset of AspectJ's pointcut language the paper uses:
//! `call(void Type.method(..))` becomes [`Pointcut::call`]; the `||`
//! compositions of paper Figure 7 become [`Pointcut::or`]; binding to
//! every implementation of an interface method ("pointcuts defined over
//! Java interfaces", retained across inheritance) is expressed with glob
//! patterns such as `Particle.force` matched against names the
//! implementors expose, or `*.force` to match any type.

use crate::joinpoint::{JoinPoint, JoinPointKind};

/// A join-point predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Pointcut {
    /// Matches a method by its exact qualified name.
    Call(String),
    /// Matches names against a glob pattern (`*` matches any run of
    /// characters, including dots).
    Glob(String),
    /// Matches join points of one shape (e.g. every for method).
    Kind(JoinPointKind),
    /// Matches every join point.
    Any,
    /// Matches nothing (identity for [`Pointcut::or`] folds).
    None,
    /// Disjunction — the paper's `pc1() || pc2()`.
    Or(Box<Pointcut>, Box<Pointcut>),
    /// Conjunction — AspectJ's `pc1() && pc2()`.
    And(Box<Pointcut>, Box<Pointcut>),
    /// Negation — AspectJ's `!pc()`.
    Not(Box<Pointcut>),
}

impl Pointcut {
    /// `call(Type.method)` — exact-name pointcut.
    pub fn call(name: impl Into<String>) -> Self {
        Pointcut::Call(name.into())
    }

    /// Glob pointcut, e.g. `Particle.*` or `*.force`.
    pub fn glob(pattern: impl Into<String>) -> Self {
        Pointcut::Glob(pattern.into())
    }

    /// Pointcut over a join point shape.
    pub fn kind(kind: JoinPointKind) -> Self {
        Pointcut::Kind(kind)
    }

    /// `self || other`.
    pub fn or(self, other: Pointcut) -> Self {
        Pointcut::Or(Box::new(self), Box::new(other))
    }

    /// `self && other`.
    pub fn and(self, other: Pointcut) -> Self {
        Pointcut::And(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Pointcut::Not(Box::new(self))
    }

    /// Disjunction of several exact names — the common Figure 7 shape.
    pub fn calls<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        names.into_iter().fold(Pointcut::None, |acc, n| match acc {
            Pointcut::None => Pointcut::call(n),
            acc => acc.or(Pointcut::call(n)),
        })
    }

    /// Does this pointcut select `jp`?
    pub fn matches(&self, jp: &JoinPoint<'_>) -> bool {
        match self {
            Pointcut::Call(name) => jp.name == name,
            Pointcut::Glob(pat) => glob_match(pat, jp.name),
            Pointcut::Kind(k) => jp.kind == *k,
            Pointcut::Any => true,
            Pointcut::None => false,
            Pointcut::Or(a, b) => a.matches(jp) || b.matches(jp),
            Pointcut::And(a, b) => a.matches(jp) && b.matches(jp),
            Pointcut::Not(p) => !p.matches(jp),
        }
    }
}

/// Simple glob matcher: `*` matches any (possibly empty) run of
/// characters; everything else matches literally. Iterative
/// backtracking over bytes (method names are ASCII by convention).
pub(crate) fn glob_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Extend the last star's match by one character.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aomp::range::LoopRange;

    fn jp(name: &str) -> JoinPoint<'_> {
        JoinPoint::plain(name)
    }

    #[test]
    fn exact_call_matching() {
        let pc = Pointcut::call("Linpack.dgefa");
        assert!(pc.matches(&jp("Linpack.dgefa")));
        assert!(!pc.matches(&jp("Linpack.dscal")));
    }

    #[test]
    fn glob_star_positions() {
        assert!(glob_match("Particle.*", "Particle.force"));
        assert!(glob_match("*.force", "Particle.force"));
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("P*e.f*e", "Particle.force"));
        assert!(!glob_match("Particle.*", "Atom.force"));
        assert!(!glob_match("*.force", "Particle.domove"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "x"));
        assert!(glob_match("a*", "a"));
        assert!(!glob_match("a*b", "acd"));
    }

    #[test]
    fn interface_style_glob_matches_all_implementations() {
        // The LAMMPS-style scenario of §II: many Particle implementations.
        let pc = Pointcut::glob("*.force");
        for name in [
            "LJParticle.force",
            "CoulombParticle.force",
            "EAMParticle.force",
        ] {
            assert!(pc.matches(&jp(name)), "{name}");
        }
        assert!(!pc.matches(&jp("LJParticle.domove")));
    }

    #[test]
    fn or_composition_matches_either() {
        // Paper Figure 7's barrierAfter pointcut.
        let pc = Pointcut::calls([
            "Linpack.reduceAllCols",
            "Linpack.interchange",
            "Linpack.dscal",
        ]);
        assert!(pc.matches(&jp("Linpack.interchange")));
        assert!(pc.matches(&jp("Linpack.dscal")));
        assert!(!pc.matches(&jp("Linpack.dgefa")));
    }

    #[test]
    fn and_not_compose() {
        let pc = Pointcut::glob("Linpack.*").and(Pointcut::call("Linpack.dgefa").not());
        assert!(pc.matches(&jp("Linpack.dscal")));
        assert!(!pc.matches(&jp("Linpack.dgefa")));
        assert!(!pc.matches(&jp("Other.dscal")));
    }

    #[test]
    fn kind_pointcut() {
        let pc = Pointcut::kind(JoinPointKind::ForMethod);
        assert!(pc.matches(&JoinPoint::for_method("A.f", LoopRange::upto(0, 1))));
        assert!(!pc.matches(&jp("A.f")));
    }

    #[test]
    fn any_and_none() {
        assert!(Pointcut::Any.matches(&jp("x")));
        assert!(!Pointcut::None.matches(&jp("x")));
        assert!(Pointcut::calls(Vec::<String>::new()).matches(&jp("x")) == false);
    }
}
