//! Mechanisms: the parallelism semantics an aspect attaches to matched
//! join points — the library side of paper Table 1.
//!
//! Each [`Mechanism`] owns its runtime construct instance (its
//! `ForConstruct`, `Master`, lock, …), so distinct aspect instances get
//! distinct state — the property the paper highlights for the pointcut
//! style ("each aspect instance can use a different lock").

use std::sync::Arc;

use aomp::critical::CriticalHandle;
use aomp::deps::{Dep, DepGroup, TaskloopConstruct};
use aomp::nr::Combiner;
use aomp::range::LoopRange;
use aomp::region::RegionConfig;
use aomp::schedule::Schedule;
use aomp::sync::{Master, RwConstruct, Single};
use aomp::workshare::ForConstruct;

use crate::joinpoint::JoinPoint;

/// Application-specific advice — the escape hatch behind the paper's
/// "case specific" aspects (Table 2, Sparse) and §III-C's "parallelism
/// specific code".
///
/// Default implementations just proceed, so an implementor overrides only
/// the join-point shapes it cares about. Inside the advice,
/// [`aomp::ctx::thread_id`] provides the paper's `getThreadId()`.
pub trait CustomAdvice: Send + Sync {
    /// Around-advice for plain join points.
    fn around(&self, jp: &JoinPoint<'_>, proceed: &mut dyn FnMut()) {
        let _ = jp;
        proceed();
    }

    /// Around-advice for for-method join points. `proceed` takes the
    /// (possibly rewritten) `(start, end, step)` triple and may be called
    /// any number of times — e.g. once per application-specific chunk.
    fn around_for(
        &self,
        jp: &JoinPoint<'_>,
        range: LoopRange,
        proceed: &mut dyn FnMut(i64, i64, i64),
    ) {
        let _ = jp;
        proceed(range.start, range.end, range.step);
    }
}

/// Semantics attachable to join points. Construct one via the associated
/// functions and [`bind`](crate::aspect::AspectBuilder::bind) it to a
/// [`Pointcut`](crate::pointcut::Pointcut).
pub struct Mechanism {
    pub(crate) kind: MechanismKind,
}

pub(crate) enum MechanismKind {
    Parallel {
        threads: Option<usize>,
        nested: Option<bool>,
        cancellable: bool,
        stall_deadline: Option<std::time::Duration>,
        pooled: Option<bool>,
        runtime: Option<aomp::Runtime>,
    },
    For {
        construct: ForConstruct,
    },
    BarrierBefore,
    BarrierAfter,
    MasterGate {
        construct: Master,
    },
    SingleGate {
        construct: Single,
    },
    Critical {
        handle: CriticalHandle,
    },
    Replicated {
        combiner: Arc<Combiner>,
    },
    Reader {
        rw: Arc<RwConstruct>,
    },
    Writer {
        rw: Arc<RwConstruct>,
    },
    ReduceAfter {
        action: Arc<dyn Fn() + Send + Sync>,
    },
    Custom {
        advice: Arc<dyn CustomAdvice>,
    },
    Task {
        group: DepGroup,
        deps: Vec<Dep>,
    },
    Taskloop {
        construct: TaskloopConstruct,
    },
}

impl std::fmt::Debug for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mechanism::{}", self.kind_name())
    }
}

impl Mechanism {
    /// `@Parallel` — the matched method execution becomes a parallel
    /// region. Configure with [`threads`](Self::threads),
    /// [`cancellable`](Self::cancellable) and
    /// [`stall_deadline`](Self::stall_deadline).
    pub fn parallel() -> Self {
        Self {
            kind: MechanismKind::Parallel {
                threads: None,
                nested: None,
                cancellable: false,
                stall_deadline: None,
                pooled: None,
                runtime: None,
            },
        }
    }

    /// Set the team size of a [`parallel`](Self::parallel) mechanism —
    /// `@Parallel(threads = n)` / overriding `numThreads()`.
    pub fn threads(mut self, n: usize) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { threads, .. } => *threads = Some(n),
            _ => panic!("threads() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// Control nesting of a [`parallel`](Self::parallel) mechanism.
    pub fn nested(mut self, nested: bool) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { nested: n, .. } => *n = Some(nested),
            _ => panic!("nested() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// Allow [`aomp::ctx::cancel_team`] inside regions woven by this
    /// mechanism — OpenMP 4.0 requires cancellation to be activated.
    pub fn cancellable(mut self) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { cancellable, .. } => *cancellable = true,
            _ => panic!("cancellable() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// Arm the stall watchdog for regions woven by this mechanism — see
    /// [`RegionConfig::stall_deadline`].
    pub fn stall_deadline(mut self, deadline: std::time::Duration) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { stall_deadline, .. } => *stall_deadline = Some(deadline),
            _ => panic!("stall_deadline() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// Allow or refuse the runtime hot-team cache for regions woven by
    /// this mechanism — see [`RegionConfig::pooled`]. Defaults to
    /// allowed.
    pub fn pooled(mut self, pooled: bool) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { pooled: p, .. } => *p = Some(pooled),
            _ => panic!("pooled() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// Pin regions woven by this [`parallel`](Self::parallel) mechanism
    /// to an explicit [`aomp::Runtime`] — see
    /// [`RegionConfig::runtime`]. The handle is cheap to clone; the
    /// mechanism keeps the runtime alive for as long as the aspect is
    /// woven.
    pub fn runtime(mut self, rt: &aomp::Runtime) -> Self {
        match &mut self.kind {
            MechanismKind::Parallel { runtime, .. } => *runtime = Some(rt.clone()),
            _ => panic!("runtime() only applies to Mechanism::parallel()"),
        }
        self
    }

    /// `@For(schedule = …)` — work-share a for method across the team.
    pub fn for_loop(schedule: Schedule) -> Self {
        Self {
            kind: MechanismKind::For {
                construct: ForConstruct::new(schedule),
            },
        }
    }

    /// `@For` without the trailing barrier of dynamic/guided schedules.
    pub fn for_loop_nowait(schedule: Schedule) -> Self {
        Self {
            kind: MechanismKind::For {
                construct: ForConstruct::new(schedule).nowait(),
            },
        }
    }

    /// `@BarrierBefore` — team barrier before the method executes.
    pub fn barrier_before() -> Self {
        Self {
            kind: MechanismKind::BarrierBefore,
        }
    }

    /// `@BarrierAfter` — team barrier after the method completes.
    pub fn barrier_after() -> Self {
        Self {
            kind: MechanismKind::BarrierAfter,
        }
    }

    /// `@Master` — only the team master executes the method; for
    /// value join points the result is broadcast to the whole team.
    pub fn master() -> Self {
        Self {
            kind: MechanismKind::MasterGate {
                construct: Master::new(),
            },
        }
    }

    /// `@Single` — exactly one (first-arriving) thread executes the
    /// method; for value join points the result is broadcast.
    pub fn single() -> Self {
        Self {
            kind: MechanismKind::SingleGate {
                construct: Single::new(),
            },
        }
    }

    /// `@Critical` with this aspect instance's own lock — the
    /// `criticalUsingSharedLock` variant scoped to one mechanism.
    pub fn critical() -> Self {
        Self {
            kind: MechanismKind::Critical {
                handle: CriticalHandle::new(),
            },
        }
    }

    /// `@Critical(id = name)` — process-wide named lock.
    pub fn critical_named(id: &str) -> Self {
        Self {
            kind: MechanismKind::Critical {
                handle: CriticalHandle::named(id),
            },
        }
    }

    /// `@Critical` sharing an explicit handle — the captured-lock /
    /// shared-lock pointcut variants.
    pub fn critical_with(handle: CriticalHandle) -> Self {
        Self {
            kind: MechanismKind::Critical { handle },
        }
    }

    /// `@Replicated` with this aspect instance's own flat-combining
    /// section lock — a drop-in scalability upgrade for
    /// [`critical`](Self::critical): same mutual exclusion, but under
    /// contention one thread executes whole batches of waiting sections
    /// (see [`aomp::nr::Combiner`]). The section body may run on another
    /// team thread, so it must not depend on thread identity.
    pub fn replicated() -> Self {
        Self {
            kind: MechanismKind::Replicated {
                combiner: Arc::new(Combiner::new()),
            },
        }
    }

    /// `@Replicated(id = name)` — process-wide named combiner, the
    /// flat-combining counterpart of [`critical_named`](Self::critical_named).
    pub fn replicated_named(id: &str) -> Self {
        Self {
            kind: MechanismKind::Replicated {
                combiner: Combiner::named(id),
            },
        }
    }

    /// `@Replicated` sharing an explicit combiner across mechanisms.
    pub fn replicated_with(combiner: Arc<Combiner>) -> Self {
        Self {
            kind: MechanismKind::Replicated { combiner },
        }
    }

    /// `@Reader` — shared access through `rw`. Pair with
    /// [`writer`](Self::writer) on the same construct.
    pub fn reader(rw: Arc<RwConstruct>) -> Self {
        Self {
            kind: MechanismKind::Reader { rw },
        }
    }

    /// `@Writer` — exclusive access through `rw`.
    pub fn writer(rw: Arc<RwConstruct>) -> Self {
        Self {
            kind: MechanismKind::Writer { rw },
        }
    }

    /// `@Reduce` — after the matched call completes on all threads
    /// (team barrier), the master runs `action` (typically
    /// [`ThreadLocalField::reduce`](aomp::threadlocal::ThreadLocalField::reduce)),
    /// then the team barriers again so every thread observes the merged
    /// value.
    pub fn reduce_after(action: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            kind: MechanismKind::ReduceAfter {
                action: Arc::new(action),
            },
        }
    }

    /// Application-specific advice (case-specific aspects).
    pub fn custom(advice: impl CustomAdvice + 'static) -> Self {
        Self {
            kind: MechanismKind::Custom {
                advice: Arc::new(advice),
            },
        }
    }

    /// `@Task(depend(…))` — the matched execution becomes a dependence
    /// node in this mechanism's own [`DepGroup`]: it waits for the
    /// predecessors its [`depends`](Self::depends) clauses imply, runs
    /// *undeferred* on the calling thread, then releases its successors.
    /// To order join points against each other their mechanisms must
    /// share a group — see [`task_in`](Self::task_in).
    pub fn task() -> Self {
        Self {
            kind: MechanismKind::Task {
                group: DepGroup::new(),
                deps: Vec::new(),
            },
        }
    }

    /// `@Task(depend(…))` spawning into a shared, explicit [`DepGroup`]
    /// — the captured-group analogue of
    /// [`critical_with`](Self::critical_with). Dependences only order
    /// tasks within one group, so bindings that must serialize against
    /// each other share the group.
    pub fn task_in(group: &DepGroup) -> Self {
        Self {
            kind: MechanismKind::Task {
                group: group.clone(),
                deps: Vec::new(),
            },
        }
    }

    /// The `depend(in/out/inout)` clauses of a [`task`](Self::task)
    /// mechanism.
    pub fn depends(mut self, clauses: impl IntoIterator<Item = Dep>) -> Self {
        match &mut self.kind {
            MechanismKind::Task { deps, .. } => deps.extend(clauses),
            _ => panic!("depends() only applies to Mechanism::task()"),
        }
        self
    }

    /// OpenMP 4.5 `taskloop` — work-share a for method as a lazily
    /// splitting range task (see [`TaskloopConstruct`]): the whole range
    /// starts as one task and sheds half of the remainder only when
    /// another member is observed waiting at a min-chunk bite boundary.
    pub fn taskloop() -> Self {
        Self {
            kind: MechanismKind::Taskloop {
                construct: TaskloopConstruct::new(),
            },
        }
    }

    /// [`taskloop`](Self::taskloop) with an explicit bite/split granule
    /// (OpenMP `grainsize`).
    pub fn taskloop_min_chunk(min_chunk: u64) -> Self {
        Self {
            kind: MechanismKind::Taskloop {
                construct: TaskloopConstruct::new().min_chunk(min_chunk),
            },
        }
    }

    /// Wrapping layer: lower layers are applied further out. Used by the
    /// weaver to order composed mechanisms deterministically.
    pub(crate) fn layer(&self) -> u8 {
        match self.kind {
            MechanismKind::BarrierBefore => 0,
            MechanismKind::Parallel { .. } => 1,
            MechanismKind::MasterGate { .. } | MechanismKind::SingleGate { .. } => 2,
            MechanismKind::Critical { .. }
            | MechanismKind::Replicated { .. }
            | MechanismKind::Reader { .. }
            | MechanismKind::Writer { .. }
            | MechanismKind::Task { .. } => 3,
            MechanismKind::Custom { .. } => 4,
            MechanismKind::For { .. } | MechanismKind::Taskloop { .. } => 5,
            MechanismKind::ReduceAfter { .. } => 6,
            MechanismKind::BarrierAfter => 7,
        }
    }

    /// Mechanism name for diagnostics and the Table-2 metadata.
    pub fn kind_name(&self) -> &'static str {
        match &self.kind {
            MechanismKind::Parallel { .. } => "parallel",
            MechanismKind::For { construct } => match construct.schedule() {
                Schedule::StaticBlock => "for(staticBlock)",
                Schedule::StaticCyclic => "for(staticCyclic)",
                Schedule::Dynamic { .. } => "for(dynamic)",
                Schedule::Guided { .. } => "for(guided)",
                Schedule::BlockCyclic { .. } => "for(blockCyclic)",
                Schedule::Adaptive { .. } => "for(adaptive)",
            },
            MechanismKind::BarrierBefore => "barrierBefore",
            MechanismKind::BarrierAfter => "barrierAfter",
            MechanismKind::MasterGate { .. } => "master",
            MechanismKind::SingleGate { .. } => "single",
            MechanismKind::Critical { .. } => "critical",
            MechanismKind::Replicated { .. } => "replicated",
            MechanismKind::Reader { .. } => "reader",
            MechanismKind::Writer { .. } => "writer",
            MechanismKind::ReduceAfter { .. } => "reduce",
            MechanismKind::Custom { .. } => "custom",
            MechanismKind::Task { .. } => "task",
            MechanismKind::Taskloop { .. } => "taskloop",
        }
    }

    pub(crate) fn region_config(&self) -> Option<RegionConfig> {
        match &self.kind {
            MechanismKind::Parallel {
                threads,
                nested,
                cancellable,
                stall_deadline,
                pooled,
                runtime,
            } => {
                let mut cfg = RegionConfig::new();
                if let Some(t) = threads {
                    cfg = cfg.threads(*t);
                }
                if let Some(n) = nested {
                    cfg = cfg.nested(*n);
                }
                if *cancellable {
                    cfg = cfg.cancellable(true);
                }
                if let Some(d) = stall_deadline {
                    cfg = cfg.stall_deadline(*d);
                }
                if let Some(p) = pooled {
                    cfg = cfg.pooled(*p);
                }
                if let Some(rt) = runtime {
                    cfg = cfg.runtime(rt);
                }
                Some(cfg)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_order_barriers_outermost() {
        assert!(Mechanism::barrier_before().layer() < Mechanism::parallel().layer());
        assert!(Mechanism::parallel().layer() < Mechanism::master().layer());
        assert!(Mechanism::master().layer() < Mechanism::critical().layer());
        assert!(Mechanism::critical().layer() < Mechanism::for_loop(Schedule::StaticBlock).layer());
        assert!(
            Mechanism::for_loop(Schedule::StaticBlock).layer()
                < Mechanism::reduce_after(|| {}).layer()
        );
        assert!(Mechanism::reduce_after(|| {}).layer() < Mechanism::barrier_after().layer());
    }

    #[test]
    fn kind_names_include_schedule() {
        assert_eq!(
            Mechanism::for_loop(Schedule::StaticCyclic).kind_name(),
            "for(staticCyclic)"
        );
        assert_eq!(
            Mechanism::for_loop(Schedule::DYNAMIC).kind_name(),
            "for(dynamic)"
        );
        assert_eq!(
            Mechanism::for_loop(Schedule::ADAPTIVE).kind_name(),
            "for(adaptive)"
        );
        assert_eq!(Mechanism::parallel().kind_name(), "parallel");
    }

    #[test]
    #[should_panic(expected = "only applies")]
    fn threads_on_non_parallel_panics() {
        let _ = Mechanism::master().threads(4);
    }

    #[test]
    fn region_config_carries_threads() {
        let cfg = Mechanism::parallel().threads(7).region_config().unwrap();
        assert_eq!(cfg, RegionConfig::new().threads(7));
        assert!(Mechanism::master().region_config().is_none());
    }

    #[test]
    fn region_config_carries_robustness_settings() {
        let d = std::time::Duration::from_millis(750);
        let cfg = Mechanism::parallel()
            .threads(2)
            .cancellable()
            .stall_deadline(d)
            .region_config()
            .unwrap();
        assert_eq!(
            cfg,
            RegionConfig::new()
                .threads(2)
                .cancellable(true)
                .stall_deadline(d)
        );
    }

    #[test]
    #[should_panic(expected = "only applies")]
    fn cancellable_on_non_parallel_panics() {
        let _ = Mechanism::critical().cancellable();
    }

    #[test]
    fn region_config_carries_runtime() {
        let rt = aomp::Runtime::builder().threads(2).build();
        let cfg = Mechanism::parallel().runtime(&rt).region_config().unwrap();
        assert_eq!(cfg, RegionConfig::new().runtime(&rt));
        let other = aomp::Runtime::builder().threads(2).build();
        assert_ne!(cfg, RegionConfig::new().runtime(&other));
    }

    #[test]
    #[should_panic(expected = "only applies")]
    fn runtime_on_non_parallel_panics() {
        let rt = aomp::Runtime::builder().build();
        let _ = Mechanism::master().runtime(&rt);
    }
}
