//! Join points: the interceptable events of the base program.
//!
//! In AOmpLib every mechanism "acts upon a set of method calls in the base
//! program (i.e., a joinpoint in AOP terminology)" (§III-A). The Rust
//! mapping reifies each intercepted method execution as a [`JoinPoint`]
//! value handed to pointcuts and custom advice.

use aomp::range::LoopRange;

/// The shape of an intercepted method execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinPointKind {
    /// A plain `void`-like method execution ([`crate::call`]).
    Plain,
    /// A *for method*: first three parameters are the loop
    /// `(start, end, step)` ([`crate::call_for`]).
    ForMethod,
    /// A value-returning method execution ([`crate::call_value`]).
    Value,
}

impl JoinPointKind {
    /// Lower-case name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            JoinPointKind::Plain => "plain",
            JoinPointKind::ForMethod => "for-method",
            JoinPointKind::Value => "value",
        }
    }
}

/// A reified method execution, visible to pointcuts and custom advice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPoint<'a> {
    /// Qualified method name, conventionally `Type.method` (the paper's
    /// `Linpack.dgefa`). Trait implementations can use
    /// `Trait.method` so a single pointcut binds to every implementor —
    /// the paper's "pointcuts defined over Java interfaces".
    pub name: &'a str,
    /// Join point shape.
    pub kind: JoinPointKind,
    /// The loop range for [`JoinPointKind::ForMethod`] join points.
    pub range: Option<LoopRange>,
}

impl<'a> JoinPoint<'a> {
    /// A plain method-execution join point.
    pub fn plain(name: &'a str) -> Self {
        Self {
            name,
            kind: JoinPointKind::Plain,
            range: None,
        }
    }

    /// A for-method join point carrying its iteration range.
    pub fn for_method(name: &'a str, range: LoopRange) -> Self {
        Self {
            name,
            kind: JoinPointKind::ForMethod,
            range: Some(range),
        }
    }

    /// A value-returning join point.
    pub fn value(name: &'a str) -> Self {
        Self {
            name,
            kind: JoinPointKind::Value,
            range: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(JoinPoint::plain("A.m").kind, JoinPointKind::Plain);
        let jp = JoinPoint::for_method("A.f", LoopRange::upto(0, 10));
        assert_eq!(jp.kind, JoinPointKind::ForMethod);
        assert_eq!(jp.range.unwrap().count(), 10);
        assert_eq!(JoinPoint::value("A.v").kind, JoinPointKind::Value);
    }

    #[test]
    fn kind_names() {
        assert_eq!(JoinPointKind::Plain.name(), "plain");
        assert_eq!(JoinPointKind::ForMethod.name(), "for-method");
        assert_eq!(JoinPointKind::Value.name(), "value");
    }
}
