//! Aspect modules: named, pluggable bundles of pointcut→mechanism
//! bindings — the Rust analogue of a concrete AspectJ aspect extending
//! the library's abstract aspects (paper Figures 4 and 7).

use crate::mechanism::Mechanism;
use crate::pointcut::Pointcut;

/// One pointcut→mechanism binding inside an aspect module.
#[derive(Debug)]
pub struct Binding {
    /// Which join points the mechanism applies to.
    pub pointcut: Pointcut,
    /// The attached semantics.
    pub mechanism: Mechanism,
}

/// A named module of bindings, deployable into the
/// [`Weaver`](crate::weaver::Weaver). Equivalent to one concrete aspect —
/// e.g. the paper Figure 7 `ParallelLinpack` aspect becomes:
///
/// ```
/// use aomp_weaver::prelude::*;
///
/// let linpack = AspectModule::builder("ParallelLinpack")
///     .bind(Pointcut::call("Linpack.dgefa"), Mechanism::parallel())
///     .bind(Pointcut::call("Linpack.reduceAllCols"), Mechanism::for_loop(Schedule::StaticBlock))
///     .bind(
///         Pointcut::calls(["Linpack.interchange", "Linpack.dscal"]),
///         Mechanism::master(),
///     )
///     .bind(Pointcut::call("Linpack.interchange"), Mechanism::barrier_before())
///     .bind(
///         Pointcut::calls(["Linpack.reduceAllCols", "Linpack.interchange", "Linpack.dscal"]),
///         Mechanism::barrier_after(),
///     )
///     .build();
/// assert_eq!(linpack.name(), "ParallelLinpack");
/// assert_eq!(linpack.bindings().len(), 5);
/// ```
#[derive(Debug)]
pub struct AspectModule {
    name: String,
    bindings: Vec<Binding>,
}

impl AspectModule {
    /// Start building a module named `name`.
    pub fn builder(name: impl Into<String>) -> AspectBuilder {
        AspectBuilder {
            name: name.into(),
            bindings: Vec::new(),
        }
    }

    /// Module name (diagnostics, deployment listings).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module's bindings, in declaration order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }
}

/// Builder for [`AspectModule`].
#[derive(Debug)]
pub struct AspectBuilder {
    name: String,
    bindings: Vec<Binding>,
}

impl AspectBuilder {
    /// Attach `mechanism` to the join points selected by `pointcut`.
    pub fn bind(mut self, pointcut: Pointcut, mechanism: Mechanism) -> Self {
        self.bindings.push(Binding {
            pointcut,
            mechanism,
        });
        self
    }

    /// Finish the module.
    pub fn build(self) -> AspectModule {
        AspectModule {
            name: self.name,
            bindings: self.bindings,
        }
    }
}

/// Convenience: a combined *parallel for* aspect (paper §III-D — combined
/// constructs are aspects enclosing several mechanisms): the method named
/// by `for_method` is both a parallel region and a work-shared for.
pub fn parallel_for(
    name: impl Into<String>,
    for_method: &str,
    schedule: aomp::schedule::Schedule,
    threads: Option<usize>,
) -> AspectModule {
    let mut parallel = Mechanism::parallel();
    if let Some(t) = threads {
        parallel = parallel.threads(t);
    }
    AspectModule::builder(name)
        .bind(Pointcut::call(for_method), parallel)
        .bind(Pointcut::call(for_method), Mechanism::for_loop(schedule))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aomp::schedule::Schedule;

    #[test]
    fn builder_preserves_order() {
        let m = AspectModule::builder("A")
            .bind(Pointcut::call("x"), Mechanism::barrier_before())
            .bind(Pointcut::call("y"), Mechanism::master())
            .build();
        assert_eq!(m.bindings()[0].mechanism.kind_name(), "barrierBefore");
        assert_eq!(m.bindings()[1].mechanism.kind_name(), "master");
    }

    #[test]
    fn parallel_for_combines_two_bindings() {
        let m = parallel_for("PF", "M.loop", Schedule::StaticCyclic, Some(3));
        assert_eq!(m.bindings().len(), 2);
        assert_eq!(m.bindings()[0].mechanism.kind_name(), "parallel");
        assert_eq!(m.bindings()[1].mechanism.kind_name(), "for(staticCyclic)");
    }
}
