//! The weaver: deploys aspect modules and composes their mechanisms
//! around join points at run time.
//!
//! AspectJ weaves at compile or load time; the Rust mapping dispatches at
//! the join-point shims ([`call`], [`call_for`], [`call_value`]), which
//! the `aomp-macros` attribute macros generate in the position where the
//! AspectJ weaver would have rewritten the method (paper Figure 12). With
//! no deployed aspects a shim is a direct call — the unplugged program is
//! the sequential program.
//!
//! ## Composition order
//!
//! When several mechanisms match one join point they wrap it in a fixed,
//! deterministic order (outermost first): barriers-before → parallel
//! region → master/single gate → critical/reader/writer/task → custom
//! advice → for/taskloop work-sharing → body; then reduce points (team barrier, master
//! merges, team barrier) and barriers-after. Barriers bind to the team
//! that is current where they execute: a `@BarrierBefore` on a parallel
//! method synchronises the *enclosing* team (no-op outside any region).

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use aomp::ctx;
use aomp::range::LoopRange;
use aomp::region::{parallel_with, RegionConfig};

use crate::aspect::AspectModule;
use crate::joinpoint::{JoinPoint, JoinPointKind};
use crate::mechanism::{Mechanism, MechanismKind};

/// Identifies one deployment, for later [`Weaver::undeploy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AspectHandle(u64);

struct Deployed {
    id: u64,
    module: Arc<AspectModule>,
    /// Disabled modules stay deployed but match nothing — a cheaper
    /// toggle than undeploy/redeploy for A/B experiments.
    enabled: AtomicBool,
}

/// The aspect registry. Usually accessed through [`Weaver::global`].
pub struct Weaver {
    deployed: RwLock<Vec<Deployed>>,
    next_id: AtomicU64,
    /// Dispatch counters per join-point name (matched dispatches only;
    /// the unmatched fast path stays counter-free).
    stats: Mutex<HashMap<String, u64>>,
}

impl Default for Weaver {
    fn default() -> Self {
        Self::new()
    }
}

impl Weaver {
    /// A fresh, empty weaver (tests; embedded registries).
    pub fn new() -> Self {
        Self {
            deployed: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(1),
            stats: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide weaver that the [`call`]/[`call_for`]/
    /// [`call_value`] shims consult.
    pub fn global() -> &'static Weaver {
        static GLOBAL: OnceLock<Weaver> = OnceLock::new();
        GLOBAL.get_or_init(Weaver::new)
    }

    /// Deploy (plug in) an aspect module — the paper's load-time weaving.
    /// Later deployments wrap *inside* earlier ones when layers tie.
    pub fn deploy(&self, module: AspectModule) -> AspectHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.deployed.write().push(Deployed {
            id,
            module: Arc::new(module),
            enabled: AtomicBool::new(true),
        });
        AspectHandle(id)
    }

    /// Enable or disable a deployed module without undeploying it.
    /// Returns `false` if the handle is unknown.
    pub fn set_enabled(&self, handle: AspectHandle, enabled: bool) -> bool {
        let dep = self.deployed.read();
        match dep.iter().find(|d| d.id == handle.0) {
            Some(d) => {
                d.enabled.store(enabled, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Is the module deployed *and* enabled?
    pub fn is_enabled(&self, handle: AspectHandle) -> bool {
        self.deployed
            .read()
            .iter()
            .any(|d| d.id == handle.0 && d.enabled.load(Ordering::Acquire))
    }

    /// Snapshot of matched-dispatch counts per join-point name (a
    /// development aid, like AspectJ's weave-info).
    pub fn stats(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .stats
            .lock()
            .iter()
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort();
        v
    }

    /// Clear the dispatch counters.
    pub fn reset_stats(&self) {
        self.stats.lock().clear();
    }

    fn record(&self, name: &str) {
        *self.stats.lock().entry(name.to_owned()).or_insert(0) += 1;
    }

    /// Undeploy (unplug) a module. Returns it if it was deployed.
    pub fn undeploy(&self, handle: AspectHandle) -> Option<Arc<AspectModule>> {
        let mut dep = self.deployed.write();
        let idx = dep.iter().position(|d| d.id == handle.0)?;
        Some(dep.remove(idx).module)
    }

    /// Remove every deployed module — back to the sequential program.
    pub fn undeploy_all(&self) {
        self.deployed.write().clear();
    }

    /// Names of currently deployed modules, in deployment order.
    pub fn deployed_names(&self) -> Vec<String> {
        self.deployed
            .read()
            .iter()
            .map(|d| d.module.name().to_owned())
            .collect()
    }

    /// Is this handle still deployed?
    pub fn is_deployed(&self, handle: AspectHandle) -> bool {
        self.deployed.read().iter().any(|d| d.id == handle.0)
    }

    /// Deploy `module` for the duration of `f`, then undeploy — a
    /// build-scoped weaving.
    pub fn with_deployed<R>(&self, module: AspectModule, f: impl FnOnce() -> R) -> R {
        let h = self.deploy(module);
        struct Undeploy<'a>(&'a Weaver, AspectHandle);
        impl Drop for Undeploy<'_> {
            fn drop(&mut self) {
                self.0.undeploy(self.1);
            }
        }
        let _guard = Undeploy(self, h);
        f()
    }

    /// Snapshot the mechanisms matching `jp`, sorted stably by layer.
    /// Returns the owning module Arcs (kept alive for the dispatch) plus
    /// `(module index, binding index)` pairs.
    fn matched(&self, jp: &JoinPoint<'_>) -> (Vec<Arc<AspectModule>>, Vec<(usize, usize)>) {
        let dep = self.deployed.read();
        let mut modules = Vec::new();
        let mut picks: Vec<(usize, usize)> = Vec::new();
        for d in dep.iter() {
            if !d.enabled.load(Ordering::Acquire) {
                continue;
            }
            let mut used = false;
            for (bi, b) in d.module.bindings().iter().enumerate() {
                if b.pointcut.matches(jp) {
                    if !used {
                        modules.push(Arc::clone(&d.module));
                        used = true;
                    }
                    picks.push((modules.len() - 1, bi));
                }
            }
        }
        picks.sort_by_key(|&(mi, bi)| modules[mi].bindings()[bi].mechanism.layer());
        (modules, picks)
    }
}

/// Phase-grouped view of the matched mechanisms.
struct Plan<'a> {
    pre_barriers: usize,
    region: Option<RegionConfig>,
    gate: Option<&'a MechanismKind>,
    locks: Vec<&'a MechanismKind>,
    customs: Vec<&'a MechanismKind>,
    for_mech: Option<&'a aomp::workshare::ForConstruct>,
    taskloop_mech: Option<&'a aomp::deps::TaskloopConstruct>,
    reduces: Vec<&'a MechanismKind>,
    post_barriers: usize,
}

impl<'a> Plan<'a> {
    fn build(mechs: impl Iterator<Item = &'a Mechanism>, jp: &JoinPoint<'_>) -> Self {
        let mut plan = Plan {
            pre_barriers: 0,
            region: None,
            gate: None,
            locks: Vec::new(),
            customs: Vec::new(),
            for_mech: None,
            taskloop_mech: None,
            reduces: Vec::new(),
            post_barriers: 0,
        };
        for m in mechs {
            match &m.kind {
                MechanismKind::BarrierBefore => plan.pre_barriers += 1,
                MechanismKind::Parallel { .. } => {
                    plan.region = m.region_config();
                }
                MechanismKind::MasterGate { .. } | MechanismKind::SingleGate { .. } => {
                    if plan.gate.is_none() {
                        plan.gate = Some(&m.kind);
                    }
                }
                MechanismKind::Critical { .. }
                | MechanismKind::Replicated { .. }
                | MechanismKind::Reader { .. }
                | MechanismKind::Writer { .. }
                | MechanismKind::Task { .. } => {
                    plan.locks.push(&m.kind);
                }
                MechanismKind::Custom { .. } => plan.customs.push(&m.kind),
                MechanismKind::For { construct } => {
                    if jp.kind == JoinPointKind::ForMethod && plan.for_mech.is_none() {
                        plan.for_mech = Some(construct);
                    }
                    // A @For binding on a non-for join point is inert.
                }
                MechanismKind::Taskloop { construct } => {
                    if jp.kind == JoinPointKind::ForMethod && plan.taskloop_mech.is_none() {
                        plan.taskloop_mech = Some(construct);
                    }
                    // Inert off for methods, like @For. When both @For
                    // and @Taskloop match, @For wins (it was bound at
                    // the same layer; the static schedule is the safer
                    // default) — see the dispatch in `call_for`.
                }
                MechanismKind::ReduceAfter { .. } => plan.reduces.push(&m.kind),
                MechanismKind::BarrierAfter => plan.post_barriers += 1,
            }
        }
        plan
    }

    fn run_reduces_and_postbarriers(&self) {
        for r in &self.reduces {
            if let MechanismKind::ReduceAfter { action } = r {
                ctx::barrier();
                if ctx::thread_id() == 0 {
                    action();
                }
                ctx::barrier();
            }
        }
    }
}

/// Recursively wrap `f` in the lock mechanisms, preserving binding order.
///
/// `combine` controls the `Replicated` mechanism: `true` lets a combiner
/// batch the section onto another team thread (sound for the plain/for
/// join-point paths, whose bodies are `Fn + Sync` and whose wrappers
/// close only over `&`s to `Sync` weaver state), `false` forces inline
/// execution on the calling thread (the value path, whose `FnOnce` and
/// result need not be `Send`).
fn wrap_locks<R>(locks: &[&MechanismKind], combine: bool, f: &mut dyn FnMut() -> R) -> R {
    match locks.split_first() {
        None => f(),
        Some((l, rest)) => match l {
            MechanismKind::Critical { handle } => handle.run(|| wrap_locks(rest, combine, f)),
            MechanismKind::Replicated { combiner } => {
                if combine {
                    // SAFETY: everything reachable from `f` on these
                    // paths is shared weaver state (`&`s to `Sync`
                    // mechanisms, the join point, and the `Fn + Sync`
                    // body) plus stack closures composed of the same —
                    // all safe to run from the combining team thread
                    // while this one parks. `R` is `()` on these paths.
                    unsafe { combiner.run_unchecked(|| wrap_locks(rest, combine, f)) }
                } else {
                    combiner.run_inline(|| wrap_locks(rest, combine, f))
                }
            }
            MechanismKind::Reader { rw } => rw.read(|| wrap_locks(rest, combine, f)),
            MechanismKind::Writer { rw } => rw.write(|| wrap_locks(rest, combine, f)),
            MechanismKind::Task { group, deps } => {
                // The execution becomes an *undeferred* dependence node:
                // wait for the predecessors the clauses imply, run the
                // rest of the stack inline, release successors. Inline
                // execution keeps this sound on every path (including
                // the non-`Send` value path).
                group.run_undeferred(deps.iter().copied(), || wrap_locks(rest, combine, f))
            }
            _ => unreachable!("non-lock mechanism in lock phase"),
        },
    }
}

/// Recursively wrap a plain body in custom advice.
fn wrap_customs(customs: &[&MechanismKind], jp: &JoinPoint<'_>, f: &mut dyn FnMut()) {
    match customs.split_first() {
        None => f(),
        Some((c, rest)) => match c {
            MechanismKind::Custom { advice } => {
                advice.around(jp, &mut || wrap_customs(rest, jp, f))
            }
            _ => unreachable!("non-custom mechanism in custom phase"),
        },
    }
}

/// Recursively wrap a for body in custom for-advice, threading the
/// (possibly rewritten) range inward.
fn wrap_customs_for(
    customs: &[&MechanismKind],
    jp: &JoinPoint<'_>,
    range: LoopRange,
    f: &mut dyn FnMut(i64, i64, i64),
) {
    match customs.split_first() {
        None => f(range.start, range.end, range.step),
        Some((c, rest)) => match c {
            MechanismKind::Custom { advice } => advice.around_for(jp, range, &mut |lo, hi, st| {
                wrap_customs_for(rest, jp, LoopRange::new(lo, hi, st), f)
            }),
            _ => unreachable!("non-custom mechanism in custom phase"),
        },
    }
}

fn run_gated(plan: &Plan<'_>, jp: &JoinPoint<'_>, body: &(dyn Fn() + Sync)) {
    let gated = || {
        wrap_locks(&plan.locks, true, &mut || {
            wrap_customs(&plan.customs, jp, &mut || body());
        })
    };
    match plan.gate {
        None => gated(),
        Some(MechanismKind::MasterGate { construct }) => {
            construct.run_nowait(gated);
        }
        Some(MechanismKind::SingleGate { construct }) => {
            construct.run_nowait(gated);
        }
        Some(_) => unreachable!("non-gate mechanism in gate phase"),
    }
    plan.run_reduces_and_postbarriers();
}

/// Expose a plain method execution as a join point (`Type.method` name
/// convention) and let deployed aspects act on it. With no matching
/// aspects this is exactly `body()`.
///
/// `body` must be `Fn + Sync` because a matching `@Parallel` mechanism
/// executes it on every team thread.
pub fn call<F>(name: &str, body: F)
where
    F: Fn() + Sync,
{
    let jp = JoinPoint::plain(name);
    let (modules, picks) = Weaver::global().matched(&jp);
    if picks.is_empty() {
        return body();
    }
    Weaver::global().record(name);
    let plan = Plan::build(
        picks
            .iter()
            .map(|&(mi, bi)| &modules[mi].bindings()[bi].mechanism),
        &jp,
    );
    for _ in 0..plan.pre_barriers {
        ctx::barrier();
    }
    match plan.region.clone() {
        Some(cfg) => parallel_with(cfg, || run_gated(&plan, &jp, &body)),
        None => run_gated(&plan, &jp, &body),
    }
    for _ in 0..plan.post_barriers {
        ctx::barrier();
    }
}

/// Expose a *for method* as a join point: `body(lo, hi, step)` receives
/// the (re)written iteration bounds exactly as the paper's for methods
/// receive their first three parameters. With no matching aspects the
/// body runs once with the full range.
pub fn call_for<F>(name: &str, range: LoopRange, body: F)
where
    F: Fn(i64, i64, i64) + Sync,
{
    let jp = JoinPoint::for_method(name, range);
    let (modules, picks) = Weaver::global().matched(&jp);
    if picks.is_empty() {
        return body(range.start, range.end, range.step);
    }
    Weaver::global().record(name);
    let plan = Plan::build(
        picks
            .iter()
            .map(|&(mi, bi)| &modules[mi].bindings()[bi].mechanism),
        &jp,
    );
    for _ in 0..plan.pre_barriers {
        ctx::barrier();
    }
    let inner = || {
        let run_loop =
            || {
                wrap_locks(&plan.locks, true, &mut || {
                    wrap_customs_for(&plan.customs, &jp, range, &mut |lo, hi, st| match plan
                        .for_mech
                    {
                        Some(fc) => fc.execute(LoopRange::new(lo, hi, st), &body),
                        None => match plan.taskloop_mech {
                            Some(tl) => tl.execute(LoopRange::new(lo, hi, st), &body),
                            None => body(lo, hi, st),
                        },
                    });
                })
            };
        match plan.gate {
            None => run_loop(),
            Some(MechanismKind::MasterGate { construct }) => {
                construct.run_nowait(run_loop);
            }
            Some(MechanismKind::SingleGate { construct }) => {
                construct.run_nowait(run_loop);
            }
            Some(_) => unreachable!(),
        }
        plan.run_reduces_and_postbarriers();
    };
    match plan.region.clone() {
        Some(cfg) => parallel_with(cfg, inner),
        None => inner(),
    }
    for _ in 0..plan.post_barriers {
        ctx::barrier();
    }
}

/// Like [`call_for`] but the body also receives the
/// [`ForScope`](aomp::workshare::ForScope), enabling `@Ordered` sections
/// inside woven for methods (the paper supports `@Ordered` only within
/// the calling context of a for method, §III-C).
pub fn call_for_scoped<F>(name: &str, range: LoopRange, body: F)
where
    F: Fn(LoopRange, &aomp::workshare::ForScope<'_>) + Sync,
{
    let jp = JoinPoint::for_method(name, range);
    let (modules, picks) = Weaver::global().matched(&jp);
    if picks.is_empty() {
        assert!(
            !ctx::in_parallel(),
            "call_for_scoped(`{name}`) inside a parallel region requires a woven @For mechanism \
             (per-thread ordered state would otherwise deadlock)"
        );
        // Sequential semantics: one pass over the full range with a
        // scope that runs ordered sections inline.
        let fallback = aomp::workshare::ForConstruct::new(aomp::schedule::Schedule::StaticBlock);
        return fallback.execute_scoped(range, |r, scope| body(r, scope));
    }
    Weaver::global().record(name);
    let plan = Plan::build(
        picks
            .iter()
            .map(|&(mi, bi)| &modules[mi].bindings()[bi].mechanism),
        &jp,
    );
    for _ in 0..plan.pre_barriers {
        ctx::barrier();
    }
    let inner = || {
        let run_loop = || {
            wrap_locks(&plan.locks, true, &mut || {
                wrap_customs_for(&plan.customs, &jp, range, &mut |lo, hi, st| {
                    let sub = LoopRange::new(lo, hi, st);
                    match plan.for_mech {
                        Some(fc) => fc.execute_scoped(sub, |r, scope| body(r, scope)),
                        None => {
                            assert!(
                                !ctx::in_parallel(),
                                "call_for_scoped(`{name}`) woven into a team needs a @For \
                                 mechanism for its ordered state"
                            );
                            let fallback = aomp::workshare::ForConstruct::new(
                                aomp::schedule::Schedule::StaticBlock,
                            );
                            fallback.execute_scoped(sub, |r, scope| body(r, scope));
                        }
                    }
                });
            })
        };
        match plan.gate {
            None => run_loop(),
            Some(MechanismKind::MasterGate { construct }) => {
                construct.run_nowait(run_loop);
            }
            Some(MechanismKind::SingleGate { construct }) => {
                construct.run_nowait(run_loop);
            }
            Some(_) => unreachable!(),
        }
        plan.run_reduces_and_postbarriers();
    };
    match plan.region.clone() {
        Some(cfg) => parallel_with(cfg, inner),
        None => inner(),
    }
    for _ in 0..plan.post_barriers {
        ctx::barrier();
    }
}

/// Expose a value-returning method execution as a join point. Supports
/// gating (`@Master`/`@Single` with result broadcast to the team — paper
/// §III-C), locks and barriers; `@Parallel` and `@For` do not apply to
/// value join points and cause a panic, matching the paper's model where
/// parallel regions and for methods are `void`-like.
pub fn call_value<T, F>(name: &str, f: F) -> T
where
    T: Clone + Send + 'static,
    F: FnOnce() -> T,
{
    let jp = JoinPoint::value(name);
    let (modules, picks) = Weaver::global().matched(&jp);
    if picks.is_empty() {
        return f();
    }
    Weaver::global().record(name);
    let plan = Plan::build(
        picks
            .iter()
            .map(|&(mi, bi)| &modules[mi].bindings()[bi].mechanism),
        &jp,
    );
    assert!(
        plan.region.is_none() && plan.for_mech.is_none() && plan.taskloop_mech.is_none(),
        "@Parallel/@For/@Taskloop cannot apply to value-returning join point `{name}`"
    );
    for _ in 0..plan.pre_barriers {
        ctx::barrier();
    }
    let mut f = Some(f);
    let mut locked = || {
        let f = f.take().expect("value body invoked once");
        // `false`: the value body is `FnOnce() -> T` with no `Send`
        // bound, so it must run inline on the calling thread.
        wrap_locks(&plan.locks, false, &mut {
            let mut f = Some(f);
            move || (f.take().expect("value body invoked once"))()
        })
    };
    let value = match plan.gate {
        None => locked(),
        Some(MechanismKind::MasterGate { construct }) => construct.run(locked),
        Some(MechanismKind::SingleGate { construct }) => construct.run(locked),
        Some(_) => unreachable!(),
    };
    plan.run_reduces_and_postbarriers();
    for _ in 0..plan.post_barriers {
        ctx::barrier();
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::CustomAdvice;
    use crate::pointcut::Pointcut;
    use aomp::schedule::Schedule;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering as AO};

    #[test]
    fn unmatched_call_proceeds_directly() {
        let hits = AtomicUsize::new(0);
        call("weaver.unmatched.plain", || {
            hits.fetch_add(1, AO::SeqCst);
        });
        assert_eq!(hits.load(AO::SeqCst), 1);
    }

    #[test]
    fn deploy_undeploy_lifecycle() {
        let w = Weaver::global();
        let before = w.deployed_names().len();
        let h = w.deploy(AspectModule::builder("lifecycle-test").build());
        assert!(w.is_deployed(h));
        assert_eq!(w.deployed_names().len(), before + 1);
        let m = w.undeploy(h).expect("was deployed");
        assert_eq!(m.name(), "lifecycle-test");
        assert!(!w.is_deployed(h));
        assert!(w.undeploy(h).is_none());
    }

    #[test]
    fn parallel_mechanism_runs_team() {
        let hits = AtomicUsize::new(0);
        let aspect = AspectModule::builder("par-test")
            .bind(
                Pointcut::call("weaver.test.par"),
                Mechanism::parallel().threads(4),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.par", || {
                hits.fetch_add(1, AO::SeqCst);
            });
        });
        assert_eq!(hits.load(AO::SeqCst), 4);
        // After undeploy: sequential.
        call("weaver.test.par", || {
            hits.fetch_add(1, AO::SeqCst);
        });
        assert_eq!(hits.load(AO::SeqCst), 5);
    }

    #[test]
    fn parallel_for_composition_covers_range() {
        let sum = AtomicI64::new(0);
        let aspect = crate::aspect::parallel_for(
            "pf-test",
            "weaver.test.pfor",
            Schedule::StaticBlock,
            Some(3),
        );
        Weaver::global().with_deployed(aspect, || {
            call_for(
                "weaver.test.pfor",
                LoopRange::upto(0, 100),
                |lo, hi, step| {
                    let mut local = 0;
                    let mut i = lo;
                    while i < hi {
                        local += i;
                        i += step;
                    }
                    sum.fetch_add(local, AO::SeqCst);
                },
            );
        });
        assert_eq!(sum.load(AO::SeqCst), (0..100).sum::<i64>());
    }

    #[test]
    fn master_gate_on_plain_call() {
        let execs = AtomicUsize::new(0);
        let aspect = AspectModule::builder("master-test")
            .bind(
                Pointcut::call("weaver.test.masterwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(Pointcut::call("weaver.test.master"), Mechanism::master())
            .bind(
                Pointcut::call("weaver.test.master"),
                Mechanism::barrier_after(),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.masterwrap", || {
                call("weaver.test.master", || {
                    execs.fetch_add(1, AO::SeqCst);
                });
            });
        });
        assert_eq!(execs.load(AO::SeqCst), 1, "only the master executes");
    }

    #[test]
    fn value_join_point_broadcasts_from_master() {
        let execs = AtomicUsize::new(0);
        let seen = parking_lot::Mutex::new(Vec::new());
        let aspect = AspectModule::builder("value-test")
            .bind(
                Pointcut::call("weaver.test.valwrap"),
                Mechanism::parallel().threads(3),
            )
            .bind(Pointcut::call("weaver.test.val"), Mechanism::master())
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.valwrap", || {
                let v: i64 = call_value("weaver.test.val", || {
                    execs.fetch_add(1, AO::SeqCst);
                    777
                });
                seen.lock().push(v);
            });
        });
        assert_eq!(execs.load(AO::SeqCst), 1);
        assert_eq!(seen.into_inner(), vec![777, 777, 777]);
    }

    #[test]
    fn critical_mechanism_serialises() {
        struct Racy(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Racy {}
        let racy = Racy(std::cell::UnsafeCell::new(0));
        let racy = &racy; // capture the whole struct, not the UnsafeCell field
        let aspect = AspectModule::builder("crit-test")
            .bind(
                Pointcut::call("weaver.test.critwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(Pointcut::call("weaver.test.crit"), Mechanism::critical())
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.critwrap", || {
                for _ in 0..500 {
                    call("weaver.test.crit", || unsafe { *racy.0.get() += 1 });
                }
            });
        });
        assert_eq!(unsafe { *racy.0.get() }, 2000);
    }

    #[test]
    fn replicated_mechanism_serialises() {
        struct Racy(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Racy {}
        impl Racy {
            fn bump(&self) {
                unsafe { *self.0.get() += 1 }
            }
            fn get(&self) -> u64 {
                unsafe { *self.0.get() }
            }
        }
        let racy = Racy(std::cell::UnsafeCell::new(0));
        let racy = &racy;
        let aspect = AspectModule::builder("repl-test")
            .bind(
                Pointcut::call("weaver.test.replwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(Pointcut::call("weaver.test.repl"), Mechanism::replicated())
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.replwrap", || {
                for _ in 0..500 {
                    call("weaver.test.repl", || racy.bump());
                }
            });
        });
        assert_eq!(racy.get(), 2000);
    }

    #[test]
    fn replicated_value_join_point_runs_inline() {
        // The value path takes a `FnOnce() -> T` with no `Send` bound,
        // so the replicated mechanism must execute it on the calling
        // thread (inline combining) rather than batching it away.
        let seen = parking_lot::Mutex::new(Vec::new());
        let aspect = AspectModule::builder("repl-val-test")
            .bind(
                Pointcut::call("weaver.test.replvalwrap"),
                Mechanism::parallel().threads(3),
            )
            .bind(
                Pointcut::call("weaver.test.replval"),
                Mechanism::replicated_named("weaver.test.replval"),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.replvalwrap", || {
                let me = std::thread::current().id();
                let v: std::thread::ThreadId =
                    call_value("weaver.test.replval", std::thread::current).id();
                assert_eq!(v, me, "value body ran on the calling thread");
                seen.lock().push(v);
            });
        });
        assert_eq!(seen.into_inner().len(), 3);
    }

    #[test]
    fn custom_for_advice_rewrites_range() {
        /// Gives every thread only the even iterations (a deliberately
        /// odd application-specific schedule).
        struct FirstHalf;
        impl CustomAdvice for FirstHalf {
            fn around_for(
                &self,
                _jp: &JoinPoint<'_>,
                range: LoopRange,
                proceed: &mut dyn FnMut(i64, i64, i64),
            ) {
                let mid = range.start + (range.end - range.start) / 2;
                proceed(range.start, mid, range.step);
            }
        }
        let sum = AtomicI64::new(0);
        let aspect = AspectModule::builder("cs-test")
            .bind(
                Pointcut::call("weaver.test.cs"),
                Mechanism::custom(FirstHalf),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call_for("weaver.test.cs", LoopRange::upto(0, 10), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    sum.fetch_add(i, AO::SeqCst);
                    i += step;
                }
            });
        });
        assert_eq!(sum.load(AO::SeqCst), (0..5).sum::<i64>());
    }

    #[test]
    fn reduce_after_runs_once_on_master() {
        let reduced = AtomicUsize::new(0);
        let aspect = AspectModule::builder("reduce-test")
            .bind(
                Pointcut::call("weaver.test.redwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(
                Pointcut::call("weaver.test.red"),
                Mechanism::reduce_after({
                    let _ = ();
                    move || {}
                }),
            )
            .build();
        // Rebuild with a counting action (closures can't see test locals
        // through 'static, so use a static).
        drop(aspect);
        static REDUCED: AtomicUsize = AtomicUsize::new(0);
        REDUCED.store(0, AO::SeqCst);
        let aspect = AspectModule::builder("reduce-test")
            .bind(
                Pointcut::call("weaver.test.redwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(
                Pointcut::call("weaver.test.red"),
                Mechanism::reduce_after(|| {
                    REDUCED.fetch_add(1, AO::SeqCst);
                }),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.redwrap", || {
                call("weaver.test.red", || {
                    reduced.fetch_add(0, AO::SeqCst);
                });
            });
        });
        assert_eq!(
            REDUCED.load(AO::SeqCst),
            1,
            "reduce action runs once per encounter"
        );
    }

    #[test]
    fn glob_pointcut_applies_to_many_methods() {
        let hits = AtomicUsize::new(0);
        let aspect = AspectModule::builder("glob-test")
            .bind(
                Pointcut::glob("GlobDemo.*"),
                Mechanism::parallel().threads(2),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("GlobDemo.alpha", || {
                hits.fetch_add(1, AO::SeqCst);
            });
            call("GlobDemo.beta", || {
                hits.fetch_add(1, AO::SeqCst);
            });
            call("Other.gamma", || {
                hits.fetch_add(1, AO::SeqCst);
            });
        });
        assert_eq!(hits.load(AO::SeqCst), 2 + 2 + 1);
    }

    #[test]
    fn scoped_for_runs_ordered_sections_in_order() {
        let log = parking_lot::Mutex::new(Vec::new());
        let aspect = AspectModule::builder("ordered-test")
            .bind(
                Pointcut::call("weaver.test.orderedwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(
                Pointcut::call("weaver.test.ordered"),
                Mechanism::for_loop(Schedule::StaticCyclic),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.orderedwrap", || {
                call_for_scoped(
                    "weaver.test.ordered",
                    LoopRange::upto(0, 24),
                    |sub, scope| {
                        for i in sub.iter() {
                            scope.ordered(i, || log.lock().push(i));
                        }
                    },
                );
            });
        });
        assert_eq!(*log.lock(), (0..24).collect::<Vec<i64>>());
    }

    #[test]
    fn scoped_for_sequential_fallback_runs_inline() {
        let log = parking_lot::Mutex::new(Vec::new());
        call_for_scoped(
            "weaver.test.ordered.seq",
            LoopRange::upto(0, 5),
            |sub, scope| {
                for i in sub.iter() {
                    scope.ordered(i, || log.lock().push(i));
                }
            },
        );
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disable_enable_toggles_matching() {
        let hits = AtomicUsize::new(0);
        let w = Weaver::global();
        let h = w.deploy(
            AspectModule::builder("toggle-test")
                .bind(
                    Pointcut::call("weaver.test.toggle"),
                    Mechanism::parallel().threads(3),
                )
                .build(),
        );
        let run = || {
            call("weaver.test.toggle", || {
                hits.fetch_add(1, AO::SeqCst);
            })
        };
        run();
        assert_eq!(hits.load(AO::SeqCst), 3);
        assert!(w.set_enabled(h, false));
        assert!(!w.is_enabled(h));
        run();
        assert_eq!(hits.load(AO::SeqCst), 4, "disabled module matches nothing");
        assert!(w.set_enabled(h, true));
        run();
        assert_eq!(hits.load(AO::SeqCst), 7);
        w.undeploy(h);
        assert!(!w.set_enabled(h, true), "unknown handles are rejected");
    }

    #[test]
    fn stats_count_matched_dispatches_only() {
        let w = Weaver::global();
        let h = w.deploy(
            AspectModule::builder("stats-test")
                .bind(
                    Pointcut::call("weaver.test.stats.matched"),
                    Mechanism::critical(),
                )
                .build(),
        );
        for _ in 0..5 {
            call("weaver.test.stats.matched", || {});
            call("weaver.test.stats.unmatched", || {});
        }
        let stats = w.stats();
        let count = stats
            .iter()
            .find(|(n, _)| n == "weaver.test.stats.matched")
            .map(|(_, c)| *c);
        assert!(count >= Some(5));
        assert!(!stats
            .iter()
            .any(|(n, _)| n == "weaver.test.stats.unmatched"));
        w.undeploy(h);
    }

    #[test]
    fn task_mechanism_orders_dependent_join_points() {
        // Writer join point then reader join point, bound with out/in
        // deps on one tag in one shared group: the runs stay ordered
        // even when each member of a team calls both.
        use aomp::deps::{Dep, DepGroup, Tag};
        static CELL: AtomicI64 = AtomicI64::new(0);
        static BAD_READS: AtomicUsize = AtomicUsize::new(0);
        CELL.store(0, AO::SeqCst);
        BAD_READS.store(0, AO::SeqCst);
        let group = DepGroup::new();
        let aspect = AspectModule::builder("task-dep-test")
            .bind(
                Pointcut::call("weaver.test.taskwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(
                Pointcut::call("weaver.test.task.write"),
                Mechanism::task_in(&group).depends([Dep::output(Tag::from("cell"))]),
            )
            .bind(
                Pointcut::call("weaver.test.task.read"),
                Mechanism::task_in(&group).depends([Dep::input(Tag::from("cell"))]),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.taskwrap", || {
                call("weaver.test.task.write", || {
                    CELL.fetch_add(1, AO::SeqCst);
                });
                call("weaver.test.task.read", || {
                    // Every read must observe at least its own thread's
                    // preceding write (its in-dep waits on the last
                    // out-dep wired before it).
                    if CELL.load(AO::SeqCst) == 0 {
                        BAD_READS.fetch_add(1, AO::SeqCst);
                    }
                });
            });
        });
        assert_eq!(CELL.load(AO::SeqCst), 4);
        assert_eq!(BAD_READS.load(AO::SeqCst), 0);
    }

    #[test]
    fn taskloop_mechanism_covers_range() {
        let sum = AtomicI64::new(0);
        let aspect = AspectModule::builder("taskloop-test")
            .bind(
                Pointcut::call("weaver.test.tlwrap"),
                Mechanism::parallel().threads(4),
            )
            .bind(
                Pointcut::call("weaver.test.tl"),
                Mechanism::taskloop_min_chunk(4),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            call("weaver.test.tlwrap", || {
                call_for("weaver.test.tl", LoopRange::upto(0, 100), |lo, hi, step| {
                    let mut i = lo;
                    while i < hi {
                        sum.fetch_add(i, AO::SeqCst);
                        i += step;
                    }
                });
            });
        });
        assert_eq!(sum.load(AO::SeqCst), (0..100).sum::<i64>());
    }

    #[test]
    fn taskloop_sequential_fallback_runs_inline() {
        let sum = AtomicI64::new(0);
        let aspect = AspectModule::builder("taskloop-seq-test")
            .bind(Pointcut::call("weaver.test.tlseq"), Mechanism::taskloop())
            .build();
        Weaver::global().with_deployed(aspect, || {
            call_for(
                "weaver.test.tlseq",
                LoopRange::upto(0, 10),
                |lo, hi, step| {
                    let mut i = lo;
                    while i < hi {
                        sum.fetch_add(i, AO::SeqCst);
                        i += step;
                    }
                },
            );
        });
        assert_eq!(sum.load(AO::SeqCst), (0..10).sum::<i64>());
    }

    #[test]
    #[should_panic(expected = "depends() only applies")]
    fn depends_on_non_task_mechanism_panics() {
        let _ = Mechanism::critical().depends([aomp::deps::Dep::input("cell")]);
    }

    #[test]
    #[should_panic(expected = "cannot apply to value-returning")]
    fn parallel_on_value_join_point_panics() {
        let aspect = AspectModule::builder("bad-value")
            .bind(
                Pointcut::call("weaver.test.badval"),
                Mechanism::parallel().threads(2),
            )
            .build();
        Weaver::global().with_deployed(aspect, || {
            let _: i64 = call_value("weaver.test.badval", || 1);
        });
    }
}
