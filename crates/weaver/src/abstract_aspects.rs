//! Abstract library aspects — the paper's Figure 4 idiom.
//!
//! In AOmpLib's pointcut style, "the pointcut style involves the creation
//! of an aspect module that extends the abstract aspect `ParallelRegion`"
//! and configures it by *overriding methods* (e.g.
//! `int numThreads() { return 4; }`). The Rust mapping: each abstract
//! aspect is a trait with an abstract pointcut method and overridable
//! default configuration methods; a concrete aspect is a type
//! implementing the trait, turned into a deployable
//! [`AspectModule`] by [`concrete`].
//!
//! ```
//! use aomp_weaver::abstract_aspects::{concrete, ParallelRegion};
//! use aomp_weaver::prelude::*;
//!
//! // Paper Figure 4: a concrete aspect for a parallel region.
//! struct MyParallelRegion;
//! impl ParallelRegion for MyParallelRegion {
//!     fn parallel_method(&self) -> Pointcut {
//!         Pointcut::call("Demo.someMethod")
//!     }
//!     fn num_threads(&self) -> Option<usize> {
//!         Some(4) // the paper's `int numThreads() { return(4); }`
//!     }
//! }
//!
//! let module = concrete("MyParallelRegion", MyParallelRegion);
//! let handle = Weaver::global().deploy(module);
//! # use std::sync::atomic::{AtomicUsize, Ordering};
//! # let hits = AtomicUsize::new(0);
//! aomp_weaver::call("Demo.someMethod", || { hits.fetch_add(1, Ordering::SeqCst); });
//! # assert_eq!(hits.load(Ordering::SeqCst), 4);
//! Weaver::global().undeploy(handle);
//! ```

use aomp::critical::CriticalHandle;
use aomp::schedule::Schedule;
use aomp::sync::RwConstruct;
use std::sync::Arc;

use crate::aspect::{AspectBuilder, AspectModule};
use crate::mechanism::Mechanism;
use crate::pointcut::Pointcut;

/// The abstract parallel-region aspect (paper Figures 4 and 9): define
/// [`parallel_method`](Self::parallel_method), optionally override the
/// configuration methods.
pub trait ParallelRegion {
    /// The abstract pointcut: which method executions become parallel
    /// regions.
    fn parallel_method(&self) -> Pointcut;

    /// Team size (`numThreads()` in the paper); `None` = runtime default.
    fn num_threads(&self) -> Option<usize> {
        None
    }

    /// Whether nested encounters create real teams.
    fn nested(&self) -> Option<bool> {
        None
    }
}

/// The abstract for work-sharing aspect (paper Figure 10/11): define
/// [`for_method`](Self::for_method), optionally override the schedule.
pub trait ForWorkshare {
    /// The abstract pointcut: which for methods are work-shared.
    fn for_method(&self) -> Pointcut;

    /// Loop schedule (`scheduleForStatic`/`dynamicfor` in the paper).
    fn schedule(&self) -> Schedule {
        Schedule::StaticBlock
    }

    /// Suppress the trailing barrier of chunked schedules.
    fn nowait(&self) -> bool {
        false
    }
}

/// The abstract critical aspect with its two lock policies (paper
/// §III-C: `criticalUsingCapturedLock` vs `criticalUsingSharedLock`).
pub trait CriticalAspect {
    /// The abstract pointcut: which methods run in mutual exclusion.
    fn critical_method(&self) -> Pointcut;

    /// The lock to use: default is one fresh lock per concrete aspect
    /// (the shared-lock variant — "each aspect instance can use a
    /// different lock"). Override to return a named or captured handle.
    fn lock(&self) -> CriticalHandle {
        CriticalHandle::new()
    }
}

/// The abstract barrier aspect: before/after pointcuts (paper Figure 7's
/// `barrierBefore()` / `barrierAfter()`).
pub trait BarrierAspect {
    /// Join points preceded by a team barrier.
    fn barrier_before(&self) -> Pointcut {
        Pointcut::None
    }

    /// Join points followed by a team barrier.
    fn barrier_after(&self) -> Pointcut {
        Pointcut::None
    }
}

/// The abstract master aspect (paper Figure 7's `master()`).
pub trait MasterAspect {
    /// Join points executed by the team master only.
    fn master_method(&self) -> Pointcut;
}

/// The abstract single aspect.
pub trait SingleAspect {
    /// Join points executed by exactly one team thread.
    fn single_method(&self) -> Pointcut;
}

/// The abstract readers/writer aspect: two hook points over one shared
/// construct (paper §III-C: "this implementation requires two hook
/// points to specify accesses for reading and writing").
pub trait ReaderWriterAspect {
    /// Reading accesses (`@Reader`).
    fn reader_method(&self) -> Pointcut;
    /// Writing accesses (`@Writer`).
    fn writer_method(&self) -> Pointcut;
}

/// Anything [`concrete`] can turn into a deployable module. Implemented
/// for every abstract-aspect trait; a concrete type may implement several
/// traits and be registered once per role.
pub trait IntoAspectModule {
    /// Append this aspect's bindings to the builder.
    fn bind_into(&self, builder: AspectBuilder) -> AspectBuilder;
}

impl<T: ParallelRegion> IntoAspectModule for T {
    fn bind_into(&self, builder: AspectBuilder) -> AspectBuilder {
        let mut m = Mechanism::parallel();
        if let Some(t) = self.num_threads() {
            m = m.threads(t);
        }
        if let Some(n) = self.nested() {
            m = m.nested(n);
        }
        builder.bind(self.parallel_method(), m)
    }
}

/// Build a deployable [`AspectModule`] from a concrete aspect — the
/// paper's `aspect X extends ParallelRegion { ... }`.
pub fn concrete(name: impl Into<String>, aspect: impl IntoAspectModule) -> AspectModule {
    aspect.bind_into(AspectModule::builder(name)).build()
}

/// Build a module from a concrete for-workshare aspect. (Separate entry
/// points per abstract aspect keep Rust's coherence rules happy where a
/// type implements several of the traits.)
pub fn concrete_for(name: impl Into<String>, aspect: &impl ForWorkshare) -> AspectModule {
    let mech = if aspect.nowait() {
        Mechanism::for_loop_nowait(aspect.schedule())
    } else {
        Mechanism::for_loop(aspect.schedule())
    };
    AspectModule::builder(name)
        .bind(aspect.for_method(), mech)
        .build()
}

/// Build a module from a concrete critical aspect.
pub fn concrete_critical(name: impl Into<String>, aspect: &impl CriticalAspect) -> AspectModule {
    AspectModule::builder(name)
        .bind(
            aspect.critical_method(),
            Mechanism::critical_with(aspect.lock()),
        )
        .build()
}

/// Build a module from a concrete barrier aspect.
pub fn concrete_barrier(name: impl Into<String>, aspect: &impl BarrierAspect) -> AspectModule {
    AspectModule::builder(name)
        .bind(aspect.barrier_before(), Mechanism::barrier_before())
        .bind(aspect.barrier_after(), Mechanism::barrier_after())
        .build()
}

/// Build a module from a concrete master aspect.
pub fn concrete_master(name: impl Into<String>, aspect: &impl MasterAspect) -> AspectModule {
    AspectModule::builder(name)
        .bind(aspect.master_method(), Mechanism::master())
        .build()
}

/// Build a module from a concrete single aspect.
pub fn concrete_single(name: impl Into<String>, aspect: &impl SingleAspect) -> AspectModule {
    AspectModule::builder(name)
        .bind(aspect.single_method(), Mechanism::single())
        .build()
}

/// Build a module from a concrete readers/writer aspect (one shared
/// construct behind both hook points).
pub fn concrete_reader_writer(
    name: impl Into<String>,
    aspect: &impl ReaderWriterAspect,
) -> AspectModule {
    let rw = Arc::new(RwConstruct::new());
    AspectModule::builder(name)
        .bind(aspect.reader_method(), Mechanism::reader(Arc::clone(&rw)))
        .bind(aspect.writer_method(), Mechanism::writer(rw))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weaver::Weaver;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn figure4_concrete_parallel_region() {
        struct MyParallelRegion;
        impl ParallelRegion for MyParallelRegion {
            fn parallel_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.someMethod")
            }
            fn num_threads(&self) -> Option<usize> {
                Some(4)
            }
        }
        let hits = AtomicUsize::new(0);
        Weaver::global().with_deployed(concrete("MyParallelRegion", MyParallelRegion), || {
            crate::weaver::call("abstract.test.someMethod", || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn concrete_for_respects_schedule_override() {
        struct CyclicFor;
        impl ForWorkshare for CyclicFor {
            fn for_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.loop")
            }
            fn schedule(&self) -> Schedule {
                Schedule::StaticCyclic
            }
        }
        let module = concrete_for("CyclicFor", &CyclicFor);
        assert_eq!(
            module.bindings()[0].mechanism.kind_name(),
            "for(staticCyclic)"
        );
    }

    #[test]
    fn default_config_methods_apply() {
        struct Plain;
        impl ParallelRegion for Plain {
            fn parallel_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.plain")
            }
        }
        // Defaults: runtime thread count, nesting allowed — just verify
        // it builds and deploys.
        let h = Weaver::global().deploy(concrete("Plain", Plain));
        assert!(Weaver::global().is_deployed(h));
        Weaver::global().undeploy(h);
    }

    #[test]
    fn barrier_and_master_aspects_compose_like_figure7() {
        struct LinpackBarriers;
        impl BarrierAspect for LinpackBarriers {
            fn barrier_before(&self) -> Pointcut {
                Pointcut::call("abstract.test.interchange")
            }
            fn barrier_after(&self) -> Pointcut {
                Pointcut::calls(["abstract.test.interchange", "abstract.test.dscal"])
            }
        }
        struct LinpackMaster;
        impl MasterAspect for LinpackMaster {
            fn master_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.interchange")
                    .or(Pointcut::call("abstract.test.dscal"))
            }
        }
        struct Region;
        impl ParallelRegion for Region {
            fn parallel_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.region")
            }
            fn num_threads(&self) -> Option<usize> {
                Some(3)
            }
        }
        let execs = AtomicUsize::new(0);
        let w = Weaver::global();
        let h1 = w.deploy(concrete("Region", Region));
        let h2 = w.deploy(concrete_master("LinpackMaster", &LinpackMaster));
        let h3 = w.deploy(concrete_barrier("LinpackBarriers", &LinpackBarriers));
        crate::weaver::call("abstract.test.region", || {
            for _ in 0..4 {
                crate::weaver::call("abstract.test.interchange", || {
                    execs.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        w.undeploy(h1);
        w.undeploy(h2);
        w.undeploy(h3);
        assert_eq!(
            execs.load(Ordering::SeqCst),
            4,
            "master-gated, once per encounter"
        );
    }

    #[test]
    fn reader_writer_aspect_builds_pair_over_one_construct() {
        struct RW;
        impl ReaderWriterAspect for RW {
            fn reader_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.read")
            }
            fn writer_method(&self) -> Pointcut {
                Pointcut::call("abstract.test.write")
            }
        }
        let m = concrete_reader_writer("RW", &RW);
        assert_eq!(m.bindings().len(), 2);
        assert_eq!(m.bindings()[0].mechanism.kind_name(), "reader");
        assert_eq!(m.bindings()[1].mechanism.kind_name(), "writer");
    }

    #[test]
    fn critical_aspect_shared_lock_policy() {
        struct NamedCritical;
        impl CriticalAspect for NamedCritical {
            fn critical_method(&self) -> Pointcut {
                Pointcut::glob("abstract.test.crit.*")
            }
            fn lock(&self) -> CriticalHandle {
                CriticalHandle::named("abstract-test-shared")
            }
        }
        let m = concrete_critical("NamedCritical", &NamedCritical);
        assert_eq!(m.bindings()[0].mechanism.kind_name(), "critical");
    }
}
