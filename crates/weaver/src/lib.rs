//! # aomp-weaver — the aspect substrate of the AOmpLib reproduction
//!
//! AOmpLib's pointcut style binds parallelism mechanisms to *join points*
//! (method executions) via *pointcuts*, packaged into pluggable *aspect
//! modules* that a weaver composes with the base program at compile or
//! load time. Rust has no AspectJ, so this crate maps the model onto a
//! runtime registry:
//!
//! * the base program exposes join points by routing method executions
//!   through [`call`], [`call_for`] and [`call_value`] (the attribute
//!   macros in `aomp-macros` generate these shims, mirroring the code the
//!   AspectJ weaver would generate — paper Figure 12);
//! * [`Pointcut`]s match join points by name (exact or glob, with
//!   `or`/`and`/`not` composition — paper Figure 7's `call(..) || call(..)`);
//! * [`AspectModule`]s bundle pointcut→[`Mechanism`] bindings: parallel
//!   region, for work-sharing, barriers, master/single, critical,
//!   readers/writer, ordered, and fully custom advice for
//!   application-specific aspects (paper Table 2's "CS" entry);
//! * the global [`Weaver`] deploys and undeploys aspect modules at run
//!   time — the paper's load-time weaving. With nothing deployed every
//!   join point simply proceeds: *sequential semantics*.
//!
//! ```
//! use aomp_weaver::prelude::*;
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! // Base program: a "for method" exposed as a join point.
//! fn sum_squares(out: &AtomicI64, n: i64) {
//!     aomp_weaver::call_for("Demo.sumSquares", LoopRange::upto(0, n), |lo, hi, step| {
//!         let mut local = 0;
//!         let mut i = lo;
//!         while i < hi {
//!             local += i * i;
//!             i += step;
//!         }
//!         out.fetch_add(local, Ordering::Relaxed);
//!     });
//! }
//!
//! // Aspect module (the "concrete aspect" of paper Figures 4 and 7).
//! let aspect = AspectModule::builder("ParallelDemo")
//!     .bind(Pointcut::call("Demo.sumSquares"), Mechanism::parallel().threads(4))
//!     .bind(Pointcut::call("Demo.sumSquares"), Mechanism::for_loop(Schedule::StaticBlock))
//!     .build();
//!
//! let expected: i64 = (0..100).map(|i| i * i).sum();
//!
//! let out = AtomicI64::new(0);
//! let handle = Weaver::global().deploy(aspect);
//! sum_squares(&out, 100); // runs on a team of 4
//! assert_eq!(out.load(Ordering::Relaxed), expected);
//!
//! Weaver::global().undeploy(handle);
//! let out = AtomicI64::new(0);
//! sum_squares(&out, 100); // aspects unplugged: sequential again
//! assert_eq!(out.load(Ordering::Relaxed), expected);
//! ```

#![warn(missing_docs)]

pub mod abstract_aspects;
pub mod aspect;
pub mod joinpoint;
pub mod mechanism;
pub mod pointcut;
#[allow(clippy::module_inception)]
pub mod weaver;

pub use abstract_aspects::{concrete, ForWorkshare, ParallelRegion};
pub use aspect::{AspectBuilder, AspectModule};
pub use joinpoint::{JoinPoint, JoinPointKind};
pub use mechanism::{CustomAdvice, Mechanism};
pub use pointcut::Pointcut;
pub use weaver::{call, call_for, call_for_scoped, call_value, AspectHandle, Weaver};

/// Glob import for pointcut-style programs.
pub mod prelude {
    pub use crate::aspect::{AspectBuilder, AspectModule};
    pub use crate::joinpoint::{JoinPoint, JoinPointKind};
    pub use crate::mechanism::{CustomAdvice, Mechanism};
    pub use crate::pointcut::Pointcut;
    pub use crate::weaver::{call, call_for, call_for_scoped, call_value, AspectHandle, Weaver};
    pub use aomp::prelude::*;
}
