//! `aomp::obs` — runtime observability: process-wide metrics and a
//! chrome://tracing event recorder.
//!
//! The paper's whole evaluation (§V, Table 2, Figures 13–15) is about
//! *measuring* the library — region-entry overhead, load balance per
//! schedule, synchronisation cost. This module gives a running program
//! the same visibility the benchmarks have:
//!
//! * **Counters** ([`Counter`]) — monotonic event counts: regions by
//!   executor (pooled / spawned / inline), hot-team cache hits and
//!   misses, barrier rounds, critical acquisitions and contention,
//!   ordered sections, chunk handouts per schedule kind, task dispatch
//!   outcomes (shared pool / dedicated thread / inline fallback),
//!   executor steals and park/unpark cycles, admission-control refusals.
//! * **Latency histograms** ([`Lat`]) — coarse power-of-two-bucket
//!   nanosecond histograms for region round-trips (by executor) and for
//!   every [`WaitSite`] a team member blocks at (barrier, critical,
//!   ordered, broadcasts, task joins, region join).
//! * **Trace export** ([`trace`]) — a per-thread event recorder whose
//!   output loads in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev):
//!   regions, members, criticals and ordered sections as nested
//!   begin/end slices, blocked waits as complete slices with duration,
//!   chunk handouts and broadcasts as instants.
//!
//! # Enabling
//!
//! Metrics and tracing are **off by default** and cost one relaxed
//! atomic load per instrumented site when off (the same discipline as
//! the [`hook`](crate::hook) layer; `overhead_fig13` guards it).
//! Opt in either way:
//!
//! * environment — `AOMP_METRICS=1` enables counters/histograms from
//!   process start; `AOMP_TRACE=out.json` arms the trace recorder (call
//!   [`trace::flush_env`] before exit to write the file — the bench
//!   binaries do);
//! * API — [`set_metrics`], [`trace::start`] / [`trace::stop_to_file`].
//!
//! A handful of per-region counters (regions by executor, hot-team
//! cache hits/misses, teams created) predate this module as
//! [`pool::hot_team_stats`](crate::pool::hot_team_stats) and remain
//! **always on**: they tick once per region on an already-slow path and
//! existing tests and benches read them without opting in.
//! `hot_team_stats` is now a thin wrapper over this registry.
//!
//! # Reading
//!
//! ```
//! use aomp::obs;
//! use aomp::region::{self, RegionConfig};
//! obs::set_metrics(true);
//! let before = obs::snapshot();
//! region::parallel_with(RegionConfig::new().threads(2), || { /* work */ });
//! let delta = obs::snapshot().since(&before);
//! assert!(delta.counter(obs::Counter::RegionPooled) + delta.counter(obs::Counter::RegionSpawned) >= 1);
//! println!("{}", delta.render_text());
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::error::WaitSite;
use crate::hook::HookEvent;

/// Environment variable enabling metrics from process start
/// (`AOMP_METRICS=1`; any non-empty value other than `0` counts).
pub const METRICS_ENV: &str = "AOMP_METRICS";
/// Environment variable arming the trace recorder and naming its output
/// file (`AOMP_TRACE=out.json`); see [`trace::flush_env`].
pub const TRACE_ENV: &str = "AOMP_TRACE";

// ---------------------------------------------------------------------
// The gate: one byte shared by the hook layer and obs
// ---------------------------------------------------------------------

/// Bit: a [`SchedHook`](crate::hook::SchedHook) is registered.
pub(crate) const F_HOOK: u8 = 1;
/// Bit: metrics (counters + histograms) are enabled.
pub(crate) const F_METRICS: u8 = 2;
/// Bit: the trace recorder is running.
pub(crate) const F_TRACE: u8 = 4;
/// Bit: a race-check access sink is armed (see [`crate::check`]).
/// Deliberately *not* part of [`F_EVENTS`]: tracked data accesses are
/// orders of magnitude more frequent than decision sites, so they get
/// their own bit and report nothing to metrics/trace.
pub(crate) const F_RACE: u8 = 8;
/// Bit: the gate has been initialised from the environment.
const F_INIT: u8 = 0x80;
/// Any consumer that wants decision-site events built.
pub(crate) const F_EVENTS: u8 = F_HOOK | F_METRICS | F_TRACE;

/// The combined fast-path gate. Every instrumented site (hook emits,
/// wait registration, obs probes) reads this one byte: when no hook is
/// registered and metrics/trace are off, the site costs exactly one
/// relaxed load plus a predictable branch.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Read the gate, initialising it from the environment on first use.
#[inline(always)]
pub(crate) fn gate() -> u8 {
    let g = GATE.load(Ordering::Relaxed);
    if g & F_INIT == 0 {
        init_gate()
    } else {
        g
    }
}

#[cold]
fn init_gate() -> u8 {
    let mut bits = F_INIT;
    if env_truthy(METRICS_ENV) {
        bits |= F_METRICS;
    }
    if let Ok(path) = std::env::var(TRACE_ENV) {
        let path = path.trim();
        if !path.is_empty() {
            trace::arm_env(path.to_owned());
            bits |= F_TRACE;
        }
    }
    GATE.fetch_or(bits, Ordering::SeqCst) | bits
}

fn env_truthy(name: &str) -> bool {
    std::env::var(name)
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false)
}

pub(crate) fn gate_set(bit: u8) {
    gate();
    GATE.fetch_or(bit, Ordering::SeqCst);
}

pub(crate) fn gate_clear(bit: u8) {
    gate();
    GATE.fetch_and(!bit, Ordering::SeqCst);
}

/// Enable or disable the metrics registry at runtime (the programmatic
/// form of `AOMP_METRICS=1`). Counters are monotonic and never reset:
/// read them as deltas between [`snapshot`]s.
pub fn set_metrics(enabled: bool) {
    if enabled {
        gate_set(F_METRICS);
    } else {
        gate_clear(F_METRICS);
    }
}

/// Whether the metrics registry is currently enabled.
pub fn metrics_enabled() -> bool {
    gate() & F_METRICS != 0
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A monotonic runtime counter. `as usize` is the registry index;
        /// [`name`](Counter::name) is the stable text/JSON key.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[non_exhaustive]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        /// Number of counters in the registry.
        const N_COUNTERS: usize = [$($name),+].len();

        impl Counter {
            /// Every counter, in registry order.
            pub const ALL: [Counter; N_COUNTERS] = [$(Counter::$variant),+];

            /// Stable snake_case name used by the text and JSON renders.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    /// Multi-thread regions served by a leased hot team (always on).
    RegionPooled => "region_pooled",
    /// Multi-thread regions that spawned fresh scoped threads (always on).
    RegionSpawned => "region_spawned",
    /// Size-1 regions run inline on the caller.
    RegionInline => "region_inline",
    /// Hot teams created on cache misses (always on; lower = better reuse).
    TeamsCreated => "teams_created",
    /// Hot-team leases served from the cache (always on).
    PoolCacheHit => "pool_cache_hit",
    /// Hot-team leases that missed the cache (always on).
    PoolCacheMiss => "pool_cache_miss",
    /// Team barrier rounds completed (one tick per member per round).
    BarrierRounds => "barrier_rounds",
    /// Critical sections acquired inside a team.
    CriticalAcquired => "critical_acquired",
    /// Critical acquisitions that found the lock held (contention).
    CriticalContended => "critical_contended",
    /// Ordered sections entered.
    OrderedSections => "ordered_sections",
    /// Single/master broadcast values published.
    Broadcasts => "broadcasts",
    /// Chunk handouts: one static-block assignment per member.
    ChunkStaticBlock => "chunk_static_block",
    /// Chunk handouts: one static-cyclic assignment per member.
    ChunkStaticCyclic => "chunk_static_cyclic",
    /// Chunk handouts: dynamic-schedule chunks dispensed.
    ChunkDynamic => "chunk_dynamic",
    /// Chunk handouts: guided-schedule chunks dispensed.
    ChunkGuided => "chunk_guided",
    /// Chunk handouts: block-cyclic chunks dealt.
    ChunkBlockCyclic => "chunk_block_cyclic",
    /// Chunk handouts: adaptive-schedule chunks dispensed.
    ChunkAdaptive => "chunk_adaptive",
    /// Adaptive schedule: ranges adopted from another thread (steal-half).
    ChunkAdaptiveSteals => "chunk_adaptive_steals",
    /// Chunk handouts: taskloop bites executed (lazy-splitting tasks).
    ChunkTaskloop => "chunk_taskloop",
    /// Dependent tasks spawned into a [`deps::DepGroup`](crate::deps).
    DepTasks => "dep_tasks",
    /// Tasks handed to [`task::spawn`](crate::task)-family dispatch.
    TaskSpawned => "task_spawned",
    /// Tasks admitted to the shared work-stealing executor.
    TaskPooled => "task_pooled",
    /// Tasks that fell back to a dedicated thread.
    TaskDedicated => "task_dedicated",
    /// Tasks that degraded to inline execution on the caller.
    TaskInline => "task_inline",
    /// Steal events: a worker adopting the back half of another
    /// worker's deque (one tick per batch, not per task).
    TaskStolen => "task_stolen",
    /// Team-scoped task joins completed (`TaskGroup::wait`, `FutureTask::get`).
    TaskJoins => "task_joins",
    /// Admission refusals because pooling is disabled.
    TaskRefusedDisabled => "task_refused_disabled",
    /// Admission refusals because the executor was saturated.
    TaskRefusedSaturated => "task_refused_saturated",
    /// Executor workers entering a timed idle park.
    ExecParks => "exec_parks",
    /// Executor workers returning from an idle park.
    ExecUnparks => "exec_unparks",
    /// Team cancellations requested.
    CancelsRequested => "cancels_requested",
    /// Trace events dropped because a per-thread buffer filled up.
    TraceDropped => "trace_dropped",
    /// Serve: requests offered to a server's admission control.
    ServeSubmitted => "serve_submitted",
    /// Serve: requests admitted past a tenant's bounded queue.
    ServeAccepted => "serve_accepted",
    /// Serve: requests shed (rejected-newest) by admission control.
    ServeShed => "serve_shed",
    /// Serve: admitted requests that completed successfully.
    ServeCompleted => "serve_completed",
    /// Serve: admitted requests that missed their deadline (expired in
    /// queue, or stalled/timed out mid-execution).
    ServeDeadlineMissed => "serve_deadline_missed",
    /// Serve: admitted requests that failed from an (injected or real)
    /// panic or cancellation inside the request body.
    ServeFaulted => "serve_faulted",
    /// Serve: faults injected by a `serve::faults` plan.
    ServeFaultInjected => "serve_fault_injected",
    /// Serve: resubmissions performed by the retry/backoff helper.
    ServeRetries => "serve_retries",
    /// Replicated structures: write operations executed.
    NrWrites => "nr_writes",
    /// Replicated structures: read operations served from a replica.
    NrReads => "nr_reads",
    /// Replicated structures: combiner passes (each applies a batch).
    NrCombines => "nr_combines",
    /// Replicated structures: operations applied by combiners on behalf
    /// of another thread's flat-combining slot (batching wins).
    NrCombinedOps => "nr_combined_ops",
    /// Replicated structures: help passes applying the log to a lagging
    /// replica so an appender could reclaim log space.
    NrHelps => "nr_helps",
}

// ---------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------

/// Histogram bucket count: bucket `i` holds samples with
/// `ns < 2^i` (cumulatively: bucket index = bit length of the sample).
const BUCKETS: usize = 40;

macro_rules! lats {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// A latency histogram in the registry. `as usize` is the index;
        /// [`name`](Lat::name) is the stable text/JSON key.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[non_exhaustive]
        #[repr(usize)]
        pub enum Lat {
            $($(#[$doc])* $variant,)+
        }

        /// Number of latency histograms in the registry.
        const N_LATS: usize = [$($name),+].len();

        impl Lat {
            /// Every histogram, in registry order.
            pub const ALL: [Lat; N_LATS] = [$(Lat::$variant),+];

            /// Stable snake_case name used by the text and JSON renders.
            pub fn name(self) -> &'static str {
                match self {
                    $(Lat::$variant => $name,)+
                }
            }
        }
    };
}

lats! {
    /// Round-trip of a pooled region (entry + body + join): with an
    /// empty body this is the Figure 13 hot-team entry overhead.
    RegionPooled => "region_pooled",
    /// Round-trip of a spawned region (entry + body + join).
    RegionSpawned => "region_spawned",
    /// Round-trip of an inline (size-1) region.
    RegionInline => "region_inline",
    /// Time blocked at a team barrier.
    WaitBarrier => "wait_barrier",
    /// Time blocked acquiring a critical lock.
    WaitCritical => "wait_critical",
    /// Time blocked on a `Single` broadcast.
    WaitSingleBroadcast => "wait_single_broadcast",
    /// Time blocked on a `Master` broadcast.
    WaitMasterBroadcast => "wait_master_broadcast",
    /// Time blocked for an ordered-section turn.
    WaitOrdered => "wait_ordered",
    /// Time blocked in `TaskGroup::wait`.
    WaitTaskWait => "wait_task_wait",
    /// Time blocked in `FutureTask::get`.
    WaitFutureGet => "wait_future_get",
    /// Time blocked on a replicated structure (flat-combining slot,
    /// combiner lock, or operation-log space).
    WaitReplicated => "wait_replicated",
    /// Time the master blocked joining its workers at region end.
    WaitJoin => "wait_join",
    /// Body execution time of one dispensed chunk (adaptive schedule) —
    /// the handout→completion signal the adapter's EWMA is built from.
    ChunkBody => "chunk_body",
    /// End-to-end latency of admitted serve requests (submit to
    /// completion, shed requests excluded).
    ServeRequest => "serve_request",
    /// Time an admitted serve request spent queued before a worker
    /// picked it up.
    ServeQueueWait => "serve_queue_wait",
}

impl Lat {
    fn from_wait(site: WaitSite) -> Lat {
        match site {
            WaitSite::Barrier => Lat::WaitBarrier,
            WaitSite::Critical => Lat::WaitCritical,
            WaitSite::SingleBroadcast => Lat::WaitSingleBroadcast,
            WaitSite::MasterBroadcast => Lat::WaitMasterBroadcast,
            WaitSite::Ordered => Lat::WaitOrdered,
            WaitSite::TaskWait => Lat::WaitTaskWait,
            WaitSite::FutureGet => Lat::WaitFutureGet,
            WaitSite::Replicated => Lat::WaitReplicated,
            // `WaitSite` is non_exhaustive towards future sites; fold
            // unknown ones into the join bucket rather than dropping.
            _ => Lat::WaitJoin,
        }
    }
}

struct Hist {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Hist {
    const fn new() -> Hist {
        Hist {
            count: ZERO,
            sum_ns: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }

    fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket index of a nanosecond sample: its bit length, capped.
#[inline]
fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

struct Registry {
    counters: [AtomicU64; N_COUNTERS],
    hists: [Hist; N_LATS],
    /// Combiner occupancy for replicated structures ([`crate::nr`]):
    /// a histogram of *operations applied per combine pass* (a count, not
    /// a latency — buckets are still powers of two). Together with
    /// [`Counter::NrCombines`] this exposes how well flat combining is
    /// batching: mean ≈ 1 means the lock is bouncing per-op, larger
    /// means one combiner is absorbing its peers' operations.
    nr_batch: Hist,
}

#[allow(clippy::declare_interior_mutable_const)]
const HIST_ZERO: Hist = Hist::new();

static REG: Registry = Registry {
    counters: [ZERO; N_COUNTERS],
    hists: [HIST_ZERO; N_LATS],
    nr_batch: Hist::new(),
};

/// Record one combine pass that applied `ops` operations (replicated
/// structures' flat-combining/combiner path). No-op with metrics off.
#[inline]
pub(crate) fn nr_combine_batch(ops: u64) {
    if gate() & F_METRICS != 0 {
        REG.nr_batch.count.fetch_add(1, Ordering::Relaxed);
        REG.nr_batch.sum_ns.fetch_add(ops, Ordering::Relaxed);
        REG.nr_batch.buckets[bucket_of(ops)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bump `c` if metrics are enabled: one relaxed load when they are not.
#[inline]
pub(crate) fn count(c: Counter) {
    if gate() & F_METRICS != 0 {
        count_slow(c);
    }
}

#[cold]
fn count_slow(c: Counter) {
    REG.counters[c as usize].fetch_add(1, Ordering::Relaxed);
}

/// Bump `c` unconditionally — only for the pre-obs hot-team counters
/// whose readers ([`pool::hot_team_stats`](crate::pool::hot_team_stats),
/// the hot-team tests, `fig13`) do not opt in to metrics. One relaxed
/// RMW per *region*, the cost those counters always had.
#[inline]
pub(crate) fn count_always(c: Counter) {
    REG.counters[c as usize].fetch_add(1, Ordering::Relaxed);
}

/// Record a latency sample if metrics are enabled.
pub(crate) fn record_lat(l: Lat, d: Duration) {
    if gate() & F_METRICS != 0 {
        REG.hists[l as usize].record(d);
    }
}

/// Bump a counter in the process-global registry (one relaxed load when
/// metrics are off). Public so runtime layers built *on top of* aomp —
/// the `aomp-serve` request server is the motivating one — can account
/// their events (admissions, sheds, completions) in the same registry
/// the benchmarks and `AOMP_METRICS=1` already read.
#[inline]
pub fn counter_inc(c: Counter) {
    count(c);
}

/// Record a latency sample in the process-global registry (no-op with
/// metrics off). The public companion of [`counter_inc`] for
/// higher-layer latencies such as [`Lat::ServeRequest`].
#[inline]
pub fn record_latency(l: Lat, d: Duration) {
    record_lat(l, d);
}

// ---------------------------------------------------------------------
// Per-runtime counter scopes
// ---------------------------------------------------------------------

/// A counters-only registry owned by one
/// [`Runtime`](crate::runtime::Runtime) instance.
///
/// The process-global registry above stays the *union* of all activity
/// (so [`snapshot`], [`pool::hot_team_stats`](crate::pool::hot_team_stats)
/// and the env opt-ins keep their meaning); a scope additionally
/// attributes region/pool/task events to the runtime that executed them,
/// which is what makes two concurrent runtimes observably disjoint.
/// Latency histograms are deliberately *not* scoped: they are keyed by
/// wait site, not by runtime, and stay process-global.
///
/// Recording is controlled by the runtime's `metrics` builder knob
/// (default on); a disabled scope reads all-zero.
pub(crate) struct Scope {
    enabled: bool,
    counters: [AtomicU64; N_COUNTERS],
}

impl Scope {
    pub(crate) fn new(enabled: bool) -> Self {
        Self {
            enabled,
            counters: [ZERO; N_COUNTERS],
        }
    }

    /// Bump one counter in this scope. One branch + one relaxed RMW, and
    /// only called from region-granularity slow paths.
    #[inline]
    pub(crate) fn bump(&self, c: Counter) {
        if self.enabled {
            self.counters[c as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Value of one counter in this scope.
    pub(crate) fn counter(&self, c: Counter) -> u64 {
        if self.enabled {
            self.counters[c as usize].load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Copy this scope as a [`Snapshot`] (histograms read zero — they
    /// are process-global, see the type docs).
    pub(crate) fn snapshot(&self) -> Snapshot {
        let mut counters = [0u64; N_COUNTERS];
        if self.enabled {
            for (i, c) in self.counters.iter().enumerate() {
                counters[i] = c.load(Ordering::Relaxed);
            }
        }
        Snapshot {
            counters,
            hists: [HistSnapshot::default(); N_LATS],
            nr_batch: HistSnapshot::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Instrumentation helpers used by the runtime modules
// ---------------------------------------------------------------------

/// Started when a member registers at a wait site with metrics or trace
/// on; finishing it (guard drop) records the blocked duration.
pub(crate) struct WaitTimer {
    site: WaitSite,
    start: Instant,
    metrics: bool,
    traced: bool,
}

/// Begin timing a blocked wait. `g` is the gate value the caller already
/// loaded (so the whole wait registration costs one load when disabled).
#[inline]
pub(crate) fn wait_begin(g: u8, site: WaitSite) -> Option<WaitTimer> {
    if g & (F_METRICS | F_TRACE) != 0 {
        Some(WaitTimer {
            site,
            start: Instant::now(),
            metrics: g & F_METRICS != 0,
            traced: g & F_TRACE != 0,
        })
    } else {
        None
    }
}

/// Finish a wait begun by [`wait_begin`].
pub(crate) fn wait_end(t: WaitTimer) {
    let dur = t.start.elapsed();
    if t.metrics {
        REG.hists[Lat::from_wait(t.site) as usize].record(dur);
    }
    if t.traced {
        trace::record_wait(t.site, t.start, dur);
    }
}

/// Stamp a region entry if metrics are on (regions also show up in the
/// trace via their `RegionStart`/`RegionEnd` hook events).
#[inline]
pub(crate) fn region_timer() -> Option<Instant> {
    if gate() & F_METRICS != 0 {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record a region round-trip begun by [`region_timer`].
pub(crate) fn region_done(t: Option<Instant>, l: Lat) {
    if let Some(t0) = t {
        record_lat(l, t0.elapsed());
    }
}

/// One static-cyclic assignment was handed to a member. Counted here
/// (once per member, like the other static schedule) rather than from
/// hook events: when a hook is registered the cyclic arm emits one
/// iteration-space `ChunkHandout` *per iteration* — its assignment is
/// non-contiguous — and counting those would inflate the metric.
#[inline]
pub(crate) fn chunk_cyclic(first_iter: u64, iters: u64) {
    let g = gate();
    if g & F_METRICS != 0 {
        count_slow(Counter::ChunkStaticCyclic);
    }
    if g & F_TRACE != 0 {
        trace::record_instant(
            "chunk:static-cyclic",
            Some(("first", first_iter as i64)),
            Some(("iters", iters as i64)),
        );
    }
}

/// Route a decision-site event into counters and the trace. Called from
/// the hook layer's cold path with the gate value it loaded.
pub(crate) fn record_event(g: u8, ev: &HookEvent) {
    if g & F_METRICS != 0 {
        let c = match ev {
            HookEvent::BarrierExit { .. } => Some(Counter::BarrierRounds),
            HookEvent::CriticalAcquire { .. } => Some(Counter::CriticalAcquired),
            HookEvent::OrderedEnter { .. } => Some(Counter::OrderedSections),
            HookEvent::BroadcastPublish { .. } => Some(Counter::Broadcasts),
            HookEvent::TaskJoin { .. } => Some(Counter::TaskJoins),
            HookEvent::CancelRequested { .. } => Some(Counter::CancelsRequested),
            HookEvent::ChunkHandout { kind, .. } => match *kind {
                "static-block" => Some(Counter::ChunkStaticBlock),
                "dynamic" => Some(Counter::ChunkDynamic),
                "guided" => Some(Counter::ChunkGuided),
                "block-cyclic" => Some(Counter::ChunkBlockCyclic),
                "adaptive" => Some(Counter::ChunkAdaptive),
                "taskloop" => Some(Counter::ChunkTaskloop),
                // Per-iteration cyclic events; counted via chunk_cyclic.
                _ => None,
            },
            _ => None,
        };
        if let Some(c) = c {
            count_slow(c);
        }
    }
    if g & F_TRACE != 0 {
        trace::record_hook_event(ev);
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A point-in-time copy of the metrics registry. Counters are monotonic,
/// so the difference of two snapshots ([`Snapshot::since`]) attributes
/// exactly the activity between them.
#[derive(Debug, Clone)]
pub struct Snapshot {
    counters: [u64; N_COUNTERS],
    hists: [HistSnapshot; N_LATS],
    nr_batch: HistSnapshot,
}

/// One histogram's totals and buckets at snapshot time.
#[derive(Debug, Clone, Copy)]
pub struct HistSnapshot {
    count: u64,
    sum_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample, nanoseconds (0 with no samples).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (ns, exclusive) of the smallest bucket such that at
    /// least `q` (0..=1) of the samples fall at or below it — a coarse
    /// quantile with power-of-two resolution. 0 with no samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return 1u64 << i.min(63);
            }
        }
        1u64 << (BUCKETS - 1).min(63)
    }

    fn since(&self, base: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot {
            count: self.count.saturating_sub(base.count),
            sum_ns: self.sum_ns.saturating_sub(base.sum_ns),
            buckets: [0; BUCKETS],
        };
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        out
    }
}

/// Copy the current registry. Cheap (a few hundred relaxed loads);
/// usable with metrics off (everything reads 0 except the always-on
/// hot-team counters).
pub fn snapshot() -> Snapshot {
    let mut counters = [0u64; N_COUNTERS];
    for (i, c) in REG.counters.iter().enumerate() {
        counters[i] = c.load(Ordering::Relaxed);
    }
    let mut hists = [HistSnapshot::default(); N_LATS];
    for (i, h) in REG.hists.iter().enumerate() {
        hists[i] = hist_snapshot(h);
    }
    Snapshot {
        counters,
        hists,
        nr_batch: hist_snapshot(&REG.nr_batch),
    }
}

fn hist_snapshot(h: &Hist) -> HistSnapshot {
    let mut s = HistSnapshot {
        count: h.count.load(Ordering::Relaxed),
        sum_ns: h.sum_ns.load(Ordering::Relaxed),
        buckets: [0; BUCKETS],
    };
    for (j, b) in h.buckets.iter().enumerate() {
        s.buckets[j] = b.load(Ordering::Relaxed);
    }
    s
}

impl Snapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One latency histogram.
    pub fn hist(&self, l: Lat) -> &HistSnapshot {
        &self.hists[l as usize]
    }

    /// Combiner-occupancy histogram for replicated structures
    /// ([`aomp::nr`](crate::nr)): samples are *operations applied per
    /// combine pass* (dimensionless counts, power-of-two buckets), one
    /// sample per combine. `count()` equals the combine passes recorded
    /// while metrics were on; `sum_ns()` holds the total operations
    /// applied, so `mean_ns()` is the mean batch size.
    pub fn nr_combine_batch(&self) -> &HistSnapshot {
        &self.nr_batch
    }

    /// The activity between `base` and this snapshot.
    pub fn since(&self, base: &Snapshot) -> Delta {
        let mut counters = [0u64; N_COUNTERS];
        for (c, (a, b)) in counters
            .iter_mut()
            .zip(self.counters.iter().zip(base.counters.iter()))
        {
            *c = a.saturating_sub(*b);
        }
        let mut hists = [HistSnapshot::default(); N_LATS];
        for (h, (a, b)) in hists
            .iter_mut()
            .zip(self.hists.iter().zip(base.hists.iter()))
        {
            *h = a.since(b);
        }
        Delta(Snapshot {
            counters,
            hists,
            nr_batch: self.nr_batch.since(&base.nr_batch),
        })
    }

    /// Human-readable table: non-zero counters, then non-empty
    /// histograms with count / mean / coarse p50 / p99.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        let mut any = false;
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                any = true;
                out.push_str(&format!("  {:<24} {v}\n", c.name()));
            }
        }
        if !any {
            out.push_str("  (all zero)\n");
        }
        out.push_str("latency (ns):\n");
        any = false;
        for l in Lat::ALL {
            let h = self.hist(l);
            if h.count() != 0 {
                any = true;
                out.push_str(&format!(
                    "  {:<24} n={:<8} mean={:<12.0} p50<{} p99<{}\n",
                    l.name(),
                    h.count(),
                    h.mean_ns(),
                    h.quantile_ns(0.5),
                    h.quantile_ns(0.99),
                ));
            }
        }
        if !any {
            out.push_str("  (no samples)\n");
        }
        if self.nr_batch.count() != 0 {
            out.push_str(&format!(
                "nr combine batch (ops/pass):\n  passes={:<8} ops={:<10} mean={:<8.1} p50<{} p99<{}\n",
                self.nr_batch.count(),
                self.nr_batch.sum_ns(),
                self.nr_batch.mean_ns(),
                self.nr_batch.quantile_ns(0.5),
                self.nr_batch.quantile_ns(0.99),
            ));
        }
        out
    }

    /// JSON object with every counter and histogram (zeros included):
    /// `{"counters": {...}, "latency_ns": {name: {"count", "sum",
    /// "mean", "p50", "p99"}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"latency_ns\": {");
        for (i, l) in Lat::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = self.hist(*l);
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}}}",
                l.name(),
                h.count(),
                h.sum_ns(),
                h.mean_ns(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.99),
            ));
        }
        out.push_str("\n  },\n  \"nr_combine_batch\": {");
        out.push_str(&format!(
            "\"passes\": {}, \"ops\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}}}",
            self.nr_batch.count(),
            self.nr_batch.sum_ns(),
            self.nr_batch.mean_ns(),
            self.nr_batch.quantile_ns(0.5),
            self.nr_batch.quantile_ns(0.99),
        ));
        out.push_str("\n}\n");
        out
    }
}

/// The difference between two [`Snapshot`]s — same accessors, counts
/// attributable to the interval.
#[derive(Debug, Clone)]
pub struct Delta(Snapshot);

impl std::ops::Deref for Delta {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.0
    }
}

/// Render the current registry as text (shorthand for
/// `snapshot().render_text()`).
pub fn render_text() -> String {
    snapshot().render_text()
}

/// Render the current registry as JSON (shorthand for
/// `snapshot().render_json()`).
pub fn render_json() -> String {
    snapshot().render_json()
}

// ---------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------

/// Per-thread event recorder exporting
/// [chrome://tracing JSON](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
/// (the "Trace Event Format"; also loadable in Perfetto).
///
/// While running ([`start`], or `AOMP_TRACE=out.json` in the
/// environment), every decision-site event and every timed wait is
/// appended to a buffer owned by the recording thread (no cross-thread
/// contention on the hot path; buffers are capped, overflow ticks
/// [`Counter::TraceDropped`]). [`stop_to_file`] stops recording, drains
/// all buffers and writes one JSON document.
pub mod trace {
    use super::*;

    /// Cap per thread, to bound memory on runaway runs.
    const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

    struct Rec {
        name: &'static str,
        /// Trace-event phase: `B`/`E` (nested slice), `X` (complete
        /// slice with `dur`), `i` (instant).
        ph: char,
        ts_ns: u64,
        dur_ns: u64,
        tid: u64,
        args: [Option<(&'static str, i64)>; 2],
    }

    struct ThreadBuf {
        tid: u64,
        name: Option<String>,
        events: Mutex<Vec<Rec>>,
    }

    fn registry() -> &'static Mutex<Vec<&'static ThreadBuf>> {
        static R: OnceLock<Mutex<Vec<&'static ThreadBuf>>> = OnceLock::new();
        R.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn epoch() -> Instant {
        static E: OnceLock<Instant> = OnceLock::new();
        *E.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    thread_local! {
        static LOCAL: std::cell::OnceCell<&'static ThreadBuf> = const { std::cell::OnceCell::new() };
    }

    fn local() -> &'static ThreadBuf {
        LOCAL.with(|c| {
            *c.get_or_init(|| {
                static NEXT_TID: AtomicU64 = AtomicU64::new(1);
                // One leaked registration per OS thread that ever records
                // while tracing: bounded by thread count, reused across
                // start/stop cycles.
                let buf: &'static ThreadBuf = Box::leak(Box::new(ThreadBuf {
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    name: std::thread::current().name().map(str::to_owned),
                    events: Mutex::new(Vec::new()),
                }));
                registry().lock().push(buf);
                buf
            })
        })
    }

    fn push(rec: Rec) {
        let buf = local();
        let mut g = buf.events.lock();
        if g.len() < MAX_EVENTS_PER_THREAD {
            g.push(rec);
        } else {
            count_always(Counter::TraceDropped);
        }
    }

    fn push_now(name: &'static str, ph: char, args: [Option<(&'static str, i64)>; 2]) {
        let ts_ns = now_ns();
        let tid = local().tid;
        push(Rec {
            name,
            ph,
            ts_ns,
            dur_ns: 0,
            tid,
            args,
        });
    }

    /// Start (or restart) recording: clears all buffers and enables the
    /// trace bit. Events from every thread in the process are captured.
    pub fn start() {
        epoch();
        for buf in registry().lock().iter() {
            buf.events.lock().clear();
        }
        gate_set(F_TRACE);
    }

    /// Stop recording. Returns the number of buffered events. The
    /// buffers are kept until the next [`start`] or drained by
    /// [`stop_to_file`].
    pub fn stop() -> usize {
        gate_clear(F_TRACE);
        registry()
            .lock()
            .iter()
            .map(|b| b.events.lock().len())
            .sum()
    }

    /// Whether the recorder is currently running.
    pub fn running() -> bool {
        gate() & F_TRACE != 0
    }

    /// Stop recording, drain every thread's buffer and write one
    /// chrome://tracing JSON document to `path`. Returns the number of
    /// events written.
    pub fn stop_to_file(path: &str) -> std::io::Result<usize> {
        gate_clear(F_TRACE);
        let mut events: Vec<Rec> = Vec::new();
        let mut names: Vec<(u64, String)> = Vec::new();
        for buf in registry().lock().iter() {
            if let Some(n) = &buf.name {
                names.push((buf.tid, n.clone()));
            }
            events.append(&mut buf.events.lock());
        }
        events.sort_by_key(|r| r.ts_ns);
        let n = events.len();
        std::fs::write(path, render(&events, &names))?;
        Ok(n)
    }

    /// If `AOMP_TRACE=<path>` armed the recorder at startup, stop and
    /// write the file now; otherwise do nothing. Long-lived programs
    /// (and the bench binaries) call this once before exiting.
    pub fn flush_env() -> std::io::Result<usize> {
        match env_path() {
            Some(path) => stop_to_file(&path),
            None => Ok(0),
        }
    }

    fn env_path_slot() -> &'static Mutex<Option<String>> {
        static P: OnceLock<Mutex<Option<String>>> = OnceLock::new();
        P.get_or_init(|| Mutex::new(None))
    }

    pub(super) fn arm_env(path: String) {
        epoch();
        *env_path_slot().lock() = Some(path);
    }

    /// The `AOMP_TRACE` output path, if the recorder was armed by the
    /// environment.
    pub fn env_path() -> Option<String> {
        gate();
        env_path_slot().lock().clone()
    }

    fn render(events: &[Rec], names: &[(u64, String)]) -> String {
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
        let mut first = true;
        for (tid, name) in names {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            ));
        }
        for r in events {
            sep(&mut out, &mut first);
            let ts_us = r.ts_ns as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {ts_us:.3}, \"pid\": 1, \"tid\": {}",
                r.name, r.ph, r.tid
            ));
            if r.ph == 'X' {
                out.push_str(&format!(", \"dur\": {:.3}", r.dur_ns as f64 / 1000.0));
            }
            if r.ph == 'i' {
                out.push_str(", \"s\": \"t\"");
            }
            if r.args.iter().any(Option::is_some) {
                out.push_str(", \"args\": {");
                let mut afirst = true;
                for a in r.args.iter().flatten() {
                    if !afirst {
                        out.push_str(", ");
                    }
                    afirst = false;
                    out.push_str(&format!("\"{}\": {}", a.0, a.1));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    fn sep(out: &mut String, first: &mut bool) {
        if !*first {
            out.push_str(",\n");
        } else {
            out.push('\n');
        }
        *first = false;
    }

    fn escape(s: &str) -> String {
        s.chars()
            .filter(|c| !c.is_control())
            .map(|c| match c {
                '"' => "\\\"".to_owned(),
                '\\' => "\\\\".to_owned(),
                c => c.to_string(),
            })
            .collect()
    }

    pub(super) fn record_instant(
        name: &'static str,
        a0: Option<(&'static str, i64)>,
        a1: Option<(&'static str, i64)>,
    ) {
        push_now(name, 'i', [a0, a1]);
    }

    pub(super) fn record_wait(site: WaitSite, start: Instant, dur: Duration) {
        let name = match site {
            WaitSite::Barrier => "wait:barrier",
            WaitSite::Critical => "wait:critical",
            WaitSite::SingleBroadcast => "wait:single-broadcast",
            WaitSite::MasterBroadcast => "wait:master-broadcast",
            WaitSite::Ordered => "wait:ordered",
            WaitSite::TaskWait => "wait:task-wait",
            WaitSite::FutureGet => "wait:future-get",
            WaitSite::Replicated => "wait:replicated",
            _ => "wait:join",
        };
        let ts_ns = u64::try_from(start.duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let tid = local().tid;
        push(Rec {
            name,
            ph: 'X',
            ts_ns,
            dur_ns,
            tid,
            args: [None, None],
        });
    }

    pub(super) fn record_hook_event(ev: &HookEvent) {
        match *ev {
            HookEvent::RegionStart { size, level, .. } => push_now(
                "region",
                'B',
                [Some(("size", size as i64)), Some(("level", level as i64))],
            ),
            HookEvent::RegionEnd { .. } => push_now("region", 'E', [None, None]),
            HookEvent::MemberStart { tid, .. } => {
                push_now("member", 'B', [Some(("tid", tid as i64)), None])
            }
            HookEvent::MemberEnd { .. } => push_now("member", 'E', [None, None]),
            HookEvent::BarrierExit { leader, .. } => push_now(
                "barrier-exit",
                'i',
                [Some(("leader", i64::from(leader))), None],
            ),
            HookEvent::CriticalAcquire { .. } => push_now("critical", 'B', [None, None]),
            HookEvent::CriticalRelease { .. } => push_now("critical", 'E', [None, None]),
            HookEvent::ChunkHandout { kind, lo, hi, .. } => {
                let name = match kind {
                    "static-block" => "chunk:static-block",
                    "static-cyclic" => "chunk:static-cyclic",
                    "dynamic" => "chunk:dynamic",
                    "guided" => "chunk:guided",
                    "adaptive" => "chunk:adaptive",
                    "taskloop" => "chunk:taskloop",
                    _ => "chunk:block-cyclic",
                };
                push_now(
                    name,
                    'i',
                    [Some(("lo", lo as i64)), Some(("hi", hi as i64))],
                );
            }
            HookEvent::BroadcastPublish { .. } => push_now("broadcast", 'i', [None, None]),
            HookEvent::BroadcastReceive { tid, .. } => {
                push_now("broadcast-recv", 'i', [Some(("tid", tid as i64)), None])
            }
            HookEvent::OrderedEnter { ticket, .. } => {
                push_now("ordered", 'B', [Some(("ticket", ticket as i64)), None])
            }
            HookEvent::OrderedExit { .. } => push_now("ordered", 'E', [None, None]),
            HookEvent::TaskSpawn { tid, .. } => {
                push_now("task-spawn", 'i', [Some(("tid", tid as i64)), None])
            }
            HookEvent::TaskJoin { .. } => push_now("task-join", 'i', [None, None]),
            HookEvent::TaskDepRelease { node, .. } => {
                push_now("task-dep-release", 'i', [Some(("node", node as i64)), None])
            }
            HookEvent::TaskDepReady { node, .. } => {
                push_now("task-dep-ready", 'i', [Some(("node", node as i64)), None])
            }
            HookEvent::CancelRequested { tid, .. } => {
                push_now("cancel", 'i', [Some(("tid", tid as i64)), None])
            }
            HookEvent::NrCombine { lo, hi, .. } => push_now(
                "nr-combine",
                'i',
                [Some(("lo", lo as i64)), Some(("hi", hi as i64))],
            ),
            // NrAppend/NrSync are one per operation — too chatty to plot;
            // WaitRegister is covered by the timed wait slice; explicit
            // cancellation-point polls are too chatty to plot.
            HookEvent::NrAppend { .. }
            | HookEvent::NrSync { .. }
            | HookEvent::CancellationPoint { .. }
            | HookEvent::WaitRegister { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn snapshot_delta_attributes_counts() {
        let before = snapshot();
        count_always(Counter::TraceDropped);
        count_always(Counter::TraceDropped);
        let d = snapshot().since(&before);
        assert!(d.counter(Counter::TraceDropped) >= 2);
    }

    #[test]
    fn gated_count_needs_metrics_enabled() {
        // Metrics may be enabled by a concurrent test; only assert the
        // enabled direction, which is monotonic under concurrency.
        set_metrics(true);
        let before = snapshot();
        count(Counter::CancelsRequested);
        let d = snapshot().since(&before);
        assert!(d.counter(Counter::CancelsRequested) >= 1);
        set_metrics(false);
    }

    #[test]
    fn hist_records_and_renders() {
        set_metrics(true);
        let before = snapshot();
        record_lat(Lat::WaitOrdered, Duration::from_nanos(900));
        record_lat(Lat::WaitOrdered, Duration::from_micros(3));
        let d = snapshot().since(&before);
        set_metrics(false);
        let h = d.hist(Lat::WaitOrdered);
        assert!(h.count() >= 2);
        assert!(h.sum_ns() >= 3900);
        assert!(h.mean_ns() > 0.0);
        assert!(h.quantile_ns(0.5) >= 1024);
        let text = d.render_text();
        assert!(text.contains("wait_ordered"), "{text}");
        let json = d.render_json();
        assert!(json.contains("\"wait_ordered\""), "{json}");
    }

    #[test]
    fn quantile_of_empty_hist_is_zero() {
        let h = HistSnapshot::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let s = snapshot();
        let j = s.render_json();
        // Minimal structural checks (the full parse lives in the
        // integration tests, which have a JSON parser available).
        assert!(j.trim_start().starts_with('{'));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces: {j}"
        );
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"latency_ns\""));
        assert!(j.contains("\"region_pooled\""));
    }
}
