//! Task dependencies — OpenMP 4.x `depend(in/out/inout)` clauses and the
//! `taskloop` construct (ROADMAP item 3(b)).
//!
//! A [`DepGroup`] owns a per-team dependence graph. Spawns declare
//! [`Dep`] clauses keyed by [`Tag`]s (an address, a static name, or a
//! name + partition index); the group applies the OpenMP serialization
//! rules — an `in` task waits on the tag's last writer and joins its
//! reader set, an `out`/`inout` task waits on the prior readers *and*
//! writer, becomes the last writer and clears the reader set — and
//! releases a task to the ready queue exactly when its last predecessor
//! completes. Tag-derived edges always point from earlier to later
//! spawns, so they cannot form a cycle; explicit [`DepGroup::edge`]s on a
//! [`DepGroup::held`] group can, and [`DepGroup::release`] reports that
//! *fallibly* ([`DepError::Cycle`]) instead of deadlocking.
//!
//! Execution resolves lazily at the first spawn: inside a parallel
//! region, team members pull ready tasks by calling [`DepGroup::run`]
//! (the *team* mode the checker serializes deterministically); outside a
//! region, ready tasks are pushed to the shared work-stealing executor
//! and [`DepGroup::wait`] joins them.
//!
//! Every dependence edge is mirrored to the scheduling hook as a precise
//! release→acquire pair — `TaskDepRelease { node }` when a completion (or
//! the spawn itself) publishes toward a node, `TaskDepReady { node }`
//! when a runner or joiner acquires it — so aomp-check's vector clocks
//! track *per-edge* ordering instead of the conservative whole-group
//! `TaskSpawn`→`TaskJoin` edge. The emission protocol is ordered: a
//! release toward a node is always emitted *before* the node can be
//! popped (or the join counter observed), so a serialized explorer can
//! never see the acquire first.
//!
//! [`TaskloopConstruct`] is the `#[taskloop]` backend: the encountering
//! member seeds the whole iteration range as a *single* task and splits
//! it lazily — only when another member is observed waiting at a
//! min-chunk bite boundary — reusing the adaptive schedule's min-chunk
//! floor as the split granule.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::barrier::PARK_TIMEOUT;
use crate::ctx;
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};
use crate::obs;
use crate::range::LoopRange;

// ---------------------------------------------------------------------------
// Tags and dependence clauses
// ---------------------------------------------------------------------------

/// A dependence tag: the identity two `depend` clauses must share for the
/// runtime to order them. Mirrors OpenMP's list items, which are compared
/// by *storage location*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// The address of the tagged object (`Tag::of(&x)`).
    Addr(usize),
    /// A symbolic name, for state without a stable address.
    Name(&'static str),
    /// A name qualified by a partition/element index — the array-section
    /// analogue (`depend(out: a[i])`).
    Part(&'static str, u64),
}

impl Tag {
    /// Tag by address: two clauses naming the same object conflict.
    #[inline]
    pub fn of<T: ?Sized>(obj: &T) -> Tag {
        Tag::Addr((obj as *const T).cast::<()>() as usize)
    }

    /// Tag a named partition, e.g. `Tag::part("ranks", p)`.
    #[inline]
    pub fn part(name: &'static str, index: u64) -> Tag {
        Tag::Part(name, index)
    }
}

impl From<&'static str> for Tag {
    #[inline]
    fn from(name: &'static str) -> Tag {
        Tag::Name(name)
    }
}

/// Access mode of a dependence clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepMode {
    /// Read: ordered after the tag's last writer.
    In,
    /// Write: ordered after the prior readers and writer.
    Out,
    /// Read-write: same ordering as [`DepMode::Out`].
    InOut,
}

/// One `depend` clause: a [`Tag`] plus its access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// What is depended on.
    pub tag: Tag,
    /// How it is accessed.
    pub mode: DepMode,
}

impl Dep {
    /// `depend(in: tag)`.
    #[inline]
    pub fn input(tag: impl Into<Tag>) -> Dep {
        Dep {
            tag: tag.into(),
            mode: DepMode::In,
        }
    }

    /// `depend(out: tag)`.
    #[inline]
    pub fn output(tag: impl Into<Tag>) -> Dep {
        Dep {
            tag: tag.into(),
            mode: DepMode::Out,
        }
    }

    /// `depend(inout: tag)`.
    #[inline]
    pub fn inout(tag: impl Into<Tag>) -> Dep {
        Dep {
            tag: tag.into(),
            mode: DepMode::InOut,
        }
    }

    /// True for write-mode clauses (`out`/`inout`).
    #[inline]
    pub fn is_write(&self) -> bool {
        !matches!(self.mode, DepMode::In)
    }
}

/// Fallible dependence-graph errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DepError {
    /// [`DepGroup::release`] found a dependence cycle. The payload lists
    /// the node ids caught in (or downstream of) the cycle; none of their
    /// bodies ran.
    Cycle {
        /// Node ids that could not be topologically ordered.
        nodes: Vec<usize>,
    },
}

impl std::fmt::Display for DepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepError::Cycle { nodes } => {
                write!(f, "dependence cycle among {} task node(s)", nodes.len())
            }
        }
    }
}

impl std::error::Error for DepError {}

/// Handle to a spawned dependence node, for explicit [`DepGroup::edge`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskNode {
    idx: usize,
    id: usize,
}

impl TaskNode {
    /// The process-unique node id carried by `TaskDepRelease`/`TaskDepReady`
    /// hook events for this node.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }
}

/// Process-unique dependence-node ids (tasks and group join sinks share
/// the namespace).
fn fresh_node() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// DepGroup
// ---------------------------------------------------------------------------

/// How ready tasks get to a CPU. Decided lazily at the first spawn so a
/// single group type serves both the paper's fork/join regions and
/// free-standing task graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Unset,
    /// Inside a parallel region: members *pull* from the ready queue via
    /// [`DepGroup::run`]. This is the mode the checker can serialize.
    Team,
    /// Outside any region: ready tasks are *pushed* to the shared
    /// work-stealing executor.
    Executor,
}

struct NodeState {
    /// Process-unique id (hook-event identity).
    id: usize,
    /// Deferred body; `None` for undeferred (weaver) nodes and after the
    /// body has been claimed by a runner.
    body: Option<Box<dyn FnOnce() + Send>>,
    /// Outstanding predecessors (incl. the spawn latch while spawning).
    preds: usize,
    /// Local indices of wired successors.
    succs: Vec<usize>,
    /// Completion flag, set under the group lock.
    done: bool,
}

struct Inner {
    nodes: Vec<NodeState>,
    /// Per-tag last writer (local index), per the OpenMP rules.
    last_writer: HashMap<Tag, usize>,
    /// Per-tag readers since the last writer.
    readers: HashMap<Tag, Vec<usize>>,
    /// Ready tasks awaiting a team member (team mode only).
    ready: VecDeque<usize>,
    /// Completed node count.
    done: usize,
    closed: bool,
    /// `held()` groups defer readiness until `release()`.
    held: bool,
    released: bool,
    error: Option<DepError>,
    mode: Mode,
}

impl Inner {
    #[inline]
    fn deferred(&self) -> bool {
        self.held && !self.released
    }
}

struct GroupShared {
    inner: Mutex<Inner>,
    cv: Condvar,
    failed: AtomicBool,
    /// Join-sink node id: completions release toward it, joins acquire it.
    sink: usize,
}

/// A dependence-graph task group. Clones share the same graph.
///
/// Typical team usage:
///
/// ```ignore
/// let g = DepGroup::new();
/// region::parallel(|| {
///     if ctx::thread_id() == 0 {
///         g.spawn([Dep::output("a")], || produce());
///         g.spawn([Dep::input("a")], || consume());
///         g.close();
///     }
///     g.run().unwrap();
/// });
/// ```
#[derive(Clone)]
pub struct DepGroup {
    shared: Arc<GroupShared>,
}

impl Default for DepGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl DepGroup {
    /// New group: tasks become ready as soon as their predecessors allow.
    pub fn new() -> DepGroup {
        Self::with_held(false)
    }

    /// New *held* group: no task starts until [`DepGroup::release`],
    /// which first cycle-checks the graph (needed because explicit
    /// [`DepGroup::edge`]s, unlike tag-derived edges, can form cycles).
    pub fn held() -> DepGroup {
        Self::with_held(true)
    }

    fn with_held(held: bool) -> DepGroup {
        DepGroup {
            shared: Arc::new(GroupShared {
                inner: Mutex::new(Inner {
                    nodes: Vec::new(),
                    last_writer: HashMap::new(),
                    readers: HashMap::new(),
                    ready: VecDeque::new(),
                    done: 0,
                    closed: false,
                    held,
                    released: false,
                    error: None,
                    mode: Mode::Unset,
                }),
                cv: Condvar::new(),
                failed: AtomicBool::new(false),
                sink: fresh_node(),
            }),
        }
    }

    /// Wire the node's dependences under the lock. Returns
    /// `(local idx, completed-pred ids to acquire)`.
    fn wire(
        &self,
        g: &mut Inner,
        deps: &[Dep],
        body: Option<Box<dyn FnOnce() + Send>>,
    ) -> (usize, usize, Vec<usize>) {
        assert!(!g.closed, "aomp dep group: spawn after close()");
        if g.mode == Mode::Unset {
            g.mode = if ctx::level() > 0 {
                Mode::Team
            } else {
                Mode::Executor
            };
        }
        let id = fresh_node();
        let idx = g.nodes.len();
        g.nodes.push(NodeState {
            id,
            body,
            preds: 0,
            succs: Vec::new(),
            done: false,
        });
        let mut pred_set: Vec<usize> = Vec::new();
        for d in deps {
            match d.mode {
                DepMode::In => {
                    if let Some(&w) = g.last_writer.get(&d.tag) {
                        pred_set.push(w);
                    }
                    g.readers.entry(d.tag).or_default().push(idx);
                }
                DepMode::Out | DepMode::InOut => {
                    if let Some(rs) = g.readers.remove(&d.tag) {
                        pred_set.extend(rs);
                    }
                    if let Some(&w) = g.last_writer.get(&d.tag) {
                        pred_set.push(w);
                    }
                    g.last_writer.insert(d.tag, idx);
                }
            }
        }
        pred_set.sort_unstable();
        pred_set.dedup();
        pred_set.retain(|&p| p != idx);
        // A pred that already completed emitted its completion release
        // before setting `done` under this lock, so the spawner can
        // acquire it directly; live preds get a wired successor edge and
        // release toward us when they complete.
        let mut acquires = Vec::new();
        let mut live = 0;
        for p in pred_set {
            if g.nodes[p].done {
                acquires.push(g.nodes[p].id);
            } else {
                g.nodes[p].succs.push(idx);
                live += 1;
            }
        }
        g.nodes[idx].preds = live;
        (idx, id, acquires)
    }

    /// Spawn a dependent task. Ordering is against *earlier spawns of the
    /// same group* that named a conflicting [`Tag`], per the OpenMP
    /// rules. Returns a handle usable with [`DepGroup::edge`].
    pub fn spawn<F>(&self, deps: impl IntoIterator<Item = Dep>, f: F) -> TaskNode
    where
        F: FnOnce() + Send + 'static,
    {
        ctx::with_current(|c| {
            if let Some(c) = c {
                c.shared.check_interrupt();
            }
        });
        obs::count(obs::Counter::DepTasks);
        let deps: Vec<Dep> = deps.into_iter().collect();
        let (idx, id, acquires) = {
            let mut g = self.shared.inner.lock();
            let (idx, id, acquires) = self.wire(&mut g, &deps, Some(Box::new(f)));
            // Spawn latch: hold the node back until the creation release
            // below has been published, so no runner can acquire first.
            g.nodes[idx].preds += 1;
            (idx, id, acquires)
        };
        for a in acquires {
            hook::emit_team(|team, tid| HookEvent::TaskDepReady { team, tid, node: a });
        }
        // Creation edge: spawner → task body.
        hook::emit_team(|team, tid| HookEvent::TaskDepRelease {
            team,
            tid,
            node: id,
        });
        let ready = {
            let mut g = self.shared.inner.lock();
            g.nodes[idx].preds -= 1;
            g.nodes[idx].preds == 0 && !g.deferred()
        };
        if ready {
            self.make_ready(idx);
        }
        TaskNode { idx, id }
    }

    /// Add an explicit edge `pred → succ` on a [`DepGroup::held`] group.
    /// Panics if the group is not held or already released (edges to
    /// possibly-running nodes would race).
    pub fn edge(&self, pred: TaskNode, succ: TaskNode) {
        let mut g = self.shared.inner.lock();
        assert!(
            g.deferred(),
            "aomp dep group: edge() requires a held(), unreleased group"
        );
        g.nodes[pred.idx].succs.push(succ.idx);
        g.nodes[succ.idx].preds += 1;
    }

    /// Cycle-check a [`DepGroup::held`] group and start its sources.
    /// On a cycle nothing runs: every body is dropped, the error is
    /// latched (so [`DepGroup::run`]/[`DepGroup::wait`] also fail), and
    /// `Err(DepError::Cycle)` is returned — no hang, no watchdog trip.
    pub fn release(&self) -> Result<(), DepError> {
        let ready = {
            let mut g = self.shared.inner.lock();
            assert!(g.held, "aomp dep group: release() requires a held() group");
            if g.released {
                return match &g.error {
                    Some(e) => Err(e.clone()),
                    None => Ok(()),
                };
            }
            g.released = true;
            // Kahn's algorithm over the wired graph.
            let n = g.nodes.len();
            let mut indeg: Vec<usize> = g.nodes.iter().map(|nd| nd.preds).collect();
            let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut seen = 0usize;
            while let Some(i) = q.pop_front() {
                seen += 1;
                for s in 0..g.nodes[i].succs.len() {
                    let s = g.nodes[i].succs[s];
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        q.push_back(s);
                    }
                }
            }
            if seen < n {
                let nodes: Vec<usize> = (0..n)
                    .filter(|&i| indeg[i] > 0)
                    .map(|i| g.nodes[i].id)
                    .collect();
                let err = DepError::Cycle { nodes };
                g.error = Some(err.clone());
                for nd in g.nodes.iter_mut() {
                    nd.body = None;
                }
                drop(g);
                self.shared.cv.notify_all();
                return Err(err);
            }
            (0..n)
                .filter(|&i| g.nodes[i].preds == 0 && !g.nodes[i].done)
                .collect::<Vec<_>>()
        };
        self.shared.cv.notify_all();
        for idx in ready {
            self.make_ready(idx);
        }
        Ok(())
    }

    /// No more spawns; lets [`DepGroup::run`] terminate once the graph
    /// drains.
    pub fn close(&self) {
        self.shared.inner.lock().closed = true;
        self.shared.cv.notify_all();
    }

    /// Hand a pred-free node to a CPU: queue it (team mode) or dispatch
    /// it to the executor. Undeferred nodes have no body — their owning
    /// thread polls, so a wake-up suffices.
    fn make_ready(&self, idx: usize) {
        let (mode, has_body) = {
            let g = self.shared.inner.lock();
            (g.mode, g.nodes[idx].body.is_some())
        };
        if !has_body {
            self.shared.cv.notify_all();
            return;
        }
        match mode {
            Mode::Executor => {
                let this = self.clone();
                let rt = crate::runtime::current();
                rt.dispatch_task(
                    "aomp-dep-task",
                    crate::task::in_runtime(&rt, move || this.execute(idx)),
                );
            }
            _ => {
                self.shared.inner.lock().ready.push_back(idx);
                self.shared.cv.notify_all();
            }
        }
    }

    /// Claim and run node `idx`'s body, then complete it.
    fn execute(&self, idx: usize) {
        let (id, body) = {
            let mut g = self.shared.inner.lock();
            (g.nodes[idx].id, g.nodes[idx].body.take())
        };
        // Acquire every release published toward this node (creation edge
        // plus one per satisfied dependence).
        hook::emit_team(|team, tid| HookEvent::TaskDepReady {
            team,
            tid,
            node: id,
        });
        if let Some(body) = body {
            if catch_unwind(AssertUnwindSafe(body)).is_err() {
                self.shared.failed.store(true, Ordering::Release);
            }
        }
        self.complete(idx);
    }

    /// Publish a node's completion. Emission order is load-bearing: the
    /// self/sink releases go out *before* `done` is bumped (a joiner that
    /// observes the count is ordered after them), and each successor's
    /// release goes out *before* that successor's pred count drops (a
    /// runner that pops it is ordered after).
    fn complete(&self, idx: usize) {
        let own = self.shared.inner.lock().nodes[idx].id;
        hook::emit_team(|team, tid| HookEvent::TaskDepRelease {
            team,
            tid,
            node: own,
        });
        let sink = self.shared.sink;
        hook::emit_team(|team, tid| HookEvent::TaskDepRelease {
            team,
            tid,
            node: sink,
        });
        let succs = {
            let mut g = self.shared.inner.lock();
            g.nodes[idx].done = true;
            g.done += 1;
            std::mem::take(&mut g.nodes[idx].succs)
        };
        self.shared.cv.notify_all();
        ctx::with_current(|c| {
            if let Some(c) = c {
                c.shared.bump_progress();
            }
        });
        for s in succs {
            let sid = self.shared.inner.lock().nodes[s].id;
            hook::emit_team(|team, tid| HookEvent::TaskDepRelease {
                team,
                tid,
                node: sid,
            });
            let now_ready = {
                let mut g = self.shared.inner.lock();
                g.nodes[s].preds -= 1;
                g.nodes[s].preds == 0 && !g.deferred()
            };
            if now_ready {
                self.make_ready(s);
            }
        }
    }

    /// Pull-execute ready tasks until `stop` holds. Parks through the
    /// team wait-site machinery (watchdog-visible, checker-serializable)
    /// when there is nothing to do yet.
    fn work(&self, stop: &dyn Fn(&Inner) -> bool) -> Result<(), DepError> {
        let team = ctx::with_current(|c| c.map(|c| (Arc::clone(&c.shared), c.tid)));
        loop {
            let job = {
                let mut g = self.shared.inner.lock();
                if let Some(e) = &g.error {
                    return Err(e.clone());
                }
                if stop(&g) {
                    break;
                }
                g.ready.pop_front()
            };
            match job {
                Some(idx) => {
                    if let Some((shared, _)) = &team {
                        shared.check_interrupt();
                        shared.bump_progress();
                    }
                    self.execute(idx);
                }
                None => match &team {
                    Some((shared, tid)) => {
                        shared.check_interrupt();
                        let token = shared.token();
                        let _w = shared.begin_wait(*tid, WaitSite::TaskWait);
                        if !hook::yield_blocked(token, *tid, WaitSite::TaskWait) {
                            let mut g = self.shared.inner.lock();
                            if g.error.is_none() && !stop(&g) && g.ready.is_empty() {
                                self.shared.cv.wait_for(&mut g, PARK_TIMEOUT);
                            }
                        }
                    }
                    None => {
                        let mut g = self.shared.inner.lock();
                        if g.error.is_none() && !stop(&g) && g.ready.is_empty() {
                            self.shared.cv.wait_for(&mut g, PARK_TIMEOUT);
                        }
                    }
                },
            }
        }
        Ok(())
    }

    /// Execute ready tasks until the group is [`DepGroup::close`]d and
    /// drained. Every member of a team-mode group should call this.
    /// Panics if any task body panicked; returns the latched error if
    /// [`DepGroup::release`] found a cycle.
    pub fn run(&self) -> Result<(), DepError> {
        self.work(&|g: &Inner| g.closed && g.done == g.nodes.len())?;
        let had_nodes = !self.shared.inner.lock().nodes.is_empty();
        self.finish_join(had_nodes);
        Ok(())
    }

    /// Wait for every task spawned *so far* (`taskwait`): helps execute
    /// ready tasks in team mode, then blocks. An empty group returns
    /// immediately — no wait site, no watchdog traffic.
    pub fn wait(&self) -> Result<(), DepError> {
        let target = self.shared.inner.lock().nodes.len();
        if target == 0 {
            return match &self.shared.inner.lock().error {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            };
        }
        self.work(&|g: &Inner| g.done >= target)?;
        self.finish_join(true);
        Ok(())
    }

    /// Join-sink acquire + deferred panic propagation.
    fn finish_join(&self, had_nodes: bool) {
        if had_nodes {
            let sink = self.shared.sink;
            hook::emit_team(|team, tid| HookEvent::TaskDepReady {
                team,
                tid,
                node: sink,
            });
        }
        if self.shared.failed.swap(false, Ordering::AcqRel) {
            panic!("aomp dep group: a task panicked");
        }
    }

    /// Run `f` *undeferred* on the calling thread as a dependence node:
    /// wire `deps`, wait for predecessors, run, release successors. This
    /// is the weaver's `Mechanism::task()` backend, where bodies are
    /// borrowed closures that cannot be boxed into deferred tasks.
    /// Panics from `f` propagate to the caller (poisoning the region).
    pub fn run_undeferred<R>(
        &self,
        deps: impl IntoIterator<Item = Dep>,
        f: impl FnOnce() -> R,
    ) -> R {
        let deps: Vec<Dep> = deps.into_iter().collect();
        obs::count(obs::Counter::DepTasks);
        let (idx, id, acquires) = {
            let mut g = self.shared.inner.lock();
            assert!(
                !g.deferred(),
                "aomp dep group: run_undeferred() on a held, unreleased group"
            );
            self.wire(&mut g, &deps, None)
        };
        for a in acquires {
            hook::emit_team(|team, tid| HookEvent::TaskDepReady { team, tid, node: a });
        }
        let team = ctx::with_current(|c| c.map(|c| (Arc::clone(&c.shared), c.tid)));
        loop {
            {
                let g = self.shared.inner.lock();
                if g.nodes[idx].preds == 0 {
                    break;
                }
            }
            match &team {
                Some((shared, tid)) => {
                    shared.check_interrupt();
                    let token = shared.token();
                    let _w = shared.begin_wait(*tid, WaitSite::TaskWait);
                    if !hook::yield_blocked(token, *tid, WaitSite::TaskWait) {
                        let mut g = self.shared.inner.lock();
                        if g.nodes[idx].preds != 0 {
                            self.shared.cv.wait_for(&mut g, PARK_TIMEOUT);
                        }
                    }
                }
                None => {
                    let mut g = self.shared.inner.lock();
                    if g.nodes[idx].preds != 0 {
                        self.shared.cv.wait_for(&mut g, PARK_TIMEOUT);
                    }
                }
            }
        }
        hook::emit_team(|team, tid| HookEvent::TaskDepReady {
            team,
            tid,
            node: id,
        });
        let r = f();
        self.complete(idx);
        r
    }
}

// ---------------------------------------------------------------------------
// Ambient group (macro surface)
// ---------------------------------------------------------------------------

std::thread_local! {
    static AMBIENT: std::cell::RefCell<Vec<DepGroup>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run `f` with `group` as the thread's ambient dependence group:
/// [`spawn_depend`] calls inside (the `#[task(depend(...))]` expansion)
/// land in it. Scopes nest; the innermost wins.
pub fn scope<R>(group: &DepGroup, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(group.clone()));
    let _pop = Pop;
    f()
}

/// Spawn into the ambient [`scope`] group, or — sequential semantics when
/// no group is ambient — run the body inline. This is what
/// `#[task(depend(...))]` expands to.
pub fn spawn_depend<F>(deps: Vec<Dep>, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let g = AMBIENT.with(|s| s.borrow().last().cloned());
    match g {
        Some(g) => {
            g.spawn(deps, f);
        }
        None => f(),
    }
}

// ---------------------------------------------------------------------------
// Taskloop
// ---------------------------------------------------------------------------

#[derive(Default)]
struct TlInner {
    /// Unstarted iteration windows `[lo, hi)` (logical iteration
    /// numbers). Seeded with the whole range as ONE window; further
    /// windows only appear via lazy splits.
    queue: Vec<(u64, u64)>,
    seeded: bool,
    done: u64,
    total: u64,
    /// Members currently parked wanting work — the lazy-split signal.
    waiters: usize,
}

#[derive(Default)]
struct TlState {
    inner: Mutex<TlInner>,
    cv: Condvar,
}

/// The `taskloop` construct: a work-shared loop that starts as a single
/// range task and splits *lazily* — a worker sheds half of its remaining
/// window only when it observes another member waiting at a min-chunk
/// bite boundary. Contrast with [`Schedule::Dynamic`](crate::schedule):
/// no up-front chunking, so an uncontended loop runs with zero queue
/// traffic beyond the seed.
///
/// Like [`ForConstruct`](crate::workshare::ForConstruct), the construct
/// is `static` at the call site (per-encounter state lives in team slots)
/// and executes the whole range inline outside a parallel region.
pub struct TaskloopConstruct {
    key: u64,
    min_chunk: u64,
}

impl Default for TaskloopConstruct {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskloopConstruct {
    /// New construct with the adaptive schedule's min-chunk floor (1).
    pub fn new() -> TaskloopConstruct {
        TaskloopConstruct {
            key: ctx::fresh_key(),
            min_chunk: match crate::schedule::Schedule::ADAPTIVE {
                crate::schedule::Schedule::Adaptive { min_chunk } => min_chunk,
                _ => 1,
            },
        }
    }

    /// Override the bite/split granule (`grainsize` in OpenMP terms).
    pub fn min_chunk(mut self, n: u64) -> TaskloopConstruct {
        assert!(n >= 1, "taskloop min_chunk must be >= 1");
        self.min_chunk = n;
        self
    }

    /// Execute `body(lo, hi, step)` over `range` cooperatively with the
    /// current team. Every iteration is executed exactly once; the
    /// member-to-window assignment is schedule-dependent (and explored by
    /// aomp-check via the `ChunkHandout { kind: "taskloop" }` events).
    pub fn execute<F>(&self, range: LoopRange, body: F)
    where
        F: Fn(i64, i64, i64) + Sync,
    {
        let count = range.count();
        let team = ctx::with_current(|c| {
            c.map(|c| (Arc::clone(&c.shared), c.tid, c.next_round(self.key)))
        });
        let Some((shared, tid, round)) = team else {
            // Outside a team: sequential semantics, whole range inline.
            if count > 0 {
                body(range.start, range.end, range.step);
            }
            return;
        };
        let slot: Arc<TlState> = shared.slot(self.key, round);
        {
            let mut g = slot.inner.lock();
            if !g.seeded {
                g.seeded = true;
                g.total = count;
                if count > 0 {
                    g.queue.push((0, count));
                }
            }
        }
        let token = shared.token();
        loop {
            let win = {
                let mut g = slot.inner.lock();
                if g.done >= g.total {
                    None
                } else {
                    g.queue.pop()
                }
            };
            let Some((mut lo, mut hi)) = win else {
                let parked = {
                    let mut g = slot.inner.lock();
                    if g.done >= g.total {
                        break;
                    }
                    if !g.queue.is_empty() {
                        continue;
                    }
                    g.waiters += 1;
                    true
                };
                debug_assert!(parked);
                shared.check_interrupt();
                {
                    let _w = shared.begin_wait(tid, WaitSite::TaskWait);
                    if !hook::yield_blocked(token, tid, WaitSite::TaskWait) {
                        let mut g = slot.inner.lock();
                        if g.queue.is_empty() && g.done < g.total {
                            slot.cv.wait_for(&mut g, PARK_TIMEOUT);
                        }
                    }
                }
                slot.inner.lock().waiters -= 1;
                continue;
            };
            while lo < hi {
                shared.check_interrupt();
                let bite = (lo + self.min_chunk).min(hi);
                hook::emit(|| HookEvent::ChunkHandout {
                    team: token,
                    tid,
                    kind: "taskloop",
                    lo,
                    hi: bite,
                });
                let sub = range.slice_iters(lo, bite);
                body(sub.start, sub.end, sub.step);
                let split = {
                    let mut g = slot.inner.lock();
                    g.done += bite - lo;
                    let remaining = hi - bite;
                    // Lazy split: only shed work once a thief is waiting
                    // and the remainder is worth splitting.
                    if g.waiters > 0 && remaining > self.min_chunk {
                        let mid = bite + remaining / 2;
                        g.queue.push((mid, hi));
                        hi = mid;
                        true
                    } else {
                        g.done >= g.total
                    }
                };
                if split {
                    slot.cv.notify_all();
                }
                lo = bite;
            }
        }
        shared.detach_slot(self.key, round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{self, RegionConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tag_identity() {
        let a = [0u64; 4];
        assert_eq!(Tag::of(&a), Tag::of(&a));
        assert_ne!(Tag::of(&a[0]), Tag::of(&a[1]));
        assert_eq!(Tag::from("x"), Tag::Name("x"));
        assert_ne!(Tag::part("x", 0), Tag::part("x", 1));
    }

    /// out → in → inout chain must serialize, executor mode.
    #[test]
    fn executor_mode_orders_raw_war_waw() {
        let g = DepGroup::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for step in 0..3usize {
            let log = Arc::clone(&log);
            let mode = match step {
                0 => Dep::output("cell"),
                1 => Dep::input("cell"),
                _ => Dep::inout("cell"),
            };
            g.spawn([mode], move || log.lock().push(step));
        }
        g.wait().unwrap();
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    /// Independent readers between writers may interleave, but both
    /// writers are fenced by the reader set (WAR).
    #[test]
    fn readers_fence_next_writer() {
        for _ in 0..20 {
            let g = DepGroup::new();
            let hits = Arc::new(AtomicUsize::new(0));
            let w2_saw = Arc::new(AtomicUsize::new(usize::MAX));
            let h = Arc::clone(&hits);
            g.spawn([Dep::output("buf")], move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            for _ in 0..4 {
                let h = Arc::clone(&hits);
                g.spawn([Dep::input("buf")], move || {
                    // Writer 1 done, writer 2 not yet.
                    assert_eq!(h.load(Ordering::SeqCst) & 1, 1);
                    h.fetch_add(2, Ordering::SeqCst);
                });
            }
            let h = Arc::clone(&hits);
            let saw = Arc::clone(&w2_saw);
            g.spawn([Dep::output("buf")], move || {
                saw.store(h.load(Ordering::SeqCst), Ordering::SeqCst);
            });
            g.wait().unwrap();
            // All four readers (and writer 1) strictly before writer 2.
            assert_eq!(w2_saw.load(Ordering::SeqCst), 1 + 4 * 2);
        }
    }

    #[test]
    fn team_mode_runs_graph() {
        let g = DepGroup::new();
        let sum = Arc::new(AtomicUsize::new(0));
        let g2 = g.clone();
        let sum2 = Arc::clone(&sum);
        region::parallel_with(RegionConfig::new().threads(4), move || {
            if ctx::thread_id() == 0 {
                for i in 0..16usize {
                    let s = Arc::clone(&sum2);
                    let dep = if i % 4 == 0 {
                        Dep::output(Tag::part("lane", (i / 4) as u64))
                    } else {
                        Dep::input(Tag::part("lane", (i / 4) as u64))
                    };
                    g2.spawn([dep], move || {
                        s.fetch_add(i + 1, Ordering::Relaxed);
                    });
                }
                g2.close();
            }
            g2.run().unwrap();
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=16).sum::<usize>());
    }

    #[test]
    fn cycle_is_fallible_not_deadlock() {
        let g = DepGroup::held();
        let ran = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::clone(&ran);
        let r2 = Arc::clone(&ran);
        let a = g.spawn([], move || {
            r1.fetch_add(1, Ordering::SeqCst);
        });
        let b = g.spawn([], move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        g.edge(a, b);
        g.edge(b, a);
        g.close();
        let err = g.release().unwrap_err();
        assert!(matches!(&err, DepError::Cycle { nodes } if nodes.len() == 2));
        // Joins fail fallibly too, and nothing ran.
        assert_eq!(g.wait(), Err(err.clone()));
        assert_eq!(g.run(), Err(err));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn held_release_without_cycle_runs() {
        let g = DepGroup::held();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let a = g.spawn([], move || o1.lock().push('a'));
        let b = g.spawn([], move || o2.lock().push('b'));
        g.edge(a, b);
        g.release().unwrap();
        g.wait().unwrap();
        assert_eq!(*order.lock(), vec!['a', 'b']);
    }

    #[test]
    fn empty_group_wait_is_immediate() {
        let g = DepGroup::new();
        g.wait().unwrap();
        let g = DepGroup::new();
        g.close();
        g.run().unwrap();
    }

    #[test]
    fn dep_task_panic_propagates_at_join() {
        let g = DepGroup::new();
        g.spawn([], || panic!("boom"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| g.wait())).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task panicked"), "got: {msg}");
    }

    #[test]
    fn ambient_scope_spawns_and_falls_back_inline() {
        let g = DepGroup::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        scope(&g, || {
            spawn_depend(vec![Dep::output("t")], move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        g.wait().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // No ambient group: inline.
        let h = Arc::clone(&hits);
        spawn_depend(vec![], move || {
            h.fetch_add(10, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn run_undeferred_orders_against_spawned() {
        let g = DepGroup::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        g.spawn([Dep::output("x")], move || o1.lock().push(1));
        g.run_undeferred([Dep::input("x")], || order.lock().push(2));
        assert_eq!(*order.lock(), vec![1, 2]);
    }

    #[test]
    fn taskloop_covers_every_iteration_once() {
        static TL: std::sync::OnceLock<TaskloopConstruct> = std::sync::OnceLock::new();
        let tl = TL.get_or_init(|| TaskloopConstruct::new().min_chunk(3));
        let n = 257usize;
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let h = Arc::clone(&hits);
        region::parallel_with(RegionConfig::new().threads(4), move || {
            tl.execute(LoopRange::upto(0, n as i64), |lo, hi, step| {
                let mut i = lo;
                while i < hi {
                    h[i as usize].fetch_add(1, Ordering::Relaxed);
                    i += step;
                }
            });
        });
        for (i, c) in hits.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "iteration {i}");
        }
    }

    #[test]
    fn taskloop_inline_outside_team() {
        let tl = TaskloopConstruct::new();
        let seen = Mutex::new(Vec::new());
        tl.execute(LoopRange::new(10, 0, -2), |lo, hi, step| {
            let mut i = lo;
            while i > hi {
                seen.lock().push(i);
                i += step;
            }
        });
        assert_eq!(*seen.lock(), vec![10, 8, 6, 4, 2]);
    }

    #[test]
    fn taskloop_empty_range() {
        static TL: std::sync::OnceLock<TaskloopConstruct> = std::sync::OnceLock::new();
        let tl = TL.get_or_init(TaskloopConstruct::new);
        region::parallel_with(RegionConfig::new().threads(2), move || {
            tl.execute(LoopRange::upto(5, 5), |_, _, _| panic!("no iterations"));
        });
    }
}
