//! A reusable sense-reversing team barrier.
//!
//! Implements the paper's `@BarrierBefore` / `@BarrierAfter` semantics: a
//! synchronisation point scoped to the *team* (unlike `@Critical`, whose
//! scope is all threads in the system). The implementation is the classic
//! sense-reversing barrier from the concurrency literature: a shared
//! arrival counter plus a per-round "sense" bit, so the barrier is
//! reusable across an unbounded number of rounds without re-initialisation.
//!
//! Threads spin briefly and then park on a condition variable. The spin is
//! deliberately short: on oversubscribed hosts (including the single-core
//! CI container this reproduction runs on) long spinning starves the very
//! thread being waited for.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use crate::error;

/// Iterations of busy-waiting before parking on the condition variable.
const SPIN_LIMIT: u32 = 64;

/// Park timeout: bounds how long a thread sleeps before re-checking the
/// team poison flag, so a panic elsewhere in the team cannot leave
/// siblings blocked forever.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// A reusable sense-reversing barrier for a fixed-size team.
#[derive(Debug)]
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// Barrier for a team of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier team size must be >= 1");
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Team size this barrier synchronises.
    #[inline]
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// Block until all `n` team threads have called `wait`. Returns `true`
    /// on exactly one thread per round (the last arriver), mirroring
    /// `std::sync::Barrier`'s leader token.
    pub fn wait(&self) -> bool {
        self.wait_impl(None)
    }

    /// Like [`wait`](Self::wait) but aborts (by panicking with
    /// [`crate::error::TeamPoisoned`]) if `poison` becomes set while
    /// waiting — used inside teams so a panicking sibling cannot deadlock
    /// the region.
    pub fn wait_poisonable(&self, poison: &AtomicBool) -> bool {
        self.wait_impl(Some(poison))
    }

    fn wait_impl(&self, poison: Option<&AtomicBool>) -> bool {
        if let Some(p) = poison {
            if p.load(Ordering::Acquire) {
                error::poisoned();
            }
        }
        let local = !self.sense.load(Ordering::Acquire);
        let prev = self.count.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < self.n, "more threads than the barrier's team size called wait");
        if prev + 1 == self.n {
            // Last arriver: reset the counter for the next round *before*
            // releasing this round, then flip the sense under the lock so
            // parked waiters cannot miss the notification.
            self.count.store(0, Ordering::Relaxed);
            {
                let _g = self.lock.lock();
                self.sense.store(local, Ordering::Release);
            }
            self.cv.notify_all();
            true
        } else {
            for _ in 0..SPIN_LIMIT {
                if self.sense.load(Ordering::Acquire) == local {
                    return false;
                }
                std::hint::spin_loop();
            }
            let mut g = self.lock.lock();
            while self.sense.load(Ordering::Acquire) != local {
                if let Some(p) = poison {
                    if p.load(Ordering::Acquire) {
                        error::poisoned();
                    }
                }
                self.cv.wait_for(&mut g, PARK_TIMEOUT);
            }
            false
        }
    }

    /// Wake all parked waiters so they can observe a freshly-set poison
    /// flag. Called by the team when a member panics.
    pub(crate) fn kick(&self) {
        let _g = self.lock.lock();
        drop(_g);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_meet() {
        let n = 4;
        let b = Arc::new(SenseBarrier::new(n));
        let phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                s.spawn(move || {
                    for round in 0..50usize {
                        // Everyone must observe the same phase before the
                        // barrier releases the round.
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert_eq!(phase.load(Ordering::SeqCst), (round + 1) * n);
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let n = 3;
        let rounds = 40;
        let b = Arc::new(SenseBarrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                s.spawn(move || {
                    for _ in 0..rounds {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let b = Arc::new(SenseBarrier::new(2));
        let poison = Arc::new(AtomicBool::new(false));
        let b2 = Arc::clone(&b);
        let p2 = Arc::clone(&poison);
        let waiter = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.wait_poisonable(&p2);
            }));
            r.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        poison.store(true, Ordering::Release);
        b.kick();
        assert!(waiter.join().unwrap(), "waiter should unwind with TeamPoisoned");
    }
}
