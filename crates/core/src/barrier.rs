//! A reusable sense-reversing team barrier.
//!
//! Implements the paper's `@BarrierBefore` / `@BarrierAfter` semantics: a
//! synchronisation point scoped to the *team* (unlike `@Critical`, whose
//! scope is all threads in the system). The implementation is the classic
//! sense-reversing barrier from the concurrency literature: a shared
//! arrival counter plus a per-round "sense" bit, so the barrier is
//! reusable across an unbounded number of rounds without re-initialisation.
//!
//! Threads spin briefly and then park on a condition variable. The spin is
//! deliberately short: on oversubscribed hosts (including the single-core
//! CI container this reproduction runs on) long spinning starves the very
//! thread being waited for.
//!
//! All parked waits are *bounded*: the park timeout caps how long a
//! thread sleeps before re-checking the team's poison/cancel flags, so a
//! panic, a [`cancel_team`](crate::ctx::cancel_team) or the stall
//! watchdog can never leave siblings blocked forever. An explicit
//! deadline variant ([`wait_timeout`](SenseBarrier::wait_timeout)) lets a
//! caller give up on a round entirely.
//!
//! With `AOMP_METRICS` on, every barrier entry through
//! [`ctx::team_barrier`](crate::ctx) records its blocked time in the
//! [`obs::Lat::WaitBarrier`](crate::obs::Lat) histogram and each
//! member's round exit ticks
//! [`obs::Counter::BarrierRounds`](crate::obs::Counter) — the wait-site
//! registration path is the single chokepoint, so this module needs no
//! probes of its own.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::error::{self, WaitTimedOut};

/// Iterations of busy-waiting before parking on the condition variable.
const SPIN_LIMIT: u32 = 64;

/// Park timeout: bounds how long a thread sleeps before re-checking the
/// team poison/cancel flags, so a panic (or cancellation) elsewhere in
/// the team cannot leave siblings blocked forever. The stall watchdog
/// piggybacks on the same loop: waiters re-register liveness every tick.
pub(crate) const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// A reusable sense-reversing barrier for a fixed-size team.
#[derive(Debug)]
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// Barrier for a team of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier team size must be >= 1");
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Team size this barrier synchronises.
    #[inline]
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// Block until all `n` team threads have called `wait`. Returns `true`
    /// on exactly one thread per round (the last arriver), mirroring
    /// `std::sync::Barrier`'s leader token.
    pub fn wait(&self) -> bool {
        self.wait_inner(&|| {}, &|| false, None)
            .expect("unbounded barrier wait cannot time out")
    }

    /// Like [`wait`](Self::wait) but aborts (by panicking with
    /// [`crate::error::TeamPoisoned`]) if `poison` becomes set while
    /// waiting — used inside teams so a panicking sibling cannot deadlock
    /// the region.
    pub fn wait_poisonable(&self, poison: &AtomicBool) -> bool {
        self.wait_checked(&|| {
            if poison.load(Ordering::Acquire) {
                error::poisoned();
            }
        })
    }

    /// Like [`wait`](Self::wait) but re-runs `check` before arrival and
    /// on every park-timeout tick; `check` aborts the wait by panicking
    /// (with `TeamPoisoned` or `Cancelled`). This is the hook team
    /// primitives use for poison *and* cancellation handling.
    pub(crate) fn wait_checked(&self, check: &dyn Fn()) -> bool {
        self.wait_inner(check, &|| false, None)
            .expect("unbounded barrier wait cannot time out")
    }

    /// Like [`wait_checked`](Self::wait_checked) but offers each would-be
    /// park to `park` first (the scheduler hook's blocked callback). When
    /// `park` returns `true` the hook parked the thread itself and the
    /// wait re-checks the sense immediately; `false` falls back to the
    /// bounded condvar park.
    pub(crate) fn wait_park(&self, check: &dyn Fn(), park: &dyn Fn() -> bool) -> bool {
        self.wait_inner(check, park, None)
            .expect("unbounded barrier wait cannot time out")
    }

    /// Barrier wait with a deadline: gives up (retracting this thread's
    /// arrival so the barrier stays consistent) if the round does not
    /// complete within `timeout`. Returns the leader token on success.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<bool, WaitTimedOut> {
        self.wait_inner(&|| {}, &|| false, Some(timeout))
    }

    fn wait_inner(
        &self,
        check: &dyn Fn(),
        park: &dyn Fn() -> bool,
        timeout: Option<Duration>,
    ) -> Result<bool, WaitTimedOut> {
        check();
        let deadline = timeout.map(|t| Instant::now() + t);
        let local = !self.sense.load(Ordering::Acquire);
        let prev = self.count.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            prev < self.n,
            "more threads than the barrier's team size called wait"
        );
        if prev + 1 == self.n {
            // Last arriver: reset the counter for the next round and flip
            // the sense under the lock, so parked waiters cannot miss the
            // notification and timed-out waiters cannot retract an
            // arrival from an already-released round.
            {
                let _g = self.lock.lock();
                self.count.store(0, Ordering::Relaxed);
                self.sense.store(local, Ordering::Release);
            }
            self.cv.notify_all();
            Ok(true)
        } else {
            for _ in 0..SPIN_LIMIT {
                if self.sense.load(Ordering::Acquire) == local {
                    return Ok(false);
                }
                std::hint::spin_loop();
            }
            // Slow path. `check` and `park` may block or unwind, so they
            // run with no barrier lock held; the release path flips the
            // sense under the lock, so re-checking the sense under the
            // lock before any condvar wait (or retraction) makes wakeups
            // loss-free and retractions sound.
            loop {
                if self.sense.load(Ordering::Acquire) == local {
                    return Ok(false);
                }
                check();
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        let _g = self.lock.lock();
                        if self.sense.load(Ordering::Acquire) == local {
                            return Ok(false);
                        }
                        // Retract our arrival: under the lock the round
                        // provably has not been released, so the counter
                        // still includes us.
                        self.count.fetch_sub(1, Ordering::AcqRel);
                        return Err(WaitTimedOut {
                            timeout: timeout.unwrap(),
                        });
                    }
                }
                if !park() {
                    let mut g = self.lock.lock();
                    if self.sense.load(Ordering::Acquire) != local {
                        self.cv.wait_for(&mut g, PARK_TIMEOUT);
                    }
                }
            }
        }
    }

    /// Wake all parked waiters so they can observe a freshly-set
    /// poison/cancel flag. Called by the team when a member panics or the
    /// team is cancelled.
    pub(crate) fn kick(&self) {
        let _g = self.lock.lock();
        drop(_g);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_meet() {
        let n = 4;
        let b = Arc::new(SenseBarrier::new(n));
        let phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                s.spawn(move || {
                    for round in 0..50usize {
                        // Everyone must observe the same phase before the
                        // barrier releases the round.
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert_eq!(phase.load(Ordering::SeqCst), (round + 1) * n);
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let n = 3;
        let rounds = 40;
        let b = Arc::new(SenseBarrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                s.spawn(move || {
                    for _ in 0..rounds {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let b = Arc::new(SenseBarrier::new(2));
        let poison = Arc::new(AtomicBool::new(false));
        let b2 = Arc::clone(&b);
        let p2 = Arc::clone(&poison);
        let waiter = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.wait_poisonable(&p2);
            }));
            r.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        poison.store(true, Ordering::Release);
        b.kick();
        assert!(
            waiter.join().unwrap(),
            "waiter should unwind with TeamPoisoned"
        );
    }

    #[test]
    fn wait_timeout_expires_and_barrier_recovers() {
        let b = Arc::new(SenseBarrier::new(2));
        let t0 = Instant::now();
        let r = b.wait_timeout(Duration::from_millis(30));
        assert!(r.is_err(), "no partner: the wait must time out");
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // The timed-out arrival was retracted: a full round still works.
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        let lead = b.wait();
        let other = h.join().unwrap();
        assert!(lead ^ other, "exactly one leader after recovery");
    }

    #[test]
    fn wait_timeout_succeeds_when_round_completes() {
        let b = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait_timeout(Duration::from_secs(5)));
        let lead = b.wait();
        let other = h.join().unwrap().expect("round completed in time");
        assert!(lead ^ other);
    }
}
