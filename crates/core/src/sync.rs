//! `@Single`, `@Master` and the readers/writer construct.
//!
//! `@Single` conditionally executes a method call by exactly one thread of
//! the team (whichever arrives first); `@Master` by the master thread
//! (team id 0). Both can be applied to value-returning methods, in which
//! case *the result is propagated to all threads in the team* (paper
//! §III-C) — the broadcast variants below. The readers/writer mechanism
//! allows multiple readers but a single exclusive writer, with `@Reader` /
//! `@Writer` marking the two kinds of access.

use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::ctx::{self, fresh_key};
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};

const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Shared broadcast cell: the executing thread stores the value, the rest
/// of the team blocks until it appears.
struct BroadcastCell<T> {
    claimed: AtomicBool,
    value: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Default for BroadcastCell<T> {
    fn default() -> Self {
        Self {
            claimed: AtomicBool::new(false),
            value: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

impl<T: Clone> BroadcastCell<T> {
    fn publish(&self, v: &T) {
        *self.value.lock() = Some(v.clone());
        self.cv.notify_all();
    }

    /// Block until the value is published. `check` runs on every park
    /// tick and aborts the wait by unwinding (poison/cancel), so a
    /// broadcast whose executing thread died cannot strand the team.
    /// `park` (the scheduler hook's blocked callback) is offered each
    /// would-be park first; both run with the cell unlocked so they may
    /// block or unwind freely.
    fn await_value(&self, check: impl Fn(), park: impl Fn() -> bool) -> T {
        loop {
            {
                let g = self.value.lock();
                if let Some(v) = g.as_ref() {
                    return v.clone();
                }
            }
            check();
            if !park() {
                let mut g = self.value.lock();
                if g.is_none() {
                    self.cv.wait_for(&mut g, PARK_TIMEOUT);
                }
            }
        }
    }
}

/// The `@Single` construct: per encounter, the first team thread to arrive
/// executes the body.
///
/// Create one handle per annotated method / call site.
#[derive(Debug)]
pub struct Single {
    key: u64,
}

impl Single {
    /// New single construct.
    pub fn new() -> Self {
        Self { key: fresh_key() }
    }

    /// Execute `f` on exactly one thread and broadcast its result to the
    /// whole team. Every thread returns the same value.
    pub fn run<T, F>(&self, f: F) -> T
    where
        T: Clone + Send + 'static,
        F: FnOnce() -> T,
    {
        ctx::with_current(|c| match c {
            None => f(),
            Some(c) if c.shared.n == 1 => f(),
            Some(c) => {
                let round = c.next_round(self.key);
                let cell = c.shared.slot::<BroadcastCell<T>>(self.key, round);
                let result = if !cell.claimed.swap(true, Ordering::AcqRel) {
                    let v = f();
                    cell.publish(&v);
                    c.shared.bump_progress();
                    hook::emit(|| HookEvent::BroadcastPublish {
                        team: c.shared.token(),
                        tid: c.tid,
                        site: WaitSite::SingleBroadcast,
                    });
                    v
                } else {
                    let team = c.shared.token();
                    let tid = c.tid;
                    let _w = c.shared.begin_wait(tid, WaitSite::SingleBroadcast);
                    let v = cell.await_value(
                        || c.shared.check_interrupt(),
                        || hook::yield_blocked(team, tid, WaitSite::SingleBroadcast),
                    );
                    // The value is in hand: this member is now ordered
                    // after the publish (the HB edge the race checker uses).
                    hook::emit(|| HookEvent::BroadcastReceive {
                        team,
                        tid,
                        site: WaitSite::SingleBroadcast,
                    });
                    v
                };
                c.shared.detach_slot(self.key, round);
                result
            }
        })
    }

    /// Execute `f` on exactly one thread; the others skip immediately
    /// (OpenMP `single nowait`). Returns `Some` on the executing thread.
    pub fn run_nowait<T, F>(&self, f: F) -> Option<T>
    where
        F: FnOnce() -> T,
    {
        ctx::with_current(|c| match c {
            None => Some(f()),
            Some(c) if c.shared.n == 1 => Some(f()),
            Some(c) => {
                let round = c.next_round(self.key);
                let cell = c.shared.slot::<BroadcastCell<()>>(self.key, round);
                let r = if !cell.claimed.swap(true, Ordering::AcqRel) {
                    Some(f())
                } else {
                    None
                };
                c.shared.detach_slot(self.key, round);
                r
            }
        })
    }
}

impl Default for Single {
    fn default() -> Self {
        Self::new()
    }
}

/// The `@Master` construct: only the team's master thread (id 0) executes
/// the body.
#[derive(Debug)]
pub struct Master {
    key: u64,
}

impl Master {
    /// New master construct.
    pub fn new() -> Self {
        Self { key: fresh_key() }
    }

    /// Execute `f` on the master thread and broadcast its result to the
    /// whole team.
    pub fn run<T, F>(&self, f: F) -> T
    where
        T: Clone + Send + 'static,
        F: FnOnce() -> T,
    {
        ctx::with_current(|c| match c {
            None => f(),
            Some(c) if c.shared.n == 1 => f(),
            Some(c) => {
                let round = c.next_round(self.key);
                let cell = c.shared.slot::<BroadcastCell<T>>(self.key, round);
                let result = if c.tid == 0 {
                    let v = f();
                    cell.publish(&v);
                    c.shared.bump_progress();
                    hook::emit(|| HookEvent::BroadcastPublish {
                        team: c.shared.token(),
                        tid: 0,
                        site: WaitSite::MasterBroadcast,
                    });
                    v
                } else {
                    let team = c.shared.token();
                    let tid = c.tid;
                    let _w = c.shared.begin_wait(tid, WaitSite::MasterBroadcast);
                    let v = cell.await_value(
                        || c.shared.check_interrupt(),
                        || hook::yield_blocked(team, tid, WaitSite::MasterBroadcast),
                    );
                    hook::emit(|| HookEvent::BroadcastReceive {
                        team,
                        tid,
                        site: WaitSite::MasterBroadcast,
                    });
                    v
                };
                c.shared.detach_slot(self.key, round);
                result
            }
        })
    }

    /// Execute `f` on the master thread only; other threads skip
    /// immediately (plain `@Master`, paper Figure 8). Returns `Some` on
    /// the master.
    pub fn run_nowait<T, F>(&self, f: F) -> Option<T>
    where
        F: FnOnce() -> T,
    {
        ctx::with_current(|c| match c {
            None => Some(f()),
            Some(c) => {
                if c.tid == 0 {
                    Some(f())
                } else {
                    None
                }
            }
        })
    }
}

impl Default for Master {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: run `f` on the master thread of the innermost team (or
/// unconditionally outside a region); other threads skip.
pub fn master_only<T>(f: impl FnOnce() -> T) -> Option<T> {
    if ctx::thread_id() == 0 {
        Some(f())
    } else {
        None
    }
}

/// The readers/writer construct (`@Reader` / `@Writer`): multiple
/// concurrent readers, one exclusive writer. Process-scoped, like
/// `@Critical`.
#[derive(Debug, Default)]
pub struct RwConstruct {
    lock: RwLock<()>,
}

impl RwConstruct {
    /// New readers/writer construct.
    pub fn new() -> Self {
        Self::default()
    }

    /// Execute a reading access (`@Reader`): shared with other readers.
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.lock.read();
        f()
    }

    /// Execute a writing access (`@Writer`): exclusive.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.lock.write();
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::thread_id;
    use crate::region::{parallel_with, RegionConfig};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_executes_once_and_broadcasts() {
        let single = Single::new();
        let execs = AtomicUsize::new(0);
        let values = parking_lot::Mutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(4), || {
            let v = single.run(|| {
                execs.fetch_add(1, Ordering::SeqCst);
                1234u64
            });
            values.lock().push(v);
        });
        assert_eq!(execs.load(Ordering::SeqCst), 1);
        assert_eq!(values.into_inner(), vec![1234; 4]);
    }

    #[test]
    fn single_fresh_per_encounter() {
        let single = Single::new();
        let execs = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(3), || {
            for _ in 0..10 {
                single.run(|| {
                    execs.fetch_add(1, Ordering::SeqCst);
                });
                crate::ctx::barrier();
            }
        });
        assert_eq!(execs.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_nowait_returns_some_once() {
        let single = Single::new();
        let somes = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            if single.run_nowait(|| ()).is_some() {
                somes.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(somes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn master_runs_on_tid0_and_broadcasts() {
        let master = Master::new();
        let exec_tid = AtomicUsize::new(usize::MAX);
        let values = parking_lot::Mutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(4), || {
            let v = master.run(|| {
                exec_tid.store(thread_id(), Ordering::SeqCst);
                99i32
            });
            values.lock().push(v);
        });
        assert_eq!(exec_tid.load(Ordering::SeqCst), 0);
        assert_eq!(values.into_inner(), vec![99; 4]);
    }

    #[test]
    fn master_nowait_skips_workers() {
        let master = Master::new();
        let ran = AtomicUsize::new(0);
        let skipped = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            match master.run_nowait(|| ()) {
                Some(()) => ran.fetch_add(1, Ordering::SeqCst),
                None => skipped.fetch_add(1, Ordering::SeqCst),
            };
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(skipped.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn constructs_work_sequentially() {
        let single = Single::new();
        let master = Master::new();
        assert_eq!(single.run(|| 5), 5);
        assert_eq!(single.run_nowait(|| 6), Some(6));
        assert_eq!(master.run(|| 7), 7);
        assert_eq!(master.run_nowait(|| 8), Some(8));
        assert_eq!(master_only(|| 9), Some(9));
    }

    #[test]
    fn rw_construct_allows_updates_and_reads() {
        let rw = RwConstruct::new();
        let data = parking_lot::Mutex::new(0u64); // payload guarded logically by rw
        let reads = AtomicUsize::new(0);
        parallel_with(RegionConfig::new().threads(4), || {
            for i in 0..50 {
                if thread_id() == 0 && i % 10 == 0 {
                    rw.write(|| {
                        *data.lock() += 1;
                    });
                } else {
                    rw.read(|| {
                        let _ = *data.lock();
                        reads.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        });
        assert_eq!(*data.lock(), 5);
        assert!(reads.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn master_only_outside_region() {
        assert_eq!(master_only(|| 1), Some(1));
    }
}
