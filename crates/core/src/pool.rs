//! A persistent team pool — the optimised parallel-region executor.
//!
//! The paper's Figure 9 model (and [`region::parallel`](crate::region::parallel)) spawns a fresh
//! team per region, as AOmpLib v1.0 did; its §VII names "the optimisation
//! of several mechanisms" as current work. This module is that
//! optimisation: a [`TeamPool`] keeps `n − 1` workers parked and
//! dispatches region bodies to them, eliminating thread creation from
//! the region-entry path. The `region_pool` ablation bench quantifies the
//! difference.
//!
//! Semantics match [`region::parallel_with`](crate::region::parallel_with): every member (the caller
//! is the master, id 0) runs the body once under a fresh team context;
//! panics poison the team and re-raise on the caller.
//!
//! One deliberate restriction: a body must not re-enter the *same* pool
//! (the workers are busy executing it); use nested spawned regions or a
//! second pool for nesting.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ctx::{CtxGuard, TeamShared};

/// Type-erased pointer to the job body. The pointee lives on the
/// dispatching caller's stack; the completion protocol guarantees all
/// uses happen before `parallel` returns.
#[derive(Clone, Copy)]
struct BodyPtr(*const (dyn Fn() + Sync));
// SAFETY: the pointee is Sync and the pool's completion protocol bounds
// every dereference within the lifetime of the `parallel` call.
unsafe impl Send for BodyPtr {}

struct Job {
    generation: u64,
    body: Option<BodyPtr>,
    team: Option<Arc<TeamShared>>,
    shutdown: bool,
}

struct PoolShared {
    job: Mutex<Job>,
    start: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    generation: AtomicU64,
    /// Serialises concurrent `parallel` dispatches on one pool.
    dispatch: Mutex<()>,
}

/// A reusable team of worker threads for executing parallel regions.
pub struct TeamPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl TeamPool {
    /// Pool executing regions with a team of `threads` (spawns
    /// `threads − 1` persistent workers).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a team pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            job: Mutex::new(Job {
                generation: 0,
                body: None,
                team: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic_payload: Mutex::new(None),
            generation: AtomicU64::new(0),
            dispatch: Mutex::new(()),
        });
        let handles = (1..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aomp-pool-t{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn aomp pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            size: threads,
        }
    }

    /// Team size of this pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute `body` as a parallel region on the pooled team. Blocks
    /// until every member has finished; panics (on the caller) if any
    /// member panicked.
    pub fn parallel<F>(&self, body: F)
    where
        F: Fn() + Sync,
    {
        let n = if crate::runtime::parallel_enabled() {
            self.size
        } else {
            1
        };
        let team = Arc::new(TeamShared::new(n, crate::ctx::level() + 1));
        if n == 1 {
            let _guard = CtxGuard::enter(team, 0);
            body();
            return;
        }
        // One region at a time per pool; clear any stale panic payload
        // left by a region whose master itself panicked.
        let _dispatch = self.shared.dispatch.lock();
        *self.shared.panic_payload.lock() = None;
        // Erase the body's lifetime for the workers. SAFETY: the
        // completion wait below ensures no worker touches the pointer
        // after this frame ends.
        let wide: &(dyn Fn() + Sync) = &body;
        let ptr = BodyPtr(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(wide)
        });

        let generation = self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut job = self.shared.job.lock();
            job.generation = generation;
            job.body = Some(ptr);
            job.team = Some(Arc::clone(&team));
        }
        self.shared.start.notify_all();

        // The caller is the master.
        let master_result = {
            let _guard = CtxGuard::enter(Arc::clone(&team), 0);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(&body))
        };
        if master_result.is_err() {
            team.poison();
        }

        // Wait for all workers of this generation.
        {
            let mut done = self.shared.done.lock();
            while *done < self.size - 1 {
                self.shared.done_cv.wait(&mut done);
            }
            *done = 0;
        }
        // Re-raise: the master's own panic wins, else a worker's.
        if let Err(p) = master_result {
            std::panic::resume_unwind(p);
        }
        if let Some(p) = self.shared.panic_payload.lock().take() {
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for TeamPool {
    fn drop(&mut self) {
        {
            let mut job = self.shared.job.lock();
            job.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, tid: usize) {
    let mut last_generation = 0u64;
    loop {
        let (body, team) = {
            let mut job = shared.job.lock();
            loop {
                if job.shutdown {
                    return;
                }
                if job.generation != last_generation {
                    break;
                }
                shared.start.wait(&mut job);
            }
            last_generation = job.generation;
            (
                job.body.expect("job body set"),
                job.team.clone().expect("job team set"),
            )
        };
        let result = {
            let _guard = CtxGuard::enter(Arc::clone(&team), tid);
            // SAFETY: the dispatching `parallel` frame is alive until all
            // workers signal completion below.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*body.0)() }))
        };
        if let Err(p) = result {
            team.poison();
            let mut slot = shared.panic_payload.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut done = shared.done.lock();
        *done += 1;
        if *done == shared_workers(&shared, &team) {
            shared.done_cv.notify_all();
        }
        drop(done);
    }
}

fn shared_workers(_shared: &PoolShared, team: &TeamShared) -> usize {
    team.n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{team_size, thread_id};
    use crate::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn pool_runs_body_on_every_member() {
        let pool = TeamPool::new(4);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = TeamPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.parallel(|| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn pool_provides_team_context() {
        let pool = TeamPool::new(4);
        let ids = StdMutex::new(HashSet::new());
        pool.parallel(|| {
            assert_eq!(team_size(), 4);
            ids.lock().unwrap().insert(thread_id());
        });
        assert_eq!(ids.into_inner().unwrap(), (0..4).collect::<HashSet<_>>());
    }

    #[test]
    fn pool_supports_constructs() {
        let pool = TeamPool::new(4);
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 8 });
        let sum = std::sync::atomic::AtomicI64::new(0);
        pool.parallel(|| {
            for_c.execute(LoopRange::upto(0, 1000), |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += i;
                    i += step;
                }
                sum.fetch_add(local, Ordering::Relaxed);
            });
            crate::ctx::barrier();
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..1000).sum::<i64>());
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = TeamPool::new(1);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = TeamPool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel(|| {
                if thread_id() == 2 {
                    panic!("pooled worker dies");
                }
                crate::ctx::barrier();
            });
        }));
        assert!(r.is_err());
        // Pool still usable.
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn master_panic_propagates_and_pool_survives() {
        let pool = TeamPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel(|| {
                if thread_id() == 0 {
                    panic!("pooled master dies");
                }
                crate::ctx::barrier();
            });
        }));
        assert!(r.is_err());
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn kill_switch_degrades_pool_to_sequential() {
        let pool = TeamPool::new(4);
        crate::runtime::set_parallel_enabled(false);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        crate::runtime::set_parallel_enabled(true);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
