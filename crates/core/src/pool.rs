//! Hot teams — the pooled parallel-region executor and its runtime cache.
//!
//! The paper's Figure 9 model spawns a fresh team per region, as AOmpLib
//! v1.0 did; its §VII names "the optimisation of several mechanisms" as
//! current work and Figure 13 measures the cost: parallel-region entry
//! overhead. This module is that optimisation, and since the hot-teams
//! change it is the *default* region executor, not an ablation
//! alternative: [`region::parallel`](crate::region::parallel) (and with
//! it the `#[parallel]` macro, the weaver and every JGF kernel) leases a
//! [`HotTeam`] — `n − 1` workers parked on a condvar — from its
//! runtime's cache keyed by team size, dispatches the region body to
//! them, and returns the team on region exit. Each
//! [`Runtime`](crate::runtime::Runtime) owns one [`HotCache`] (the
//! process-wide cache of earlier versions is now just the default
//! runtime's), so two runtimes never trade teams, and dropping a
//! runtime closes its cache: idle teams are torn down and joined, and
//! in-flight leases tear their team down on return instead of
//! re-caching it. Thread creation leaves the
//! region-entry path entirely after the first region of each size; the
//! `fig13` bench (`BENCH_fig13.json`) quantifies the difference between
//! this path and the spawn path.
//!
//! The pooled path preserves the full member protocol: every member runs
//! under a fresh team context (`MemberStart`/`MemberEnd` hook events,
//! cancellation points, watchdog wait-site registration), panics are
//! filtered through the same exit classifier as spawned members, and a
//! panicking or cancelled region never poisons the team for its next
//! lease — the workers themselves hold no region state between
//! generations.
//!
//! Fallbacks to the spawn executor (fresh scoped threads): nested
//! regions (`ctx::level() > 0` — the cache only serves top-level
//! regions, avoiding lease re-entrancy), `AOMP_NO_POOL=1` /
//! [`runtime::set_pool_enabled(false)`](crate::runtime::set_pool_enabled),
//! [`RegionConfig::pooled(false)`](crate::region::RegionConfig::pooled),
//! and worker-spawn failure on a cache miss.
//! [`region::try_parallel_detached`](crate::region::try_parallel_detached)
//! always spawns: its abandonment contract needs threads the runtime can
//! afford to leak.
//!
//! One observable consequence of reuse: hot-team workers are long-lived
//! OS threads, so per-OS-thread state such as
//! [`ThreadLocalField`](crate::threadlocal::ThreadLocalField) copies
//! persists across regions until `reduce`/`drain_locals` — exactly as it
//! always did under a user-owned [`TeamPool`].
//!
//! [`TeamPool`] remains the *explicit* surface: a user-owned team with a
//! fixed size, independent of the runtime cache (leases never hand out a
//! `TeamPool`'s workers, and a `TeamPool` never borrows cached ones).
//! Its one deliberate restriction stands: a body must not re-enter the
//! *same* pool (the workers are busy executing it); nested
//! [`region::parallel`](crate::region::parallel) calls inside a pool
//! body fall back to spawned teams automatically.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ctx::{CtxGuard, TeamShared};
use crate::obs;
use crate::region::{record_member_exit, PayloadSlot};

/// Lifetime-erased view of one dispatched region: the body and the
/// first-panic slot, both living on the dispatching caller's stack. The
/// completion protocol (the master's [`HotTeam::join_workers`] blocks
/// until every worker signalled done) bounds all worker dereferences
/// within the dispatching call, which is what makes the `'static`
/// erasure sound.
#[derive(Clone, Copy)]
struct JobPtrs {
    body: &'static (dyn Fn() + Sync),
    payload: &'static PayloadSlot,
}

struct Job {
    generation: u64,
    ptrs: Option<JobPtrs>,
    team: Option<Arc<TeamShared>>,
    shutdown: bool,
}

struct HotShared {
    job: Mutex<Job>,
    start: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    generation: AtomicU64,
}

/// A parked team of `size − 1` worker threads that executes one region
/// generation at a time. This is the engine under both the runtime
/// hot-team cache (via [`lease`]) and the public [`TeamPool`].
pub(crate) struct HotTeam {
    shared: Arc<HotShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl HotTeam {
    /// Spawn `size − 1` parked workers. Unlike the region spawn path this
    /// is fallible: a cache miss under thread exhaustion must fall back
    /// to the (equally doomed, but consistently reported) spawn executor
    /// rather than panic inside the dispatcher.
    fn new(size: usize) -> std::io::Result<Self> {
        assert!(size >= 1, "a hot team needs at least one thread");
        let shared = Arc::new(HotShared {
            job: Mutex::new(Job {
                generation: 0,
                ptrs: None,
                team: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            generation: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(size - 1);
        for tid in 1..size {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("aomp-pool-t{tid}"))
                .spawn(move || worker_loop(worker_shared, tid));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Partial team: shut down what was spawned.
                    let partial = HotTeam {
                        shared,
                        handles,
                        size,
                    };
                    drop(partial);
                    return Err(e);
                }
            }
        }
        Ok(Self {
            shared,
            handles,
            size,
        })
    }

    pub(crate) fn size(&self) -> usize {
        self.size
    }

    fn workers(&self) -> usize {
        self.size - 1
    }

    /// Wake every worker with one region generation. The caller must pair
    /// this with [`join_workers`](Self::join_workers) before `team`,
    /// `payload` or `body` go out of scope, and must not dispatch again
    /// before that join — the single-`Job`-slot protocol has no queue.
    pub(crate) fn dispatch(
        &self,
        team: &Arc<TeamShared>,
        payload: &PayloadSlot,
        body: &(dyn Fn() + Sync),
    ) {
        // SAFETY: the pointees outlive every use — workers only touch
        // them between this dispatch and the completion signal that
        // `join_workers` waits for, and the caller keeps both alive
        // across that window (it owns them on its stack).
        let ptrs = JobPtrs {
            body: unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body)
            },
            payload: unsafe { std::mem::transmute::<&PayloadSlot, &'static PayloadSlot>(payload) },
        };
        let generation = self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut job = self.shared.job.lock();
            job.generation = generation;
            job.ptrs = Some(ptrs);
            job.team = Some(Arc::clone(team));
        }
        self.shared.start.notify_all();
    }

    /// Block until every worker of the current generation signalled
    /// completion, then reset the counter for the next generation.
    pub(crate) fn join_workers(&self) {
        let workers = self.workers();
        {
            let mut done = self.shared.done.lock();
            while *done < workers {
                self.shared.done_cv.wait(&mut done);
            }
            *done = 0;
        }
        // Clear the finished generation from the job slot: a cached idle
        // team must not keep the last region's `TeamShared` (watch state,
        // slot maps, its runtime back-reference) alive until the next
        // lease of the same size.
        let mut job = self.shared.job.lock();
        job.ptrs = None;
        job.team = None;
    }
}

impl Drop for HotTeam {
    fn drop(&mut self) {
        {
            let mut job = self.shared.job.lock();
            job.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<HotShared>, tid: usize) {
    let mut last_generation = 0u64;
    loop {
        let (ptrs, team) = {
            let mut job = shared.job.lock();
            loop {
                if job.shutdown {
                    return;
                }
                if job.generation != last_generation {
                    break;
                }
                shared.start.wait(&mut job);
            }
            last_generation = job.generation;
            (
                job.ptrs.expect("job body set"),
                job.team.clone().expect("job team set"),
            )
        };
        // The full member protocol, identical to a spawned team thread:
        // the ctx guard emits MemberStart/MemberEnd hook events and makes
        // cancellation points and wait-site registration work, and the
        // exit classifier filters benign unwinds (cancel echoes, sibling
        // poison) so only real panics reach the caller.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = CtxGuard::enter(Arc::clone(&team), tid);
            (ptrs.body)();
        }));
        record_member_exit(&team, ptrs.payload, r);
        let mut done = shared.done.lock();
        *done += 1;
        if *done == team.n - 1 {
            shared.done_cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// The runtime hot-team cache
// ---------------------------------------------------------------------

/// Cap on the total number of workers parked in *idle* cached teams.
/// Teams returned past the cap are torn down instead of cached — a bound
/// on quiescent thread usage, not on concurrency (leased teams don't
/// count; a burst of concurrent regions simply creates more teams).
const MAX_IDLE_WORKERS: usize = 256;

#[derive(Default)]
struct CacheState {
    /// Idle teams keyed by team size.
    teams: HashMap<usize, Vec<HotTeam>>,
    /// Total workers across all idle teams.
    workers: usize,
    /// Set by [`HotCache::close`] (runtime teardown): no more leases,
    /// and returning leases tear their team down instead of caching it.
    closed: bool,
}

/// One runtime's size-keyed cache of idle hot teams. Shared by the
/// runtime handle and every outstanding [`HotLease`] (a lease must be
/// able to return its team after the runtime handle is gone).
pub(crate) struct HotCache {
    state: Mutex<CacheState>,
    /// The owning runtime's counter scope: hit/miss/created events are
    /// attributed here as well as to the global registry.
    scope: Arc<obs::Scope>,
}

impl HotCache {
    pub(crate) fn new(scope: Arc<obs::Scope>) -> Arc<HotCache> {
        Arc::new(HotCache {
            state: Mutex::new(CacheState::default()),
            scope,
        })
    }

    /// Lease a hot team of exactly `size` threads, creating one on a
    /// miss. Returns `None` when the cache is closed or the workers
    /// cannot be spawned — the caller falls back to the spawn executor.
    pub(crate) fn lease(self: &Arc<Self>, size: usize) -> Option<HotLease> {
        debug_assert!(size >= 2, "size-1 regions run inline, not pooled");
        let cached = {
            let mut st = self.state.lock();
            if st.closed {
                return None;
            }
            match st.teams.get_mut(&size).and_then(|v| v.pop()) {
                Some(t) => {
                    st.workers -= t.workers();
                    Some(t)
                }
                None => None,
            }
        };
        let team = match cached {
            Some(t) => {
                obs::count_always(obs::Counter::PoolCacheHit);
                self.scope.bump(obs::Counter::PoolCacheHit);
                t
            }
            None => {
                obs::count_always(obs::Counter::PoolCacheMiss);
                self.scope.bump(obs::Counter::PoolCacheMiss);
                let t = HotTeam::new(size).ok()?;
                obs::count_always(obs::Counter::TeamsCreated);
                self.scope.bump(obs::Counter::TeamsCreated);
                t
            }
        };
        Some(HotLease {
            team: Some(team),
            cache: Arc::clone(self),
        })
    }

    /// Close the cache and tear down every idle team (joins their
    /// workers — bounded by the member protocol: idle teams are parked,
    /// not running user code). Permanent; called from runtime teardown.
    pub(crate) fn close(&self) {
        let teams = {
            let mut st = self.state.lock();
            st.closed = true;
            st.workers = 0;
            std::mem::take(&mut st.teams)
        };
        // Tear down outside the lock: each HotTeam::drop joins workers.
        drop(teams);
    }
}

/// Monotonic counters describing how multi-thread regions were executed;
/// used by the hot-team tests and the `fig13` bench. Deltas between two
/// snapshots attribute the regions in between.
///
/// Thin compatibility view over the [`obs`](crate::obs) registry (these
/// counters are always on there — no `AOMP_METRICS` opt-in needed);
/// [`obs::snapshot`](crate::obs::snapshot) additionally reports cache
/// hits/misses and everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotTeamStats {
    /// Regions served by a cached/leased hot team.
    pub pooled_regions: u64,
    /// Regions that fell back to freshly spawned scoped threads.
    pub spawned_regions: u64,
    /// Hot teams created on cache misses (lower = better reuse).
    pub teams_created: u64,
}

/// Snapshot of the process-wide hot-team counters — the union across
/// every runtime instance. Per-runtime attribution is available from
/// [`Runtime::hot_team_stats`](crate::runtime::Runtime::hot_team_stats).
pub fn hot_team_stats() -> HotTeamStats {
    let s = obs::snapshot();
    HotTeamStats {
        pooled_regions: s.counter(obs::Counter::RegionPooled),
        spawned_regions: s.counter(obs::Counter::RegionSpawned),
        teams_created: s.counter(obs::Counter::TeamsCreated),
    }
}

pub(crate) fn stats_from_scope(scope: &obs::Scope) -> HotTeamStats {
    HotTeamStats {
        pooled_regions: scope.counter(obs::Counter::RegionPooled),
        spawned_regions: scope.counter(obs::Counter::RegionSpawned),
        teams_created: scope.counter(obs::Counter::TeamsCreated),
    }
}

pub(crate) fn note_pooled_region(scope: &obs::Scope) {
    obs::count_always(obs::Counter::RegionPooled);
    scope.bump(obs::Counter::RegionPooled);
}

pub(crate) fn note_spawned_region(scope: &obs::Scope) {
    obs::count_always(obs::Counter::RegionSpawned);
    scope.bump(obs::Counter::RegionSpawned);
}

/// An exclusive lease on a [`HotTeam`] from a runtime's cache. Dropping
/// the lease returns the team to the cache (or tears it down past
/// [`MAX_IDLE_WORKERS`], or when the cache has been closed by runtime
/// teardown). Exclusivity is the reason the hot path needs no dispatch
/// serialisation: concurrent top-level regions each hold their own team.
pub(crate) struct HotLease {
    team: Option<HotTeam>,
    cache: Arc<HotCache>,
}

impl HotLease {
    pub(crate) fn team(&self) -> &HotTeam {
        self.team.as_ref().expect("lease holds a team until drop")
    }
}

impl Drop for HotLease {
    fn drop(&mut self) {
        let team = self.team.take().expect("lease holds a team until drop");
        let evicted = {
            let mut st = self.cache.state.lock();
            if !st.closed && st.workers + team.workers() <= MAX_IDLE_WORKERS {
                st.workers += team.workers();
                st.teams.entry(team.size()).or_default().push(team);
                None
            } else {
                Some(team)
            }
        };
        // Tear down outside the lock: Drop joins the workers.
        drop(evicted);
    }
}

// ---------------------------------------------------------------------
// The explicit, user-owned pool
// ---------------------------------------------------------------------

/// A reusable, user-owned team of worker threads for executing parallel
/// regions — the explicit counterpart of the runtime's hot-team cache.
///
/// Semantics match [`region::parallel_with`](crate::region::parallel_with):
/// every member (the caller is the master, id 0) runs the body once under
/// a fresh team context; panics poison the team and re-raise on the
/// caller; the pool itself survives and stays reusable.
///
/// Owning a `TeamPool` pins its workers for the pool's lifetime and
/// guarantees the team size regardless of cache pressure; the implicit
/// cache behind [`region::parallel`](crate::region::parallel) makes the
/// same optimisation without the object to carry around.
pub struct TeamPool {
    inner: HotTeam,
    /// Serialises concurrent `parallel` dispatches on one pool (the
    /// single-job-slot protocol admits one generation at a time).
    dispatch: Mutex<()>,
}

impl TeamPool {
    /// Pool executing regions with a team of `threads` (spawns
    /// `threads − 1` persistent workers).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a team pool needs at least one thread");
        Self {
            inner: HotTeam::new(threads).expect("failed to spawn aomp pool worker"),
            dispatch: Mutex::new(()),
        }
    }

    /// Team size of this pool.
    pub fn size(&self) -> usize {
        self.inner.size()
    }

    /// Execute `body` as a parallel region on the pooled team. Blocks
    /// until every member has finished; panics (on the caller) if any
    /// member panicked.
    pub fn parallel<F>(&self, body: F)
    where
        F: Fn() + Sync,
    {
        let n = if crate::runtime::current().parallel_enabled() {
            self.size()
        } else {
            1
        };
        let team = Arc::new(TeamShared::new(n, crate::ctx::level() + 1));
        if n == 1 {
            let _guard = CtxGuard::enter(team, 0);
            body();
            return;
        }
        let _dispatch = self.dispatch.lock();
        let payload: PayloadSlot = Mutex::new(None);
        self.inner.dispatch(&team, &payload, &body);
        // The caller is the master.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = CtxGuard::enter(Arc::clone(&team), 0);
            body();
        }));
        record_member_exit(&team, &payload, r);
        self.inner.join_workers();
        let panic = payload.lock().take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{team_size, thread_id};
    use crate::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn pool_runs_body_on_every_member() {
        let pool = TeamPool::new(4);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = TeamPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.parallel(|| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn pool_provides_team_context() {
        let pool = TeamPool::new(4);
        let ids = StdMutex::new(HashSet::new());
        pool.parallel(|| {
            assert_eq!(team_size(), 4);
            ids.lock().unwrap().insert(thread_id());
        });
        assert_eq!(ids.into_inner().unwrap(), (0..4).collect::<HashSet<_>>());
    }

    #[test]
    fn pool_supports_constructs() {
        let pool = TeamPool::new(4);
        let for_c = ForConstruct::new(Schedule::Dynamic { chunk: 8 });
        let sum = std::sync::atomic::AtomicI64::new(0);
        pool.parallel(|| {
            for_c.execute(LoopRange::upto(0, 1000), |lo, hi, step| {
                let mut local = 0;
                let mut i = lo;
                while i < hi {
                    local += i;
                    i += step;
                }
                sum.fetch_add(local, Ordering::Relaxed);
            });
            crate::ctx::barrier();
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..1000).sum::<i64>());
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = TeamPool::new(1);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = TeamPool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel(|| {
                if thread_id() == 2 {
                    panic!("pooled worker dies");
                }
                crate::ctx::barrier();
            });
        }));
        assert!(r.is_err());
        // Pool still usable.
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn master_panic_propagates_and_pool_survives() {
        let pool = TeamPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel(|| {
                if thread_id() == 0 {
                    panic!("pooled master dies");
                }
                crate::ctx::barrier();
            });
        }));
        assert!(r.is_err());
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn kill_switch_degrades_pool_to_sequential() {
        let pool = TeamPool::new(4);
        crate::runtime::set_parallel_enabled(false);
        let count = AtomicUsize::new(0);
        pool.parallel(|| {
            assert_eq!(team_size(), 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        crate::runtime::set_parallel_enabled(true);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lease_round_trips_through_cache() {
        let cache = HotCache::new(Arc::new(obs::Scope::new(true)));
        {
            let l = cache.lease(7).expect("lease");
            assert_eq!(l.team().size(), 7);
        } // returned to cache on drop
        let l = cache.lease(7).expect("lease");
        assert_eq!(l.team().size(), 7);
        // The first lease missed (fresh cache), the second must hit.
        assert_eq!(cache.scope.counter(obs::Counter::PoolCacheMiss), 1);
        assert_eq!(cache.scope.counter(obs::Counter::PoolCacheHit), 1);
    }

    #[test]
    fn closed_cache_refuses_leases_and_tears_down_returns() {
        let cache = HotCache::new(Arc::new(obs::Scope::new(true)));
        let l = cache.lease(3).expect("lease");
        cache.close();
        drop(l); // returns into a closed cache: torn down, not re-cached
        assert!(cache.state.lock().teams.is_empty());
        assert!(cache.lease(3).is_none(), "closed cache must refuse");
    }
}
