//! Team context: who am I, which team am I in, and the per-team shared
//! state that constructs synchronise through.
//!
//! A thread may be a member of a stack of nested teams (the paper supports
//! nested parallel regions, §III-D); the innermost team is the one all
//! constructs bind to, mirroring OpenMP's binding rules.
//!
//! Besides the barrier, the team owns a *slot map*: anonymous shared state
//! allocated on demand, keyed by `(construct key, encounter round)`. Each
//! construct handle (a `Single`, a `ForConstruct` with dynamic schedule,
//! an `Ordered`, …) owns a unique key; each thread counts its own
//! encounters of that construct. Under the SPMD execution model of
//! parallel regions — all team threads execute the same region body — the
//! `k`-th encounter of a construct on one thread pairs with the `k`-th
//! encounter on every sibling, so the slot map gives every construct
//! occurrence its own fresh shared state without any global registration.
//! Slots are reference-counted by team size and freed once every member
//! has detached.

use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::barrier::SenseBarrier;
use crate::error;

/// Allocate a process-unique construct key. Every construct handle
/// (`Single`, `Master`, `ForConstruct`, `Ordered`, …) calls this once at
/// creation time.
pub(crate) fn fresh_key() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct SlotEntry {
    value: Arc<dyn Any + Send + Sync>,
    remaining: usize,
}

/// State shared by all members of one team (one parallel-region
/// execution).
pub(crate) struct TeamShared {
    /// Team size.
    pub n: usize,
    /// Nesting level: 1 for a team created outside any region.
    pub level: usize,
    /// The team barrier (implicit joins, `@BarrierBefore/After`, …).
    pub barrier: SenseBarrier,
    /// Set when a member panicked; checked by blocking primitives.
    pub poisoned: AtomicBool,
    slots: Mutex<HashMap<(u64, u64), SlotEntry>>,
}

impl TeamShared {
    pub fn new(n: usize, level: usize) -> Self {
        Self {
            n,
            level,
            barrier: SenseBarrier::new(n),
            poisoned: AtomicBool::new(false),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Fetch (or lazily create) the shared state for occurrence `round` of
    /// construct `key`. The state type `T` is fixed by the construct.
    ///
    /// Panics if two constructs with the same key request different types
    /// — impossible through the public API since keys are private and
    /// unique per handle.
    pub fn slot<T>(&self, key: u64, round: u64) -> Arc<T>
    where
        T: Default + Send + Sync + 'static,
    {
        let mut slots = self.slots.lock();
        let entry = slots.entry((key, round)).or_insert_with(|| SlotEntry {
            value: Arc::new(T::default()),
            remaining: self.n,
        });
        Arc::clone(&entry.value)
            .downcast::<T>()
            .expect("aomp internal error: construct slot type mismatch")
    }

    /// Release one team member's reference to `(key, round)`; the slot is
    /// dropped when all `n` members have detached.
    pub fn detach_slot(&self, key: u64, round: u64) {
        let mut slots = self.slots.lock();
        if let Some(entry) = slots.get_mut(&(key, round)) {
            entry.remaining -= 1;
            if entry.remaining == 0 {
                slots.remove(&(key, round));
            }
        }
    }

    /// Check the poison flag, unwinding with
    /// [`TeamPoisoned`](crate::error::TeamPoisoned) if a sibling panicked.
    #[inline]
    pub fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            error::poisoned();
        }
    }

    /// Mark the team poisoned and wake blocked members.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.barrier.kick();
    }
}

/// Per-thread view of a team membership.
pub(crate) struct TeamCtx {
    pub shared: Arc<TeamShared>,
    pub tid: usize,
    /// Per-construct encounter counters (see module docs).
    rounds: RefCell<HashMap<u64, u64>>,
}

impl TeamCtx {
    fn new(shared: Arc<TeamShared>, tid: usize) -> Self {
        Self { shared, tid, rounds: RefCell::new(HashMap::new()) }
    }

    /// The encounter round for construct `key` on this thread, counting
    /// from zero, incremented on each call.
    pub fn next_round(&self, key: u64) -> u64 {
        let mut rounds = self.rounds.borrow_mut();
        let r = rounds.entry(key).or_insert(0);
        let v = *r;
        *r += 1;
        v
    }
}

thread_local! {
    static STACK: RefCell<Vec<Rc<TeamCtx>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for team membership; popping in `Drop` keeps the context
/// stack correct even when the region body panics, and poisons the team
/// in that case so blocked siblings unwind too.
pub(crate) struct CtxGuard {
    shared: Arc<TeamShared>,
}

impl CtxGuard {
    pub fn enter(shared: Arc<TeamShared>, tid: usize) -> Self {
        let ctx = Rc::new(TeamCtx::new(Arc::clone(&shared), tid));
        STACK.with(|s| s.borrow_mut().push(ctx));
        Self { shared }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if std::thread::panicking() {
            self.shared.poison();
        }
    }
}

/// Run `f` with the innermost team context, or `None` when the calling
/// thread is not inside a parallel region.
pub(crate) fn with_current<R>(f: impl FnOnce(Option<&Rc<TeamCtx>>) -> R) -> R {
    STACK.with(|s| {
        let stack = s.borrow();
        f(stack.last())
    })
}

/// Nesting depth of parallel regions on this thread (0 outside any).
pub fn level() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// This thread's id within the innermost team (`0..team_size()`), or 0
/// outside a parallel region — the paper's `getThreadId()`.
pub fn thread_id() -> usize {
    with_current(|c| c.map_or(0, |c| c.tid))
}

/// Size of the innermost team, or 1 outside a parallel region.
pub fn team_size() -> usize {
    with_current(|c| c.map_or(1, |c| c.shared.n))
}

/// True when called from inside a parallel region with more than one
/// member thread.
pub fn in_parallel() -> bool {
    with_current(|c| c.is_some_and(|c| c.shared.n > 1))
}

/// Team barrier: block until every thread of the innermost team arrives.
/// Outside a parallel region this is a no-op, preserving sequential
/// semantics.
pub fn barrier() {
    with_current(|c| {
        if let Some(c) = c {
            c.shared.barrier.wait_poisonable(&c.shared.poisoned);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_team_defaults() {
        assert_eq!(thread_id(), 0);
        assert_eq!(team_size(), 1);
        assert!(!in_parallel());
        assert_eq!(level(), 0);
        barrier(); // must not block
    }

    #[test]
    fn ctx_guard_pushes_and_pops() {
        let shared = Arc::new(TeamShared::new(1, 1));
        {
            let _g = CtxGuard::enter(Arc::clone(&shared), 0);
            assert_eq!(level(), 1);
            assert_eq!(team_size(), 1);
            {
                let inner = Arc::new(TeamShared::new(1, 2));
                let _g2 = CtxGuard::enter(inner, 0);
                assert_eq!(level(), 2);
            }
            assert_eq!(level(), 1);
        }
        assert_eq!(level(), 0);
    }

    #[test]
    fn rounds_count_per_key() {
        let shared = Arc::new(TeamShared::new(1, 1));
        let ctx = TeamCtx::new(shared, 0);
        let k1 = fresh_key();
        let k2 = fresh_key();
        assert_eq!(ctx.next_round(k1), 0);
        assert_eq!(ctx.next_round(k1), 1);
        assert_eq!(ctx.next_round(k2), 0);
        assert_eq!(ctx.next_round(k1), 2);
    }

    #[test]
    fn slots_freed_after_all_detach() {
        let shared = TeamShared::new(2, 1);
        let key = fresh_key();
        let a: Arc<AtomicBool> = shared.slot(key, 0);
        let b: Arc<AtomicBool> = shared.slot(key, 0);
        assert!(Arc::ptr_eq(&a, &b));
        shared.detach_slot(key, 0);
        assert_eq!(shared.slots.lock().len(), 1);
        shared.detach_slot(key, 0);
        assert!(shared.slots.lock().is_empty());
    }

    #[test]
    fn distinct_rounds_get_distinct_slots() {
        let shared = TeamShared::new(1, 1);
        let key = fresh_key();
        let a: Arc<AtomicBool> = shared.slot(key, 0);
        let b: Arc<AtomicBool> = shared.slot(key, 1);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fresh_keys_unique() {
        let a = fresh_key();
        let b = fresh_key();
        assert_ne!(a, b);
    }
}
