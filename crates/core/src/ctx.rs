//! Team context: who am I, which team am I in, and the per-team shared
//! state that constructs synchronise through.
//!
//! A thread may be a member of a stack of nested teams (the paper supports
//! nested parallel regions, §III-D); the innermost team is the one all
//! constructs bind to, mirroring OpenMP's binding rules.
//!
//! Besides the barrier, the team owns a *slot map*: anonymous shared state
//! allocated on demand, keyed by `(construct key, encounter round)`. Each
//! construct handle (a `Single`, a `ForConstruct` with dynamic schedule,
//! an `Ordered`, …) owns a unique key; each thread counts its own
//! encounters of that construct. Under the SPMD execution model of
//! parallel regions — all team threads execute the same region body — the
//! `k`-th encounter of a construct on one thread pairs with the `k`-th
//! encounter on every sibling, so the slot map gives every construct
//! occurrence its own fresh shared state without any global registration.
//! Slots are reference-counted by team size and freed once every member
//! has detached.
//!
//! The team also carries the *interrupt* state of the robustness layer:
//! the poison flag (a member panicked), the cancel flag (OpenMP 4.0
//! `cancel parallel`, see [`cancel_team`]) and — when a stall watchdog is
//! armed — a per-member wait-site registry plus a team-wide progress
//! counter that the watchdog reads to distinguish "slow" from "stuck".

use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::barrier::SenseBarrier;
use crate::error::{self, Cancelled, WaitSite};
use crate::hook::{self, HookEvent};

/// Allocate a process-unique construct key. Every construct handle
/// (`Single`, `Master`, `ForConstruct`, `Ordered`, …) calls this once at
/// creation time.
pub(crate) fn fresh_key() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct SlotEntry {
    value: Arc<dyn Any + Send + Sync>,
    remaining: usize,
}

/// Wait-site bookkeeping, allocated only for watched teams (a stall
/// deadline is armed).
pub(crate) struct WatchState {
    /// What each member is currently blocked on (`None` = running).
    waiting: Mutex<Vec<Option<WaitSite>>>,
    /// Bumped on every team-visible progress event: entering/leaving a
    /// wait, every chunk handout, every broadcast publish. The watchdog
    /// declares a stall only when this counter stops moving.
    progress: AtomicU64,
    /// Set by the watchdog when it declares a stall; holds the blocked
    /// snapshot for [`RegionError::Stalled`](crate::error::RegionError).
    stalled: Mutex<Option<Vec<(usize, WaitSite)>>>,
    /// Tells the watchdog thread the region has completed.
    shutdown: AtomicBool,
}

impl WatchState {
    fn new(n: usize) -> Self {
        Self {
            waiting: Mutex::new(vec![None; n]),
            progress: AtomicU64::new(0),
            stalled: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        }
    }
}

/// State shared by all members of one team (one parallel-region
/// execution).
pub(crate) struct TeamShared {
    /// Team size.
    pub n: usize,
    /// Nesting level: 1 for a team created outside any region.
    pub level: usize,
    /// The team barrier (implicit joins, `@BarrierBefore/After`, …).
    pub barrier: SenseBarrier,
    /// Set when a member panicked; checked by blocking primitives.
    pub poisoned: AtomicBool,
    /// Whether [`cancel_team`] may cancel this team (OpenMP requires the
    /// `cancel` feature to be requested; the stall watchdog bypasses it).
    pub cancellable: bool,
    /// Set when the team was cancelled; checked at every cancellation
    /// point.
    pub cancelled: AtomicBool,
    /// Present iff a stall watchdog is armed for this team.
    pub watch: Option<WatchState>,
    /// Weak handle to the runtime this region resolved to — weak so a
    /// team (notably one held by an abandoned detached straggler, or
    /// parked in a hot team's job slot) never keeps its runtime alive.
    /// Member threads upgrade it to inherit the runtime for nested
    /// regions and tasks (see [`CtxGuard::enter`]); empty for teams
    /// constructed outside the region layer (e.g. a bare [`TeamPool`]
    /// dispatch), which then inherit through the surrounding context.
    ///
    /// [`TeamPool`]: crate::pool::TeamPool
    pub(crate) rt: crate::runtime::WeakRuntime,
    slots: Mutex<HashMap<(u64, u64), SlotEntry>>,
}

impl TeamShared {
    pub fn new(n: usize, level: usize) -> Self {
        Self::with_robustness(n, level, false, false)
    }

    /// Team with explicit robustness settings: `cancellable` enables
    /// [`cancel_team`]; `watched` allocates the wait-site registry the
    /// stall watchdog reads.
    pub fn with_robustness(n: usize, level: usize, cancellable: bool, watched: bool) -> Self {
        Self::for_runtime(
            n,
            level,
            cancellable,
            watched,
            crate::runtime::WeakRuntime::default(),
        )
    }

    /// Team bound to a runtime instance; the region layer's constructor.
    pub(crate) fn for_runtime(
        n: usize,
        level: usize,
        cancellable: bool,
        watched: bool,
        rt: crate::runtime::WeakRuntime,
    ) -> Self {
        Self {
            n,
            level,
            barrier: SenseBarrier::new(n),
            poisoned: AtomicBool::new(false),
            cancellable,
            cancelled: AtomicBool::new(false),
            watch: if watched {
                Some(WatchState::new(n))
            } else {
                None
            },
            rt,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Fetch (or lazily create) the shared state for occurrence `round` of
    /// construct `key`. The state type `T` is fixed by the construct.
    ///
    /// Panics if two constructs with the same key request different types
    /// — impossible through the public API since keys are private and
    /// unique per handle.
    pub fn slot<T>(&self, key: u64, round: u64) -> Arc<T>
    where
        T: Default + Send + Sync + 'static,
    {
        let mut slots = self.slots.lock();
        let entry = slots.entry((key, round)).or_insert_with(|| SlotEntry {
            value: Arc::new(T::default()),
            remaining: self.n,
        });
        Arc::clone(&entry.value)
            .downcast::<T>()
            .expect("aomp internal error: construct slot type mismatch")
    }

    /// Release one team member's reference to `(key, round)`; the slot is
    /// dropped when all `n` members have detached.
    pub fn detach_slot(&self, key: u64, round: u64) {
        let mut slots = self.slots.lock();
        if let Some(entry) = slots.get_mut(&(key, round)) {
            entry.remaining -= 1;
            if entry.remaining == 0 {
                slots.remove(&(key, round));
            }
        }
    }

    /// Check the poison flag, unwinding with
    /// [`TeamPoisoned`](crate::error::TeamPoisoned) if a sibling panicked.
    #[inline]
    pub fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            error::poisoned();
        }
    }

    /// Check both interrupt flags: unwinds with
    /// [`TeamPoisoned`](crate::error::TeamPoisoned) if a sibling
    /// panicked, with [`Cancelled`] if the team was cancelled. Every
    /// blocking primitive and chunk handout is a cancellation point via
    /// this check.
    #[inline]
    pub fn check_interrupt(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            error::poisoned();
        }
        if self.cancelled.load(Ordering::Acquire) {
            error::cancelled();
        }
    }

    /// Mark the team poisoned and wake blocked members.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.barrier.kick();
    }

    /// Mark the team cancelled and wake blocked members. `force` bypasses
    /// the [`cancellable`](Self::cancellable) gate (used by the stall
    /// watchdog). Returns whether the flag was set.
    pub fn cancel(&self, force: bool) -> bool {
        if !self.cancellable && !force {
            return false;
        }
        self.cancelled.store(true, Ordering::Release);
        self.bump_progress();
        self.barrier.kick();
        true
    }

    /// Record a team-visible progress event for the stall watchdog.
    /// Cheap no-op on unwatched teams.
    #[inline]
    pub fn bump_progress(&self) {
        if let Some(w) = &self.watch {
            w.progress.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current progress counter (watched teams only; 0 otherwise).
    pub fn progress(&self) -> u64 {
        self.watch
            .as_ref()
            .map_or(0, |w| w.progress.load(Ordering::Relaxed))
    }

    /// This team's identity for the scheduler hook layer: the address of
    /// the shared state, stable for the region's lifetime.
    pub(crate) fn token(&self) -> usize {
        self as *const TeamShared as usize
    }

    /// Register `tid` as blocked at `site` until the returned guard
    /// drops. No-op (and allocation-free) on unwatched teams. One gate
    /// load covers the hook event *and* the obs wait timer: with nothing
    /// listening this is a relaxed load plus the watch-slot branch.
    pub fn begin_wait<'a>(&'a self, tid: usize, site: WaitSite) -> WaitGuard<'a> {
        let g = crate::obs::gate();
        hook::emit_gated(g, || HookEvent::WaitRegister {
            team: self.token(),
            tid,
            site,
        });
        let obs = crate::obs::wait_begin(g, site);
        if let Some(w) = &self.watch {
            w.waiting.lock()[tid] = Some(site);
            w.progress.fetch_add(1, Ordering::Relaxed);
            WaitGuard {
                shared: Some((self, tid)),
                obs,
            }
        } else {
            WaitGuard { shared: None, obs }
        }
    }

    /// Snapshot of `(tid, site)` for every member currently blocked at a
    /// wait site.
    pub fn blocked_snapshot(&self) -> Vec<(usize, WaitSite)> {
        match &self.watch {
            None => Vec::new(),
            Some(w) => w
                .waiting
                .lock()
                .iter()
                .enumerate()
                .filter_map(|(tid, s)| s.map(|site| (tid, site)))
                .collect(),
        }
    }

    /// Record the watchdog's stall verdict (first verdict wins) and
    /// force-cancel the team so blocked members unwind.
    pub fn declare_stalled(&self, blocked: Vec<(usize, WaitSite)>) {
        if let Some(w) = &self.watch {
            let mut s = w.stalled.lock();
            if s.is_none() {
                *s = Some(blocked);
            }
        }
        self.cancel(true);
    }

    /// Take the stall verdict, if the watchdog declared one.
    pub fn take_stalled(&self) -> Option<Vec<(usize, WaitSite)>> {
        self.watch.as_ref().and_then(|w| w.stalled.lock().take())
    }

    /// Whether the watchdog has declared a stall (non-consuming).
    pub fn stall_declared(&self) -> bool {
        self.watch
            .as_ref()
            .is_some_and(|w| w.stalled.lock().is_some())
    }

    /// Whether the watchdog (if any) was told the region completed.
    pub fn watch_shutdown(&self) -> bool {
        self.watch
            .as_ref()
            .is_some_and(|w| w.shutdown.load(Ordering::Acquire))
    }

    /// Tell the watchdog the region completed.
    pub fn shutdown_watch(&self) {
        if let Some(w) = &self.watch {
            w.shutdown.store(true, Ordering::Release);
        }
    }

    /// Team barrier entry with full interrupt handling: checked for
    /// poison/cancel before and during the wait, registered as a
    /// [`WaitSite::Barrier`] for the stall watchdog.
    pub fn team_barrier(&self, tid: usize) -> bool {
        self.check_interrupt();
        let leader = {
            let _w = self.begin_wait(tid, WaitSite::Barrier);
            self.barrier.wait_park(&|| self.check_interrupt(), &|| {
                hook::yield_blocked(self.token(), tid, WaitSite::Barrier)
            })
        };
        hook::emit(|| HookEvent::BarrierExit {
            team: self.token(),
            tid,
            leader,
        });
        leader
    }
}

/// RAII guard returned by [`TeamShared::begin_wait`]: clears the member's
/// wait-site slot (and bumps progress) on drop — including when the wait
/// unwinds with a poison/cancel panic — and closes the obs wait timer,
/// so blocked-time histograms include waits aborted by cancellation.
pub(crate) struct WaitGuard<'a> {
    shared: Option<(&'a TeamShared, usize)>,
    obs: Option<crate::obs::WaitTimer>,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        if let Some((shared, tid)) = self.shared {
            if let Some(w) = &shared.watch {
                w.waiting.lock()[tid] = None;
                w.progress.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(t) = self.obs.take() {
            crate::obs::wait_end(t);
        }
    }
}

/// Per-thread view of a team membership.
pub(crate) struct TeamCtx {
    pub shared: Arc<TeamShared>,
    pub tid: usize,
    /// Per-construct encounter counters (see module docs).
    rounds: RefCell<HashMap<u64, u64>>,
}

impl TeamCtx {
    fn new(shared: Arc<TeamShared>, tid: usize) -> Self {
        Self {
            shared,
            tid,
            rounds: RefCell::new(HashMap::new()),
        }
    }

    /// The encounter round for construct `key` on this thread, counting
    /// from zero, incremented on each call.
    pub fn next_round(&self, key: u64) -> u64 {
        let mut rounds = self.rounds.borrow_mut();
        let r = rounds.entry(key).or_insert(0);
        let v = *r;
        *r += 1;
        v
    }
}

thread_local! {
    static STACK: RefCell<Vec<Rc<TeamCtx>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for team membership; popping in `Drop` keeps the context
/// stack correct even when the region body panics. Poisoning on panic is
/// the region executor's job (it must distinguish real panics from benign
/// `Cancelled` unwinds, which a `Drop` impl cannot).
pub(crate) struct CtxGuard {
    shared: Arc<TeamShared>,
    tid: usize,
    /// Whether `enter` pushed the team's runtime onto the thread's
    /// entered-runtime stack (it did iff the weak handle was live).
    entered_rt: bool,
}

impl CtxGuard {
    pub fn enter(shared: Arc<TeamShared>, tid: usize) -> Self {
        let ctx = Rc::new(TeamCtx::new(Arc::clone(&shared), tid));
        STACK.with(|s| s.borrow_mut().push(ctx));
        // Make the team's runtime the enclosing one for everything this
        // member starts (nested regions, tasks) — on every member thread,
        // hot-team workers and scoped spawns alike. This is what makes a
        // nested region inherit its parent's runtime rather than falling
        // back to the default.
        let entered_rt = match shared.rt.upgrade() {
            Some(rt) => {
                crate::runtime::push_entered(rt);
                true
            }
            None => false,
        };
        hook::emit(|| HookEvent::MemberStart {
            team: shared.token(),
            tid,
        });
        Self {
            shared,
            tid,
            entered_rt,
        }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.entered_rt {
            crate::runtime::pop_entered();
        }
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        // Also fires during unwinds; the hook contract forbids panicking
        // from `event`, so this cannot double-panic.
        hook::emit(|| HookEvent::MemberEnd {
            team: self.shared.token(),
            tid: self.tid,
        });
    }
}

/// Run `f` with the innermost team context, or `None` when the calling
/// thread is not inside a parallel region.
pub(crate) fn with_current<R>(f: impl FnOnce(Option<&Rc<TeamCtx>>) -> R) -> R {
    STACK.with(|s| {
        let stack = s.borrow();
        f(stack.last())
    })
}

/// Nesting depth of parallel regions on this thread (0 outside any).
pub fn level() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// This thread's id within the innermost team (`0..team_size()`), or 0
/// outside a parallel region — the paper's `getThreadId()`.
pub fn thread_id() -> usize {
    with_current(|c| c.map_or(0, |c| c.tid))
}

/// Size of the innermost team, or 1 outside a parallel region.
pub fn team_size() -> usize {
    with_current(|c| c.map_or(1, |c| c.shared.n))
}

/// True when called from inside a parallel region with more than one
/// member thread.
pub fn in_parallel() -> bool {
    with_current(|c| c.is_some_and(|c| c.shared.n > 1))
}

/// Team barrier: block until every thread of the innermost team arrives.
/// Outside a parallel region this is a no-op, preserving sequential
/// semantics. A cancellation point: unwinds with
/// [`Cancelled`](crate::error::Cancelled) if the team was cancelled.
pub fn barrier() {
    with_current(|c| {
        if let Some(c) = c {
            c.shared.team_barrier(c.tid);
        }
    })
}

/// Request cancellation of the innermost team — OpenMP 4.0's
/// `#pragma omp cancel parallel`.
///
/// Returns `true` if the cancel flag was set: the calling thread must be
/// inside a parallel region whose configuration opted in via
/// [`RegionConfig::cancellable`](crate::region::RegionConfig::cancellable)
/// (mirroring OpenMP, where cancellation must be activated). Returns
/// `false` (a no-op) otherwise.
///
/// After a successful cancel, every sibling observes the flag at its next
/// cancellation point — barrier entry, chunk handout of any schedule,
/// critical-section entry, single/master broadcast waits, task
/// spawns/joins, or an explicit [`cancellation_point`] — and skips to the
/// end of the region. The region then reports
/// [`RegionError::Cancelled`](crate::error::RegionError) through
/// [`region::try_parallel`](crate::region::try_parallel) (the panicking
/// API treats cancellation as a benign early exit).
pub fn cancel_team() -> bool {
    with_current(|c| {
        c.is_some_and(|c| {
            let done = c.shared.cancel(false);
            if done {
                hook::emit(|| HookEvent::CancelRequested {
                    team: c.shared.token(),
                    tid: c.tid,
                });
            }
            done
        })
    })
}

/// Explicit cancellation point — OpenMP 4.0's
/// `#pragma omp cancellation point parallel`.
///
/// Returns `Err(Cancelled)` if the innermost team has been cancelled, so
/// user code can short-circuit long computations with `?` and return
/// early; `Ok(())` otherwise (including outside any region). Also unwinds
/// with [`TeamPoisoned`](crate::error::TeamPoisoned) if a sibling
/// panicked, keeping poison semantics uniform.
pub fn cancellation_point() -> Result<(), Cancelled> {
    with_current(|c| match c {
        None => Ok(()),
        Some(c) => {
            hook::emit(|| HookEvent::CancellationPoint {
                team: c.shared.token(),
                tid: c.tid,
            });
            c.shared.check_poison();
            if c.shared.cancelled.load(Ordering::Acquire) {
                Err(Cancelled)
            } else {
                Ok(())
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_team_defaults() {
        assert_eq!(thread_id(), 0);
        assert_eq!(team_size(), 1);
        assert!(!in_parallel());
        assert_eq!(level(), 0);
        barrier(); // must not block
        assert!(!cancel_team()); // no team to cancel
        assert!(cancellation_point().is_ok());
    }

    #[test]
    fn ctx_guard_pushes_and_pops() {
        let shared = Arc::new(TeamShared::new(1, 1));
        {
            let _g = CtxGuard::enter(Arc::clone(&shared), 0);
            assert_eq!(level(), 1);
            assert_eq!(team_size(), 1);
            {
                let inner = Arc::new(TeamShared::new(1, 2));
                let _g2 = CtxGuard::enter(inner, 0);
                assert_eq!(level(), 2);
            }
            assert_eq!(level(), 1);
        }
        assert_eq!(level(), 0);
    }

    #[test]
    fn rounds_count_per_key() {
        let shared = Arc::new(TeamShared::new(1, 1));
        let ctx = TeamCtx::new(shared, 0);
        let k1 = fresh_key();
        let k2 = fresh_key();
        assert_eq!(ctx.next_round(k1), 0);
        assert_eq!(ctx.next_round(k1), 1);
        assert_eq!(ctx.next_round(k2), 0);
        assert_eq!(ctx.next_round(k1), 2);
    }

    #[test]
    fn slots_freed_after_all_detach() {
        let shared = TeamShared::new(2, 1);
        let key = fresh_key();
        let a: Arc<AtomicBool> = shared.slot(key, 0);
        let b: Arc<AtomicBool> = shared.slot(key, 0);
        assert!(Arc::ptr_eq(&a, &b));
        shared.detach_slot(key, 0);
        assert_eq!(shared.slots.lock().len(), 1);
        shared.detach_slot(key, 0);
        assert!(shared.slots.lock().is_empty());
    }

    #[test]
    fn distinct_rounds_get_distinct_slots() {
        let shared = TeamShared::new(1, 1);
        let key = fresh_key();
        let a: Arc<AtomicBool> = shared.slot(key, 0);
        let b: Arc<AtomicBool> = shared.slot(key, 1);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fresh_keys_unique() {
        let a = fresh_key();
        let b = fresh_key();
        assert_ne!(a, b);
    }

    #[test]
    fn cancel_respects_cancellable_gate() {
        let plain = TeamShared::new(2, 1);
        assert!(!plain.cancel(false), "non-cancellable team refuses cancel");
        assert!(!plain.cancelled.load(Ordering::Acquire));
        assert!(
            plain.cancel(true),
            "force (watchdog) cancel bypasses the gate"
        );
        assert!(plain.cancelled.load(Ordering::Acquire));

        let c = TeamShared::with_robustness(2, 1, true, false);
        assert!(c.cancel(false));
        assert!(c.cancelled.load(Ordering::Acquire));
    }

    #[test]
    fn wait_registry_tracks_blocked_members() {
        let t = TeamShared::with_robustness(3, 1, false, true);
        assert!(t.blocked_snapshot().is_empty());
        let p0 = t.progress();
        {
            let _g1 = t.begin_wait(1, WaitSite::Barrier);
            let _g2 = t.begin_wait(2, WaitSite::Critical);
            let snap = t.blocked_snapshot();
            assert_eq!(snap, vec![(1, WaitSite::Barrier), (2, WaitSite::Critical)]);
        }
        assert!(t.blocked_snapshot().is_empty());
        assert!(t.progress() > p0, "wait entry/exit count as progress");
    }

    #[test]
    fn unwatched_team_skips_registry() {
        let t = TeamShared::new(2, 1);
        let _g = t.begin_wait(0, WaitSite::Barrier);
        assert!(t.blocked_snapshot().is_empty());
        assert_eq!(t.progress(), 0);
    }

    #[test]
    fn declare_stalled_first_verdict_wins() {
        let t = TeamShared::with_robustness(2, 1, false, true);
        t.declare_stalled(vec![(0, WaitSite::Barrier)]);
        t.declare_stalled(vec![(1, WaitSite::Ordered)]);
        assert!(t.cancelled.load(Ordering::Acquire), "stall force-cancels");
        assert_eq!(t.take_stalled(), Some(vec![(0, WaitSite::Barrier)]));
        assert_eq!(t.take_stalled(), None);
    }
}
