//! Schedule-disciplined shared arrays: [`SyncSlice`] (borrowed) and
//! [`SyncVec`] (owned).
//!
//! OpenMP-style kernels share arrays between team threads under
//! schedules that guarantee disjoint writes (each thread owns a
//! row/column/element subset). Java expresses this with plain shared
//! arrays; safe Rust needs either locks (which would distort performance
//! comparisons) or a narrowly-scoped unsafe wrapper. These are those
//! wrappers: unguarded shared storage whose users must uphold the
//! schedule's disjointness contract, documented at every call site.
//!
//! # Tracked mode
//!
//! The disjointness contract is checkable: build the wrapper with
//! [`SyncSlice::tracked`] / [`SyncVec::tracked`] (a name plus the data)
//! and every element access additionally reports a
//! `{addr, index, is_write, thread}` shadow event to the
//! [`check`](crate::check) layer, where aomp-check's vector-clock race
//! detector judges it against the happens-before relation built from
//! hook events. Cost discipline: an untracked wrapper pays nothing (the
//! `name` branch is `None` and no atomic is touched); a tracked wrapper
//! with no checker armed pays one relaxed load of the shared gate byte
//! per access.

use std::cell::UnsafeCell;

use crate::check;

/// A shared, unguarded slice. Cloneable handles alias the same storage.
///
/// # Safety contract
///
/// Callers of [`get_mut`](Self::get_mut) / [`set`](Self::set) must ensure
/// no two threads concurrently touch the same index with at least one
/// writer — exactly the guarantee a disjoint loop schedule (static block,
/// static cyclic, dynamic chunks) provides for index-owned data.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
    /// `Some(label)` puts the wrapper in tracked mode (see module docs).
    name: Option<&'static str>,
}

// SAFETY: access discipline is delegated to the schedule (see type docs).
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}

impl<T> Clone for SyncSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a uniquely-borrowed slice for shared use.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: &mut [T] -> &[UnsafeCell<T>] is sound (UnsafeCell<T> has
        // the same layout as T) and the unique borrow is surrendered for
        // the wrapper's lifetime.
        let ptr = data.as_mut_ptr() as *const UnsafeCell<T>;
        Self {
            data: unsafe { std::slice::from_raw_parts(ptr, data.len()) },
            name: None,
        }
    }

    /// Like [`new`](Self::new), but every access reports to an armed
    /// race checker under `name` (see module docs).
    pub fn tracked(data: &'a mut [T], name: &'static str) -> Self {
        Self {
            name: Some(name),
            ..Self::new(data)
        }
    }

    /// Report one element access when tracked and a checker is armed.
    #[inline]
    fn note(&self, i: usize, is_write: bool) {
        if let Some(name) = self.name {
            check::report(name, self.data[i].get() as usize, i, is_write);
        }
    }

    /// Report a range access (`as_slice`/`as_mut_slice`), element-wise so
    /// the detector sees the same per-location granularity as `get`/`set`.
    #[inline]
    fn note_range(&self, lo: usize, len: usize, is_write: bool) {
        if let Some(name) = self.name {
            if check::armed() {
                for i in lo..lo + len {
                    check::report(name, self.data[i].get() as usize, i, is_write);
                }
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent writer to index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        self.note(i, false);
        &*self.data[i].get()
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// This thread is the sole accessor of index `i` for the borrow's
    /// duration (schedule-owned index).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        self.note(i, true);
        &mut *self.data[i].get()
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// As for [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        self.note(i, true);
        *self.data[i].get() = v;
    }
}

impl<T> SyncSlice<'_, T> {
    /// Borrow `len` elements starting at `lo` as a plain shared slice.
    ///
    /// The empty borrow `(lo == self.len(), len == 0)` is valid — it is
    /// what a block schedule hands the tail thread of an undersized loop.
    ///
    /// # Safety
    /// No concurrent writer to any index in `lo..lo+len` for the
    /// borrow's duration (e.g. the range was written in a previous,
    /// barrier-separated phase or by this thread).
    #[inline]
    pub unsafe fn as_slice(&self, lo: usize, len: usize) -> &[T] {
        assert!(
            lo + len <= self.data.len(),
            "as_slice range {lo}..{} out of bounds (len {})",
            lo + len,
            self.data.len()
        );
        self.note_range(lo, len, false);
        // Pointer arithmetic, not `self.data[lo]`: indexing would reject
        // the valid empty borrow at `lo == len()`.
        std::slice::from_raw_parts(self.data.as_ptr().add(lo) as *const T, len)
    }

    /// Borrow `len` elements starting at `lo` as an exclusive slice.
    ///
    /// As with [`as_slice`](Self::as_slice), the empty borrow at
    /// `lo == self.len()` is valid.
    ///
    /// # Safety
    /// This thread is the sole accessor of `lo..lo+len` for the borrow's
    /// duration (schedule-owned block).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice(&self, lo: usize, len: usize) -> &mut [T] {
        assert!(
            lo + len <= self.data.len(),
            "as_mut_slice range {lo}..{} out of bounds (len {})",
            lo + len,
            self.data.len()
        );
        self.note_range(lo, len, true);
        std::slice::from_raw_parts_mut(
            self.data.as_ptr().add(lo) as *mut UnsafeCell<T> as *mut T,
            len,
        )
    }
}

impl<T: Copy> SyncSlice<'_, T> {
    /// Copy element `i` out.
    ///
    /// # Safety
    /// No concurrent writer to index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T {
        self.note(i, false);
        *self.data[i].get()
    }
}

/// An owned, unguarded shared vector — the owned counterpart of
/// [`SyncSlice`], for state that must live inside `Arc`-shared structures
/// (e.g. the MolDyn particle arrays, which aspect modules need to reach
/// with a `'static` lifetime).
///
/// # Safety contract
/// Same as [`SyncSlice`]: concurrent accesses to one index must follow a
/// disjoint-writer discipline established by the loop schedule or by
/// barrier-separated phases. [`tracked`](Self::tracked) makes that
/// contract machine-checked under aomp-check.
pub struct SyncVec<T> {
    data: Vec<UnsafeCell<T>>,
    name: Option<&'static str>,
}

// SAFETY: access discipline is delegated to the schedule (see type docs).
unsafe impl<T: Send> Sync for SyncVec<T> {}
unsafe impl<T: Send> Send for SyncVec<T> {}

impl<T> SyncVec<T> {
    /// Take ownership of `data` for shared use.
    pub fn new(data: Vec<T>) -> Self {
        Self {
            data: data.into_iter().map(UnsafeCell::new).collect(),
            name: None,
        }
    }

    /// Like [`new`](Self::new), but every access reports to an armed
    /// race checker under `name` (see module docs).
    pub fn tracked(data: Vec<T>, name: &'static str) -> Self {
        Self {
            name: Some(name),
            ..Self::new(data)
        }
    }

    /// Report one element access when tracked and a checker is armed.
    #[inline]
    fn note(&self, i: usize, is_write: bool) {
        if let Some(name) = self.name {
            check::report(name, self.data[i].get() as usize, i, is_write);
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent writer to index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        self.note(i, false);
        &*self.data[i].get()
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// This thread is the sole accessor of index `i` for the borrow.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        self.note(i, true);
        &mut *self.data[i].get()
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// As for [`get_mut`](Self::get_mut).
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        self.note(i, true);
        *self.data[i].get() = v;
    }
}

impl<T: Copy> SyncVec<T> {
    /// Copy element `i` out.
    ///
    /// # Safety
    /// No concurrent writer to index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T {
        self.note(i, false);
        *self.data[i].get()
    }

    /// Copy the whole vector out.
    ///
    /// # Safety
    /// No concurrent writers anywhere in the vector.
    pub unsafe fn snapshot(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }
}

impl<T: Copy + Default> SyncVec<T> {
    /// Zero-filled vector of length `n`.
    pub fn zeroed(n: usize) -> Self {
        Self::new(vec![T::default(); n])
    }

    /// Zero-filled tracked vector of length `n` (see [`tracked`](Self::tracked)).
    pub fn zeroed_tracked(n: usize, name: &'static str) -> Self {
        Self::tracked(vec![T::default(); n], name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0i64; 1000];
        {
            let s = SyncSlice::new(&mut data);
            let for_c = ForConstruct::new(Schedule::StaticBlock);
            crate::region::parallel_with(RegionConfig::new().threads(4), || {
                for_c.execute(LoopRange::upto(0, 1000), |lo, hi, step| {
                    let mut i = lo;
                    while i < hi {
                        // SAFETY: static block gives disjoint indices.
                        unsafe { s.set(i as usize, i * 3) };
                        i += step;
                    }
                });
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as i64 * 3));
    }

    #[test]
    fn sync_vec_round_trips() {
        let v = SyncVec::new(vec![1i64, 2, 3]);
        unsafe {
            v.set(1, 20);
            assert_eq!(v.read(1), 20);
            *v.get_mut(2) += 5;
            assert_eq!(*v.get(2), 8);
            assert_eq!(v.snapshot(), vec![1, 20, 8]);
        }
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        let z: SyncVec<f64> = SyncVec::zeroed(4);
        assert_eq!(unsafe { z.snapshot() }, vec![0.0; 4]);
    }

    #[test]
    fn copies_alias_same_storage() {
        let mut data = vec![1u32, 2, 3];
        let a = SyncSlice::new(&mut data);
        let b = a;
        unsafe {
            b.set(0, 9);
            assert_eq!(a.read(0), 9);
        }
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_borrow_at_end_is_valid() {
        // Regression: `as_slice(len, 0)` / `as_mut_slice(len, 0)` used to
        // index `self.data[lo]` and panic, but a zero-length borrow one
        // past the end is exactly what a block schedule hands the tail
        // thread of an undersized loop.
        let mut data = vec![1u8, 2, 3];
        let s = SyncSlice::new(&mut data);
        unsafe {
            assert_eq!(s.as_slice(3, 0), &[] as &[u8]);
            assert_eq!(s.as_mut_slice(3, 0), &mut [] as &mut [u8]);
            assert_eq!(s.as_slice(1, 2), &[2, 3]);
            let empty_mid: &[u8] = s.as_slice(1, 0);
            assert!(empty_mid.is_empty());
        }
        let mut none: Vec<u8> = Vec::new();
        let e = SyncSlice::new(&mut none);
        unsafe {
            assert!(e.as_slice(0, 0).is_empty());
            assert!(e.as_mut_slice(0, 0).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn as_slice_past_end_panics() {
        let mut data = vec![0u8; 4];
        let s = SyncSlice::new(&mut data);
        let _ = unsafe { s.as_slice(3, 2) };
    }

    #[test]
    fn tracked_wrappers_behave_like_untracked_when_unarmed() {
        let mut data = vec![0u32; 8];
        {
            let s = SyncSlice::tracked(&mut data, "test.slice");
            unsafe {
                s.set(2, 5);
                assert_eq!(s.read(2), 5);
                assert_eq!(s.as_slice(0, 8)[2], 5);
            }
        }
        let v = SyncVec::<f64>::zeroed_tracked(4, "test.vec");
        unsafe {
            v.set(1, 2.5);
            assert_eq!(v.snapshot(), vec![0.0, 2.5, 0.0, 0.0]);
        }
    }
}
