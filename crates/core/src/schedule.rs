//! Loop-scheduling policies for the `@For` work-sharing construct.
//!
//! The paper's library ships three alternatives — *static by blocks*,
//! *static cyclic* and *dynamic* (§III-C, Table 1) — and explicitly
//! supports plugging application-specific strategies (the Sparse
//! benchmark's "Case Specific" schedule in Table 2). This module holds the
//! policy enumeration plus the pure iteration-space arithmetic, kept free
//! of threads so it can be exhaustively property-tested.

use crate::range::LoopRange;

/// Which thread runs which iterations of a for method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous blocks, one per thread (`schedule=staticBlock`): thread
    /// `t` of `n` receives iterations `[t*q + min(t,r), …)` where
    /// `q = count/n`, `r = count%n` — the first `r` threads get one extra
    /// iteration, as in OpenMP's plain `schedule(static)`.
    StaticBlock,
    /// Round-robin single iterations (`schedule=staticCyclic`): thread `t`
    /// runs iterations `t, t+n, t+2n, …` — implemented by rewriting the
    /// loop's `(start, step)` exactly like the paper's MolDyn
    /// parallelisation.
    StaticCyclic,
    /// First-come first-served chunks of `chunk` iterations
    /// (`schedule=dynamic`), dispensed from a shared counter (paper
    /// Figure 11).
    Dynamic {
        /// Iterations handed out per request; must be ≥ 1.
        chunk: u64,
    },
    /// Guided self-scheduling: each request receives
    /// `max(remaining / (2n), min_chunk)` iterations. An extension beyond
    /// the paper's three policies (its §VII names mechanism optimisation
    /// as current work); documented in DESIGN.md.
    Guided {
        /// Lower bound on the dispensed chunk size; must be ≥ 1.
        min_chunk: u64,
    },
    /// Block-cyclic (OpenMP's `schedule(static, chunk)`): chunks of
    /// `chunk` iterations dealt round-robin to the team. Generalises both
    /// [`StaticBlock`](Schedule::StaticBlock) (chunk = ⌈count/n⌉) and
    /// [`StaticCyclic`](Schedule::StaticCyclic) (chunk = 1). Extension
    /// beyond the paper's Table 1, documented in DESIGN.md.
    BlockCyclic {
        /// Iterations per dealt chunk; must be ≥ 1.
        chunk: u64,
    },
}

impl Schedule {
    /// Dynamic schedule with chunk size 1 — the paper's Figure 11 default.
    pub const DYNAMIC: Schedule = Schedule::Dynamic { chunk: 1 };
    /// Guided schedule with a minimum chunk of 1.
    pub const GUIDED: Schedule = Schedule::Guided { min_chunk: 1 };

    /// Human-readable name matching the paper's annotation parameters.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::StaticBlock => "staticBlock",
            Schedule::StaticCyclic => "staticCyclic",
            Schedule::Dynamic { .. } => "dynamic",
            Schedule::Guided { .. } => "guided",
            Schedule::BlockCyclic { .. } => "blockCyclic",
        }
    }

    /// Parse an `OMP_SCHEDULE`-style string: `staticBlock`,
    /// `staticCyclic`, `dynamic[,chunk]`, `guided[,min]`,
    /// `blockCyclic,chunk` (aliases `static`/`cyclic` accepted).
    pub fn parse(s: &str) -> Option<Schedule> {
        let mut parts = s.split(',').map(str::trim);
        let kind = parts.next()?;
        let arg: Option<u64> = parts.next().and_then(|p| p.parse().ok());
        match kind {
            "staticBlock" | "static_block" | "static" => Some(Schedule::StaticBlock),
            "staticCyclic" | "static_cyclic" | "cyclic" => Some(Schedule::StaticCyclic),
            "dynamic" => Some(Schedule::Dynamic {
                chunk: arg.unwrap_or(1).max(1),
            }),
            "guided" => Some(Schedule::Guided {
                min_chunk: arg.unwrap_or(1).max(1),
            }),
            "blockCyclic" | "block_cyclic" => Some(Schedule::BlockCyclic {
                chunk: arg.unwrap_or(1).max(1),
            }),
            _ => None,
        }
    }

    /// The schedule selected by the `AOMP_SCHEDULE` environment variable
    /// (OpenMP's `schedule(runtime)` + `OMP_SCHEDULE`), falling back to
    /// `staticBlock` when unset or malformed.
    pub fn from_env() -> Schedule {
        std::env::var("AOMP_SCHEDULE")
            .ok()
            .and_then(|v| Schedule::parse(&v))
            .unwrap_or(Schedule::StaticBlock)
    }
}

/// The chunks of logical iterations thread `tid` of `n` executes under a
/// block-cyclic schedule over `count` iterations, as `(lo, hi)` pairs.
pub fn block_cyclic_iters(count: u64, chunk: u64, tid: usize, n: usize) -> Vec<(u64, u64)> {
    debug_assert!(n > 0 && tid < n && chunk > 0);
    let mut out = Vec::new();
    let mut lo = tid as u64 * chunk;
    while lo < count {
        out.push((lo, (lo + chunk).min(count)));
        lo += chunk * n as u64;
    }
    out
}

/// The contiguous block of logical iterations `[lo, hi)` assigned to
/// thread `tid` of `n` by [`Schedule::StaticBlock`] over `count`
/// iterations.
#[inline]
pub fn static_block_iters(count: u64, tid: usize, n: usize) -> (u64, u64) {
    debug_assert!(n > 0 && tid < n);
    let n64 = n as u64;
    let t = tid as u64;
    let q = count / n64;
    let r = count % n64;
    let lo = t * q + t.min(r);
    let extra = u64::from(t < r);
    (lo, lo + q + extra)
}

/// The element-space [`LoopRange`] thread `tid` of `n` executes under a
/// static-block schedule — the paper Figure 10 rewriting.
#[inline]
pub fn static_block_range(range: LoopRange, tid: usize, n: usize) -> LoopRange {
    let (lo, hi) = static_block_iters(range.count(), tid, n);
    range.slice_iters(lo, hi)
}

/// The element-space [`LoopRange`] thread `tid` of `n` executes under a
/// static-cyclic schedule.
#[inline]
pub fn static_cyclic_range(range: LoopRange, tid: usize, n: usize) -> LoopRange {
    range.cyclic(tid, n)
}

/// Size of the next guided chunk given `remaining` iterations, `n`
/// threads and the schedule's `min_chunk`.
#[inline]
pub fn guided_chunk(remaining: u64, n: usize, min_chunk: u64) -> u64 {
    debug_assert!(n > 0);
    let target = remaining / (2 * n as u64);
    target.max(min_chunk).max(1).min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assigned_elements(
        range: LoopRange,
        n: usize,
        f: impl Fn(LoopRange, usize, usize) -> LoopRange,
    ) -> Vec<i64> {
        let mut all: Vec<i64> = (0..n).flat_map(|t| f(range, t, n).iter()).collect();
        all.sort_unstable();
        all
    }

    fn sorted_elements(range: LoopRange) -> Vec<i64> {
        let mut v: Vec<i64> = range.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn static_block_partitions_exactly() {
        for count in [0u64, 1, 2, 7, 8, 9, 100] {
            for n in [1usize, 2, 3, 7, 8, 16] {
                let mut total = 0;
                let mut prev_hi = 0;
                for t in 0..n {
                    let (lo, hi) = static_block_iters(count, t, n);
                    assert!(lo <= hi);
                    assert_eq!(lo, prev_hi, "blocks must be contiguous");
                    prev_hi = hi;
                    total += hi - lo;
                }
                assert_eq!(prev_hi, count);
                assert_eq!(total, count);
            }
        }
    }

    #[test]
    fn static_block_balanced_within_one() {
        let count = 103;
        let n = 8;
        let sizes: Vec<u64> = (0..n)
            .map(|t| {
                let (lo, hi) = static_block_iters(count, t, n);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "block schedule must balance within 1 iteration: {sizes:?}"
        );
    }

    #[test]
    fn block_range_covers_everything() {
        let r = LoopRange::new(5, 77, 3);
        for n in [1, 2, 5, 8] {
            assert_eq!(
                assigned_elements(r, n, static_block_range),
                sorted_elements(r)
            );
        }
    }

    #[test]
    fn cyclic_range_covers_everything() {
        let r = LoopRange::new(-4, 33, 2);
        for n in [1, 2, 3, 9] {
            assert_eq!(
                assigned_elements(r, n, static_cyclic_range),
                sorted_elements(r)
            );
        }
    }

    #[test]
    fn cyclic_matches_paper_moldyn_pattern() {
        // Paper Figure 3: for (i = id; i < mdsize; i += nthreads)
        let mdsize = 25;
        let n = 4;
        for id in 0..n {
            let assigned: Vec<i64> = static_cyclic_range(LoopRange::upto(0, mdsize), id, n)
                .iter()
                .collect();
            let mut manual = Vec::new();
            let mut i = id as i64;
            while i < mdsize {
                manual.push(i);
                i += n as i64;
            }
            assert_eq!(assigned, manual);
        }
    }

    #[test]
    fn guided_chunks_shrink_but_respect_min() {
        let n = 4;
        let mut remaining = 1000u64;
        let mut last = u64::MAX;
        while remaining > 0 {
            let c = guided_chunk(remaining, n, 4);
            assert!(c >= 1 && c <= remaining);
            assert!(
                c >= 4 || c == remaining,
                "chunks below min only at the tail"
            );
            assert!(c <= last, "guided chunks must be non-increasing");
            last = c;
            remaining -= c;
        }
    }

    #[test]
    fn guided_terminates_for_all_inputs() {
        for n in [1usize, 3, 13] {
            for total in [0u64, 1, 2, 17, 1023] {
                let mut remaining = total;
                let mut handed = 0;
                let mut steps = 0;
                while remaining > 0 {
                    let c = guided_chunk(remaining, n, 1);
                    handed += c;
                    remaining -= c;
                    steps += 1;
                    assert!(steps < 10_000, "guided dispenser must terminate");
                }
                assert_eq!(handed, total);
            }
        }
    }

    #[test]
    fn schedule_names() {
        assert_eq!(Schedule::StaticBlock.name(), "staticBlock");
        assert_eq!(Schedule::StaticCyclic.name(), "staticCyclic");
        assert_eq!(Schedule::DYNAMIC.name(), "dynamic");
        assert_eq!(Schedule::GUIDED.name(), "guided");
    }
}

#[cfg(test)]
mod block_cyclic_tests {
    use super::*;

    #[test]
    fn block_cyclic_partitions_exactly() {
        for count in [0u64, 1, 7, 24, 100] {
            for chunk in [1u64, 2, 5, 8] {
                for n in [1usize, 2, 3, 5] {
                    let mut all: Vec<u64> = Vec::new();
                    for t in 0..n {
                        for (lo, hi) in block_cyclic_iters(count, chunk, t, n) {
                            all.extend(lo..hi);
                        }
                    }
                    all.sort_unstable();
                    assert_eq!(
                        all,
                        (0..count).collect::<Vec<_>>(),
                        "count={count} chunk={chunk} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_cyclic_chunk_one_matches_cyclic_elements() {
        let count = 17u64;
        let n = 4usize;
        for t in 0..n {
            let bc: Vec<u64> = block_cyclic_iters(count, 1, t, n)
                .into_iter()
                .flat_map(|(lo, hi)| lo..hi)
                .collect();
            let cyc: Vec<u64> = (t as u64..count).step_by(n).collect();
            assert_eq!(bc, cyc, "t={t}");
        }
    }

    #[test]
    fn parse_round_trips_names() {
        assert_eq!(Schedule::parse("staticBlock"), Some(Schedule::StaticBlock));
        assert_eq!(Schedule::parse("cyclic"), Some(Schedule::StaticCyclic));
        assert_eq!(
            Schedule::parse("dynamic,8"),
            Some(Schedule::Dynamic { chunk: 8 })
        );
        assert_eq!(
            Schedule::parse("dynamic"),
            Some(Schedule::Dynamic { chunk: 1 })
        );
        assert_eq!(
            Schedule::parse("guided, 4"),
            Some(Schedule::Guided { min_chunk: 4 })
        );
        assert_eq!(
            Schedule::parse("blockCyclic,16"),
            Some(Schedule::BlockCyclic { chunk: 16 })
        );
        assert_eq!(Schedule::parse("nonsense"), None);
        assert_eq!(Schedule::BlockCyclic { chunk: 2 }.name(), "blockCyclic");
    }
}
