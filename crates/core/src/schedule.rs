//! Loop-scheduling policies for the `@For` work-sharing construct.
//!
//! The paper's library ships three alternatives — *static by blocks*,
//! *static cyclic* and *dynamic* (§III-C, Table 1) — and explicitly
//! supports plugging application-specific strategies (the Sparse
//! benchmark's "Case Specific" schedule in Table 2). This module holds the
//! policy enumeration plus the pure iteration-space arithmetic, kept free
//! of threads so it can be exhaustively property-tested.

use crate::range::LoopRange;

/// Which thread runs which iterations of a for method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous blocks, one per thread (`schedule=staticBlock`): thread
    /// `t` of `n` receives iterations `[t*q + min(t,r), …)` where
    /// `q = count/n`, `r = count%n` — the first `r` threads get one extra
    /// iteration, as in OpenMP's plain `schedule(static)`.
    StaticBlock,
    /// Round-robin single iterations (`schedule=staticCyclic`): thread `t`
    /// runs iterations `t, t+n, t+2n, …` — implemented by rewriting the
    /// loop's `(start, step)` exactly like the paper's MolDyn
    /// parallelisation.
    StaticCyclic,
    /// First-come first-served chunks of `chunk` iterations
    /// (`schedule=dynamic`), dispensed from a shared counter (paper
    /// Figure 11).
    Dynamic {
        /// Iterations handed out per request; must be ≥ 1.
        chunk: u64,
    },
    /// Guided self-scheduling: each request receives
    /// `max(remaining / (2n), min_chunk)` iterations. An extension beyond
    /// the paper's three policies (its §VII names mechanism optimisation
    /// as current work); documented in DESIGN.md.
    Guided {
        /// Lower bound on the dispensed chunk size; must be ≥ 1.
        min_chunk: u64,
    },
    /// Block-cyclic (OpenMP's `schedule(static, chunk)`): chunks of
    /// `chunk` iterations dealt round-robin to the team. Generalises both
    /// [`StaticBlock`](Schedule::StaticBlock) (chunk = ⌈count/n⌉) and
    /// [`StaticCyclic`](Schedule::StaticCyclic) (chunk = 1). Extension
    /// beyond the paper's Table 1, documented in DESIGN.md.
    BlockCyclic {
        /// Iterations per dealt chunk; must be ≥ 1.
        chunk: u64,
    },
    /// Self-refining schedule (`schedule=adaptive`): the iteration space
    /// starts as the static-block partition, but each thread dispenses
    /// its own block in halving chunks whose size refines from observed
    /// per-chunk latency — threads running hot (per-iteration latency
    /// above the team's EWMA) shrink their chunks so more of their block
    /// stays stealable, cold threads stay coarse — and a thread that
    /// drains its block steals the upper half of a victim's remaining
    /// range, preferring same-socket victims. The answer to the paper's
    /// "Case Specific" Sparse schedule (Table 2) that needs no hand-built
    /// cost model; documented in DESIGN.md.
    Adaptive {
        /// Lower bound on a refined chunk; must be ≥ 1.
        min_chunk: u64,
    },
}

impl Schedule {
    /// Dynamic schedule with chunk size 1 — the paper's Figure 11 default.
    pub const DYNAMIC: Schedule = Schedule::Dynamic { chunk: 1 };
    /// Guided schedule with a minimum chunk of 1.
    pub const GUIDED: Schedule = Schedule::Guided { min_chunk: 1 };
    /// Adaptive schedule with a minimum refined chunk of 1.
    pub const ADAPTIVE: Schedule = Schedule::Adaptive { min_chunk: 1 };

    /// Human-readable name matching the paper's annotation parameters.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::StaticBlock => "staticBlock",
            Schedule::StaticCyclic => "staticCyclic",
            Schedule::Dynamic { .. } => "dynamic",
            Schedule::Guided { .. } => "guided",
            Schedule::BlockCyclic { .. } => "blockCyclic",
            Schedule::Adaptive { .. } => "adaptive",
        }
    }

    /// Parse an `OMP_SCHEDULE`-style string: `staticBlock`,
    /// `staticCyclic`, `dynamic[,chunk]`, `guided[,min]`,
    /// `blockCyclic,chunk`, `adaptive[,min]` (aliases `static`/`cyclic`
    /// accepted).
    ///
    /// Strict: a malformed chunk (`dynamic,abc`, `dynamic,0`), a missing
    /// required chunk (`blockCyclic`), an argument on a schedule that
    /// takes none (`static,4`) and trailing parts (`dynamic,4,9`) all
    /// return `None` — a misconfigured schedule must be rejected, not
    /// silently coerced to chunk 1.
    pub fn parse(s: &str) -> Option<Schedule> {
        let mut parts = s.split(',').map(str::trim);
        let kind = parts.next()?;
        let arg = parts.next();
        if parts.next().is_some() {
            return None; // trailing junk like `dynamic,4,9`
        }
        // The optional numeric argument: absent is fine, present-but-not
        // a positive integer is malformed.
        let arg = match arg {
            None => None,
            Some(a) => match a.parse::<u64>() {
                Ok(v) if v >= 1 => Some(v),
                _ => return None,
            },
        };
        match kind {
            "staticBlock" | "static_block" | "static" if arg.is_none() => {
                Some(Schedule::StaticBlock)
            }
            "staticCyclic" | "static_cyclic" | "cyclic" if arg.is_none() => {
                Some(Schedule::StaticCyclic)
            }
            "dynamic" => Some(Schedule::Dynamic {
                chunk: arg.unwrap_or(1),
            }),
            "guided" => Some(Schedule::Guided {
                min_chunk: arg.unwrap_or(1),
            }),
            // Block-cyclic without a chunk is `staticBlock` in disguise;
            // the paper's annotation always names the chunk, so a missing
            // one is a configuration error, not a default.
            "blockCyclic" | "block_cyclic" => Some(Schedule::BlockCyclic { chunk: arg? }),
            "adaptive" => Some(Schedule::Adaptive {
                min_chunk: arg.unwrap_or(1),
            }),
            _ => None,
        }
    }

    /// The schedule selected by the `AOMP_SCHEDULE` environment variable
    /// (OpenMP's `schedule(runtime)` + `OMP_SCHEDULE`), falling back to
    /// `staticBlock` when unset or malformed. A malformed value logs a
    /// one-time warning naming the rejected spelling — a misconfigured
    /// deployment should not silently lose its schedule.
    pub fn from_env() -> Schedule {
        match std::env::var("AOMP_SCHEDULE") {
            Err(_) => Schedule::StaticBlock,
            Ok(v) => match Schedule::parse(&v) {
                Some(s) => s,
                None => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "aomp: ignoring malformed AOMP_SCHEDULE={v:?} \
                             (expected staticBlock | staticCyclic | dynamic[,chunk] | \
                             guided[,min] | blockCyclic,chunk | adaptive[,min]); \
                             falling back to staticBlock"
                        );
                    });
                    Schedule::StaticBlock
                }
            },
        }
    }
}

/// The chunks of logical iterations thread `tid` of `n` executes under a
/// block-cyclic schedule over `count` iterations, as `(lo, hi)` pairs.
pub fn block_cyclic_iters(count: u64, chunk: u64, tid: usize, n: usize) -> Vec<(u64, u64)> {
    // Unconditional: in a release build `tid >= n` would deal ranges the
    // team never agreed to partition — corrupt results, not a crash. The
    // panic is team-safe (poisoning cancels the region); precedent is
    // `ForScope::iteration_of`.
    assert!(
        n > 0 && tid < n && chunk > 0,
        "block_cyclic_iters: invalid tid={tid} n={n} chunk={chunk}"
    );
    let mut out = Vec::new();
    let mut lo = tid as u64 * chunk;
    while lo < count {
        out.push((lo, (lo + chunk).min(count)));
        lo += chunk * n as u64;
    }
    out
}

/// The contiguous block of logical iterations `[lo, hi)` assigned to
/// thread `tid` of `n` by [`Schedule::StaticBlock`] over `count`
/// iterations.
#[inline]
pub fn static_block_iters(count: u64, tid: usize, n: usize) -> (u64, u64) {
    // Unconditional for the same reason as `block_cyclic_iters`: a
    // release-mode `tid >= n` yields a garbage range silently.
    assert!(
        n > 0 && tid < n,
        "static_block_iters: invalid tid={tid} n={n}"
    );
    let n64 = n as u64;
    let t = tid as u64;
    let q = count / n64;
    let r = count % n64;
    let lo = t * q + t.min(r);
    let extra = u64::from(t < r);
    (lo, lo + q + extra)
}

/// The element-space [`LoopRange`] thread `tid` of `n` executes under a
/// static-block schedule — the paper Figure 10 rewriting.
#[inline]
pub fn static_block_range(range: LoopRange, tid: usize, n: usize) -> LoopRange {
    let (lo, hi) = static_block_iters(range.count(), tid, n);
    range.slice_iters(lo, hi)
}

/// The element-space [`LoopRange`] thread `tid` of `n` executes under a
/// static-cyclic schedule.
#[inline]
pub fn static_cyclic_range(range: LoopRange, tid: usize, n: usize) -> LoopRange {
    range.cyclic(tid, n)
}

/// Size of the next guided chunk given `remaining` iterations, `n`
/// threads and the schedule's `min_chunk`.
#[inline]
pub fn guided_chunk(remaining: u64, n: usize, min_chunk: u64) -> u64 {
    // Unconditional, with a named message: `n == 0` would otherwise
    // surface as an anonymous divide-by-zero panic below.
    assert!(n > 0, "guided_chunk: team size must be > 0");
    let target = remaining / (2 * n as u64);
    target.max(min_chunk).max(1).min(remaining)
}

// ---------------------------------------------------------------------
// Locality topology
// ---------------------------------------------------------------------

/// Number of sockets (NUMA domains) work-stealers should assume, from
/// the `AOMP_SOCKETS` environment variable. Defaults to 1 (every peer is
/// "near"); read once per process. Thread/worker ids are grouped into
/// sockets contiguously — id `i` of `n` with `s` sockets lives on socket
/// `i / ceil(n/s)` — matching the simcore machine model's compact
/// placement (`Machine::sockets_spanned`).
pub fn configured_sockets() -> usize {
    static SOCKETS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SOCKETS.get_or_init(|| {
        std::env::var("AOMP_SOCKETS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    })
}

/// Hotness threshold for [`Schedule::Adaptive`]: a thread whose
/// per-iteration EWMA exceeds `factor × team EWMA` starts refining its
/// remaining range into smaller chunks. `AOMP_ADAPTIVE_HOT` overrides
/// the default of 1.5 (values ≤ 1.0 or non-finite are ignored — a
/// factor of 1 would mark half the team hot on pure noise); read once
/// per process.
pub fn adaptive_hot_factor() -> f64 {
    static FACTOR: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *FACTOR.get_or_init(|| {
        std::env::var("AOMP_ADAPTIVE_HOT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|f| f.is_finite() && *f > 1.0)
            .unwrap_or(1.5)
    })
}

/// Socket of member `id` when `n` ids span `sockets` sockets under
/// compact placement.
pub fn socket_of(id: usize, n: usize, sockets: usize) -> usize {
    let per = n.max(1).div_ceil(sockets.max(1));
    id / per
}

/// Victim scan order for work-stealer `tid` of `n` across `sockets`
/// sockets: same-socket peers first (ring order starting after `tid`),
/// then remote peers in ring order. Steal-half from near victims first —
/// a stolen range/batch stays in the thief's cache domain when it can.
pub fn steal_order(tid: usize, n: usize, sockets: usize) -> Vec<usize> {
    let mut near = Vec::new();
    let mut far = Vec::new();
    let home = socket_of(tid, n, sockets);
    for k in 1..n {
        let v = (tid + k) % n;
        if socket_of(v, n, sockets) == home {
            near.push(v);
        } else {
            far.push(v);
        }
    }
    near.extend(far);
    near
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assigned_elements(
        range: LoopRange,
        n: usize,
        f: impl Fn(LoopRange, usize, usize) -> LoopRange,
    ) -> Vec<i64> {
        let mut all: Vec<i64> = (0..n).flat_map(|t| f(range, t, n).iter()).collect();
        all.sort_unstable();
        all
    }

    fn sorted_elements(range: LoopRange) -> Vec<i64> {
        let mut v: Vec<i64> = range.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn static_block_partitions_exactly() {
        for count in [0u64, 1, 2, 7, 8, 9, 100] {
            for n in [1usize, 2, 3, 7, 8, 16] {
                let mut total = 0;
                let mut prev_hi = 0;
                for t in 0..n {
                    let (lo, hi) = static_block_iters(count, t, n);
                    assert!(lo <= hi);
                    assert_eq!(lo, prev_hi, "blocks must be contiguous");
                    prev_hi = hi;
                    total += hi - lo;
                }
                assert_eq!(prev_hi, count);
                assert_eq!(total, count);
            }
        }
    }

    #[test]
    fn static_block_balanced_within_one() {
        let count = 103;
        let n = 8;
        let sizes: Vec<u64> = (0..n)
            .map(|t| {
                let (lo, hi) = static_block_iters(count, t, n);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "block schedule must balance within 1 iteration: {sizes:?}"
        );
    }

    #[test]
    fn block_range_covers_everything() {
        let r = LoopRange::new(5, 77, 3);
        for n in [1, 2, 5, 8] {
            assert_eq!(
                assigned_elements(r, n, static_block_range),
                sorted_elements(r)
            );
        }
    }

    #[test]
    fn cyclic_range_covers_everything() {
        let r = LoopRange::new(-4, 33, 2);
        for n in [1, 2, 3, 9] {
            assert_eq!(
                assigned_elements(r, n, static_cyclic_range),
                sorted_elements(r)
            );
        }
    }

    #[test]
    fn cyclic_matches_paper_moldyn_pattern() {
        // Paper Figure 3: for (i = id; i < mdsize; i += nthreads)
        let mdsize = 25;
        let n = 4;
        for id in 0..n {
            let assigned: Vec<i64> = static_cyclic_range(LoopRange::upto(0, mdsize), id, n)
                .iter()
                .collect();
            let mut manual = Vec::new();
            let mut i = id as i64;
            while i < mdsize {
                manual.push(i);
                i += n as i64;
            }
            assert_eq!(assigned, manual);
        }
    }

    #[test]
    fn guided_chunks_shrink_but_respect_min() {
        let n = 4;
        let mut remaining = 1000u64;
        let mut last = u64::MAX;
        while remaining > 0 {
            let c = guided_chunk(remaining, n, 4);
            assert!(c >= 1 && c <= remaining);
            assert!(
                c >= 4 || c == remaining,
                "chunks below min only at the tail"
            );
            assert!(c <= last, "guided chunks must be non-increasing");
            last = c;
            remaining -= c;
        }
    }

    #[test]
    fn guided_terminates_for_all_inputs() {
        for n in [1usize, 3, 13] {
            for total in [0u64, 1, 2, 17, 1023] {
                let mut remaining = total;
                let mut handed = 0;
                let mut steps = 0;
                while remaining > 0 {
                    let c = guided_chunk(remaining, n, 1);
                    handed += c;
                    remaining -= c;
                    steps += 1;
                    assert!(steps < 10_000, "guided dispenser must terminate");
                }
                assert_eq!(handed, total);
            }
        }
    }

    #[test]
    fn schedule_names() {
        assert_eq!(Schedule::StaticBlock.name(), "staticBlock");
        assert_eq!(Schedule::StaticCyclic.name(), "staticCyclic");
        assert_eq!(Schedule::DYNAMIC.name(), "dynamic");
        assert_eq!(Schedule::GUIDED.name(), "guided");
        assert_eq!(Schedule::ADAPTIVE.name(), "adaptive");
    }

    #[test]
    fn parse_rejects_malformed_arguments() {
        // Regression: these used to be silently coerced to chunk 1.
        assert_eq!(Schedule::parse("dynamic,abc"), None);
        assert_eq!(Schedule::parse("dynamic,0"), None);
        assert_eq!(Schedule::parse("dynamic,-3"), None);
        assert_eq!(Schedule::parse("guided,1.5"), None);
        assert_eq!(Schedule::parse("adaptive,x"), None);
        assert_eq!(Schedule::parse("blockCyclic,nope"), None);
    }

    #[test]
    fn parse_rejects_missing_required_chunk() {
        // Regression: `blockCyclic` without its chunk used to default to
        // 1 (i.e. staticCyclic in disguise).
        assert_eq!(Schedule::parse("blockCyclic"), None);
        assert_eq!(Schedule::parse("block_cyclic"), None);
    }

    #[test]
    fn parse_rejects_trailing_junk() {
        // Regression: `dynamic,4,9` used to parse as chunk 4.
        assert_eq!(Schedule::parse("dynamic,4,9"), None);
        assert_eq!(Schedule::parse("staticBlock,1,2"), None);
        assert_eq!(Schedule::parse("adaptive,2,2"), None);
        assert_eq!(Schedule::parse("dynamic,4,"), None);
    }

    #[test]
    fn parse_rejects_arguments_on_argless_schedules() {
        assert_eq!(Schedule::parse("staticBlock,4"), None);
        assert_eq!(Schedule::parse("static,4"), None);
        assert_eq!(Schedule::parse("cyclic,2"), None);
    }

    #[test]
    fn parse_accepts_adaptive() {
        assert_eq!(Schedule::parse("adaptive"), Some(Schedule::ADAPTIVE));
        assert_eq!(
            Schedule::parse("adaptive, 32"),
            Some(Schedule::Adaptive { min_chunk: 32 })
        );
    }

    #[test]
    fn socket_grouping_is_compact() {
        // 12 ids over 2 sockets: 0..6 on socket 0, 6..12 on socket 1 —
        // the Xeon X5650 geometry the simcore model uses.
        for id in 0..6 {
            assert_eq!(socket_of(id, 12, 2), 0);
        }
        for id in 6..12 {
            assert_eq!(socket_of(id, 12, 2), 1);
        }
    }

    #[test]
    fn steal_order_prefers_near_victims() {
        // Thief 1 of 12 over 2 sockets: its five socket-mates (in ring
        // order) come before any remote id.
        let order = steal_order(1, 12, 2);
        assert_eq!(order.len(), 11);
        assert_eq!(&order[..5], &[2, 3, 4, 5, 0]);
        assert!(order[5..].iter().all(|&v| (6..12).contains(&v)));
        // One socket: plain ring order.
        assert_eq!(steal_order(2, 4, 1), vec![3, 0, 1]);
        // Every victim appears exactly once and the thief never does.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).filter(|&v| v != 1).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod block_cyclic_tests {
    use super::*;

    #[test]
    fn block_cyclic_partitions_exactly() {
        for count in [0u64, 1, 7, 24, 100] {
            for chunk in [1u64, 2, 5, 8] {
                for n in [1usize, 2, 3, 5] {
                    let mut all: Vec<u64> = Vec::new();
                    for t in 0..n {
                        for (lo, hi) in block_cyclic_iters(count, chunk, t, n) {
                            all.extend(lo..hi);
                        }
                    }
                    all.sort_unstable();
                    assert_eq!(
                        all,
                        (0..count).collect::<Vec<_>>(),
                        "count={count} chunk={chunk} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_cyclic_chunk_one_matches_cyclic_elements() {
        let count = 17u64;
        let n = 4usize;
        for t in 0..n {
            let bc: Vec<u64> = block_cyclic_iters(count, 1, t, n)
                .into_iter()
                .flat_map(|(lo, hi)| lo..hi)
                .collect();
            let cyc: Vec<u64> = (t as u64..count).step_by(n).collect();
            assert_eq!(bc, cyc, "t={t}");
        }
    }

    #[test]
    fn parse_round_trips_names() {
        assert_eq!(Schedule::parse("staticBlock"), Some(Schedule::StaticBlock));
        assert_eq!(Schedule::parse("cyclic"), Some(Schedule::StaticCyclic));
        assert_eq!(
            Schedule::parse("dynamic,8"),
            Some(Schedule::Dynamic { chunk: 8 })
        );
        assert_eq!(
            Schedule::parse("dynamic"),
            Some(Schedule::Dynamic { chunk: 1 })
        );
        assert_eq!(
            Schedule::parse("guided, 4"),
            Some(Schedule::Guided { min_chunk: 4 })
        );
        assert_eq!(
            Schedule::parse("blockCyclic,16"),
            Some(Schedule::BlockCyclic { chunk: 16 })
        );
        assert_eq!(Schedule::parse("nonsense"), None);
        assert_eq!(Schedule::BlockCyclic { chunk: 2 }.name(), "blockCyclic");
    }
}
