//! Loop iteration ranges for *for methods*.
//!
//! The paper (§III-A) requires loops to be refactored into *for methods*
//! whose first three integer parameters are the loop `start`, `end`
//! (exclusive) and `step`. [`LoopRange`] is the canonical value carrying
//! those three integers, together with the iteration-space arithmetic the
//! work-sharing constructs need (iteration counts, iteration→element
//! mapping, sub-range extraction).

use std::fmt;

/// A half-open, strided loop range `start .. end step step`, mirroring a
/// for method's first three parameters.
///
/// `step` may be negative (counting down); `step == 0` is rejected by
/// [`LoopRange::new`]. The element at logical iteration `k` is
/// `start + k * step`, and the range covers iterations `0 .. count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopRange {
    /// First element of the loop.
    pub start: i64,
    /// Exclusive bound: iteration continues while `i < end` (positive
    /// step) or `i > end` (negative step).
    pub end: i64,
    /// Loop increment; never zero.
    pub step: i64,
}

impl LoopRange {
    /// Create a range. Panics if `step == 0`.
    #[inline]
    pub fn new(start: i64, end: i64, step: i64) -> Self {
        assert!(step != 0, "LoopRange step must be non-zero");
        Self { start, end, step }
    }

    /// The unit-stride range `start..end`.
    #[inline]
    pub fn upto(start: i64, end: i64) -> Self {
        Self::new(start, end, 1)
    }

    /// Number of iterations the loop performs.
    #[inline]
    pub fn count(&self) -> u64 {
        if self.step > 0 {
            if self.start >= self.end {
                0
            } else {
                let span = (self.end - self.start) as u64;
                let step = self.step as u64;
                span.div_ceil(step)
            }
        } else if self.start <= self.end {
            0
        } else {
            let span = (self.start - self.end) as u64;
            let step = (-self.step) as u64;
            span.div_ceil(step)
        }
    }

    /// True when the loop performs no iterations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The element value at logical iteration `k` (not bounds-checked).
    #[inline]
    pub fn element(&self, k: u64) -> i64 {
        self.start + (k as i64) * self.step
    }

    /// Sub-range covering logical iterations `iter_lo .. iter_hi` of this
    /// range, with the same step. Used by block and dynamic schedules.
    #[inline]
    pub fn slice_iters(&self, iter_lo: u64, iter_hi: u64) -> LoopRange {
        debug_assert!(iter_lo <= iter_hi);
        debug_assert!(iter_hi <= self.count());
        LoopRange {
            start: self.element(iter_lo),
            end: self.element(iter_hi),
            step: self.step,
        }
    }

    /// Cyclic sub-range for thread `tid` of `n`: starts at the `tid`-th
    /// iteration and strides by `n` iterations — exactly the paper's
    /// `for (i = id; i < mdsize; i += nthreads)` rewriting, expressed as a
    /// (start, end, step) triple.
    #[inline]
    pub fn cyclic(&self, tid: usize, n: usize) -> LoopRange {
        debug_assert!(n > 0 && tid < n);
        LoopRange {
            start: self.start + (tid as i64) * self.step,
            end: self.end,
            step: self.step * (n as i64),
        }
    }

    /// Iterate over the elements of the range.
    #[inline]
    pub fn iter(&self) -> LoopRangeIter {
        LoopRangeIter {
            next: self.start,
            remaining: self.count(),
            step: self.step,
        }
    }
}

impl fmt::Display for LoopRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) step {}", self.start, self.end, self.step)
    }
}

impl IntoIterator for LoopRange {
    type Item = i64;
    type IntoIter = LoopRangeIter;
    fn into_iter(self) -> LoopRangeIter {
        self.iter()
    }
}

impl IntoIterator for &LoopRange {
    type Item = i64;
    type IntoIter = LoopRangeIter;
    fn into_iter(self) -> LoopRangeIter {
        self.iter()
    }
}

/// Iterator over the elements of a [`LoopRange`].
#[derive(Debug, Clone)]
pub struct LoopRangeIter {
    next: i64,
    remaining: u64,
    step: i64,
}

impl Iterator for LoopRangeIter {
    type Item = i64;

    #[inline]
    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        let v = self.next;
        self.remaining -= 1;
        self.next += self.step;
        Some(v)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LoopRangeIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_positive_step() {
        assert_eq!(LoopRange::new(0, 10, 1).count(), 10);
        assert_eq!(LoopRange::new(0, 10, 3).count(), 4); // 0,3,6,9
        assert_eq!(LoopRange::new(5, 5, 1).count(), 0);
        assert_eq!(LoopRange::new(7, 5, 1).count(), 0);
        assert_eq!(LoopRange::new(-3, 3, 2).count(), 3); // -3,-1,1
    }

    #[test]
    fn count_negative_step() {
        assert_eq!(LoopRange::new(10, 0, -1).count(), 10);
        assert_eq!(LoopRange::new(10, 0, -3).count(), 4); // 10,7,4,1
        assert_eq!(LoopRange::new(0, 10, -1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_rejected() {
        let _ = LoopRange::new(0, 10, 0);
    }

    #[test]
    fn elements_match_manual_loop() {
        let r = LoopRange::new(2, 17, 3);
        let via_iter: Vec<i64> = r.iter().collect();
        let mut manual = Vec::new();
        let mut i = 2;
        while i < 17 {
            manual.push(i);
            i += 3;
        }
        assert_eq!(via_iter, manual);
    }

    #[test]
    fn elements_match_manual_loop_down() {
        let r = LoopRange::new(17, 2, -4);
        let via_iter: Vec<i64> = r.iter().collect();
        let mut manual = Vec::new();
        let mut i = 17;
        while i > 2 {
            manual.push(i);
            i += -4;
        }
        assert_eq!(via_iter, manual);
    }

    #[test]
    fn slice_iters_is_contiguous_partition() {
        let r = LoopRange::new(3, 50, 4);
        let n = r.count();
        let a = r.slice_iters(0, n / 2);
        let b = r.slice_iters(n / 2, n);
        let mut all: Vec<i64> = a.iter().collect();
        all.extend(b.iter());
        assert_eq!(all, r.iter().collect::<Vec<_>>());
    }

    #[test]
    fn cyclic_partition_covers_all() {
        let r = LoopRange::new(0, 23, 1);
        let n = 4;
        let mut all: Vec<i64> = (0..n).flat_map(|t| r.cyclic(t, n).iter()).collect();
        all.sort_unstable();
        assert_eq!(all, r.iter().collect::<Vec<_>>());
    }

    #[test]
    fn cyclic_with_step_and_down() {
        let r = LoopRange::new(20, -1, -2);
        let n = 3;
        let mut all: Vec<i64> = (0..n).flat_map(|t| r.cyclic(t, n).iter()).collect();
        all.sort_unstable();
        let mut expect: Vec<i64> = r.iter().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn exact_size_iterator() {
        let r = LoopRange::new(0, 100, 7);
        assert_eq!(r.iter().len(), r.count() as usize);
    }
}
