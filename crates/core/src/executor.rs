//! The shared task executor — parked workers behind `task::spawn`,
//! `task::spawn_future` and `TaskGroup::spawn`.
//!
//! The paper's `@Task` model is "spawn a new parallel activity"; v1.0
//! (and this runtime before hot teams) took that literally with one OS
//! thread per task. This module replaces thread-per-task with a
//! process-wide pool of workers, each owning a deque: submissions are
//! distributed round-robin, a worker pops its own queue from the front
//! and steals from the back of the others, so a burst of fine-grained
//! tasks spreads over the pool without a single contended queue.
//!
//! ## Admission control, not queueing
//!
//! Tasks may block arbitrarily long in user code (a `FutureTask` producer
//! waiting on another future, a task sleeping on an external event), so
//! unbounded queueing behind a fixed worker count could deadlock a
//! program that was correct under thread-per-task. [`try_submit`]
//! therefore only *enqueues* when a parked worker is available to claim
//! the task or the pool may still grow; otherwise it hands the task back
//! and the caller falls back to a dedicated thread — and, if even that
//! spawn fails (thread exhaustion), to inline execution on the caller
//! (sequential semantics, see [`dispatch`]).
//!
//! A worker blocked in `FutureTask::get` / `TaskGroup::wait` pins its
//! worker but deliberately does NOT steal-and-run queued tasks while
//! blocked ("help joining"): running a stolen task inline on the
//! waiter's stack deadlocks when the stolen task transitively waits on a
//! future whose producer is suspended *below it on the same stack* — the
//! buried frame can only resume after the thief's frame returns, and the
//! thief waits on the buried frame. Liveness without helping holds
//! because a queued task always has a claimed parked worker to pop it
//! (workers re-check `pending` before parking, and parks are bounded),
//! and tasks refused by admission control run on dedicated threads.
//!
//! Disabled together with the hot-team cache (`AOMP_NO_POOL=1` /
//! [`runtime::set_pool_enabled(false)`](crate::runtime::set_pool_enabled)):
//! every task then gets a dedicated thread, as before.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::obs::{self, Counter};
use crate::runtime;

/// Environment variable capping the executor's worker count.
pub const TASK_WORKERS_ENV: &str = "AOMP_TASK_WORKERS";

/// A queued task: the spawn surfaces wrap panic capture / completion
/// signalling into the closure, so the executor itself only runs it.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Bounds a parked worker's sleep so a (theoretical) lost wakeup costs a
/// rescan, never liveness.
const IDLE_PARK: Duration = Duration::from_millis(50);

struct Ctl {
    /// Workers currently parked on the condvar.
    idle: usize,
    /// Parked workers already promised to a submitted task but not yet
    /// woken. `idle - claims` is the spare capacity admission control
    /// checks; claiming under the same lock closes the race where two
    /// submitters count one parked worker twice.
    claims: usize,
    /// Workers ever started (they never exit; also the next worker id).
    live: usize,
}

struct Executor {
    queues: Vec<Mutex<VecDeque<Task>>>,
    inner: Mutex<Ctl>,
    cv: Condvar,
    /// Tasks enqueued but not yet popped. Incremented under `inner` (so
    /// the park-side recheck is loss-free), decremented lock-free on pop.
    pending: AtomicUsize,
    /// Round-robin enqueue cursor.
    next: AtomicUsize,
    max_workers: usize,
}

fn max_workers() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var(TASK_WORKERS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (par * 4).clamp(8, 64)
    })
}

fn executor() -> &'static Arc<Executor> {
    static EXEC: OnceLock<Arc<Executor>> = OnceLock::new();
    EXEC.get_or_init(|| {
        let max = max_workers();
        Arc::new(Executor {
            queues: (0..max).map(|_| Mutex::new(VecDeque::new())).collect(),
            inner: Mutex::new(Ctl {
                idle: 0,
                claims: 0,
                live: 0,
            }),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            max_workers: max,
        })
    })
}

fn enqueue(ex: &Executor, task: Task) {
    let i = ex.next.fetch_add(1, Ordering::Relaxed) % ex.queues.len();
    ex.queues[i].lock().push_back(task);
}

/// Pop a task: the worker's own queue from the front, everyone else's
/// from the back (steal).
fn pop_any(ex: &Executor, own: usize) -> Option<Task> {
    let nq = ex.queues.len();
    for k in 0..nq {
        let i = (own + k) % nq;
        let t = if k == 0 {
            ex.queues[i].lock().pop_front()
        } else {
            ex.queues[i].lock().pop_back()
        };
        if let Some(t) = t {
            ex.pending.fetch_sub(1, Ordering::Relaxed);
            if k != 0 {
                obs::count(Counter::TaskStolen);
            }
            return Some(t);
        }
    }
    None
}

fn run_task(task: Task) {
    // A panicking task must not kill its worker. The spawn surfaces that
    // report panics (futures, groups) catch inside the closure and this
    // payload is already-handled or a detached `spawn`'s (whose contract
    // is the thread-per-task one: the panic is printed by the hook and
    // otherwise lost).
    let _ = catch_unwind(AssertUnwindSafe(task));
}

fn worker_loop(ex: &'static Arc<Executor>, id: usize) {
    loop {
        while let Some(t) = pop_any(ex, id) {
            run_task(t);
        }
        let mut g = ex.inner.lock();
        // Loss-free park: `pending` is only incremented under `inner`,
        // so a task enqueued since the scan above is visible here.
        if ex.pending.load(Ordering::Relaxed) > 0 {
            drop(g);
            continue;
        }
        g.idle += 1;
        obs::count(Counter::ExecParks);
        ex.cv.wait_for(&mut g, IDLE_PARK);
        g.idle -= 1;
        g.claims = g.claims.saturating_sub(1);
        obs::count(Counter::ExecUnparks);
    }
}

/// Try to run `task` on the pool. `Err` hands the task back when the
/// pool is disabled, saturated (no parked worker to claim and no room to
/// grow), or a needed worker could not be spawned — the caller decides
/// the fallback.
pub(crate) fn try_submit(task: Task) -> Result<(), Task> {
    if !runtime::pool_enabled() {
        obs::count(Counter::TaskRefusedDisabled);
        return Err(task);
    }
    let ex = executor();
    let mut g = ex.inner.lock();
    if g.idle > g.claims {
        g.claims += 1;
        enqueue(ex, task);
        ex.pending.fetch_add(1, Ordering::Relaxed);
        drop(g);
        ex.cv.notify_one();
        obs::count(Counter::TaskPooled);
        return Ok(());
    }
    if g.live < ex.max_workers {
        let id = g.live;
        g.live += 1;
        drop(g);
        let spawned = std::thread::Builder::new()
            .name(format!("aomp-exec-{id}"))
            .spawn(move || worker_loop(executor(), id));
        match spawned {
            Ok(_) => {
                enqueue(ex, task);
                let g = ex.inner.lock();
                ex.pending.fetch_add(1, Ordering::Relaxed);
                drop(g);
                ex.cv.notify_one();
                obs::count(Counter::TaskPooled);
                Ok(())
            }
            Err(_) => {
                ex.inner.lock().live -= 1;
                obs::count(Counter::TaskRefusedSaturated);
                Err(task)
            }
        }
    } else {
        drop(g);
        obs::count(Counter::TaskRefusedSaturated);
        Err(task)
    }
}

/// Run `task` somewhere: the shared pool if it can take it, else a
/// dedicated thread named `name` (the classic thread-per-task path),
/// else — when even that spawn fails — inline on the caller. Inline
/// degradation is the sequential semantics the paper guarantees for
/// unplugged annotations, and strictly better than the panic it
/// replaces: the task still runs, completion counters still reach zero,
/// futures still get their value.
pub(crate) fn dispatch(name: &'static str, task: Task) {
    obs::count(Counter::TaskSpawned);
    let task = match try_submit(task) {
        Ok(()) => return,
        Err(task) => task,
    };
    // `Builder::spawn` consumes the closure even on error, so park the
    // task in a shared slot the caller can reclaim if the spawn fails.
    let slot = Arc::new(Mutex::new(Some(task)));
    let runner = Arc::clone(&slot);
    let spawned = std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let t = runner.lock().take();
            if let Some(t) = t {
                t();
            }
        });
    match spawned {
        Ok(_) => obs::count(Counter::TaskDedicated),
        Err(_) => {
            let t = slot.lock().take();
            if let Some(t) = t {
                obs::count(Counter::TaskInline);
                t();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn submitted_tasks_all_run() {
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            dispatch(
                "aomp-task",
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 64 {
            assert!(t0.elapsed() < Duration::from_secs(30), "tasks stuck");
            std::thread::yield_now();
        }
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let done = Arc::new(AtomicUsize::new(0));
        dispatch("aomp-task", Box::new(|| panic!("task dies")));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            dispatch(
                "aomp-task",
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 8 {
            assert!(t0.elapsed() < Duration::from_secs(30), "pool wedged");
            std::thread::yield_now();
        }
    }

    #[test]
    fn disabled_pool_refuses_submission() {
        runtime::set_pool_enabled(false);
        let r = try_submit(Box::new(|| {}));
        runtime::set_pool_enabled(true);
        assert!(r.is_err(), "disabled pool must hand the task back");
    }
}
