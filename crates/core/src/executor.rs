//! The task executor — parked workers behind `task::spawn`,
//! `task::spawn_future` and `TaskGroup::spawn`.
//!
//! The paper's `@Task` model is "spawn a new parallel activity"; v1.0
//! (and this runtime before hot teams) took that literally with one OS
//! thread per task. This module replaces thread-per-task with a pool of
//! workers, each owning a deque: submissions are distributed
//! round-robin, a worker pops its own queue from the front and steals
//! from the back of the others, so a burst of fine-grained tasks spreads
//! over the pool without a single contended queue.
//!
//! Stealing is *locality-aware steal-half*: an idle worker scans victims
//! same-socket first ([`schedule::steal_order`], driven by
//! `AOMP_SOCKETS`), and when it finds a non-empty deque it adopts the
//! whole back half — one lock acquisition amortised over half the
//! victim's backlog, and the adopted tasks then drain from the thief's
//! own queue instead of hammering the victim's lock once per task.
//!
//! Each [`Runtime`](crate::runtime::Runtime) owns one `Executor`
//! instance (the process-wide singleton of earlier versions is now just
//! the default runtime's executor), so two runtimes never share workers
//! and dropping a runtime can actually join its threads: workers hold
//! their own `Arc<Executor>` (not a `&'static`), honour the `shutdown`
//! flag after draining the queues, and [`Executor::shutdown_and_join`]
//! blocks until every worker thread has exited. A worker stuck in a
//! task that blocks forever delays that join — the same contract as
//! dropping a `TaskGroup` that never completes.
//!
//! ## Admission control, not queueing
//!
//! Tasks may block arbitrarily long in user code (a `FutureTask` producer
//! waiting on another future, a task sleeping on an external event), so
//! unbounded queueing behind a fixed worker count could deadlock a
//! program that was correct under thread-per-task. [`Executor::try_submit`]
//! therefore only *enqueues* when a parked worker is available to claim
//! the task or the pool may still grow; otherwise it hands the task back
//! and the caller falls back to a dedicated thread — and, if even that
//! spawn fails (thread exhaustion), to inline execution on the caller
//! (sequential semantics, see [`fallback_dispatch`]).
//!
//! A worker blocked in `FutureTask::get` / `TaskGroup::wait` pins its
//! worker but deliberately does NOT steal-and-run queued tasks while
//! blocked ("help joining"): running a stolen task inline on the
//! waiter's stack deadlocks when the stolen task transitively waits on a
//! future whose producer is suspended *below it on the same stack* — the
//! buried frame can only resume after the thief's frame returns, and the
//! thief waits on the buried frame. Liveness without helping holds
//! because a queued task always has a claimed parked worker to pop it
//! (workers re-check `pending` before parking, and parks are bounded),
//! and tasks refused by admission control run on dedicated threads.
//!
//! Disabled together with the hot-team cache (`AOMP_NO_POOL=1` /
//! [`runtime::set_pool_enabled(false)`](crate::runtime::set_pool_enabled)):
//! every task then gets a dedicated thread, as before. The pool-enabled
//! gate lives on the runtime, not here — the runtime decides whether to
//! offer the task to its executor at all.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs::{self, Counter};
use crate::schedule;

/// Environment variable capping the *default runtime's* worker count.
/// Captured once when the default runtime is constructed
/// (see `runtime::default_runtime`); explicitly built runtimes ignore it.
pub const TASK_WORKERS_ENV: &str = "AOMP_TASK_WORKERS";

/// A queued task: the spawn surfaces wrap panic capture / completion
/// signalling into the closure, so the executor itself only runs it.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Bounds a parked worker's sleep so a (theoretical) lost wakeup costs a
/// rescan, never liveness.
const IDLE_PARK: Duration = Duration::from_millis(50);

/// Worker-count fallback when no cap is configured: enough oversubscription
/// to absorb blocked tasks, bounded so a task storm cannot exhaust the
/// process thread limit.
pub(crate) fn default_max_workers() -> usize {
    let par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (par * 4).clamp(8, 64)
}

struct Ctl {
    /// Workers currently parked on the condvar.
    idle: usize,
    /// Parked workers already promised to a submitted task but not yet
    /// woken. `idle - claims` is the spare capacity admission control
    /// checks; claiming under the same lock closes the race where two
    /// submitters count one parked worker twice.
    claims: usize,
    /// Workers ever started (also the next worker id). They exit only at
    /// executor shutdown.
    live: usize,
}

pub(crate) struct Executor {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Per-worker victim scan order: same-socket peers first in ring
    /// order, then remote sockets (see [`schedule::steal_order`]).
    steal_order: Vec<Vec<usize>>,
    inner: Mutex<Ctl>,
    cv: Condvar,
    /// Tasks enqueued but not yet popped. Incremented under `inner` (so
    /// the park-side recheck is loss-free), decremented lock-free on pop.
    pending: AtomicUsize,
    /// Round-robin enqueue cursor.
    next: AtomicUsize,
    max_workers: usize,
    /// Set once by [`shutdown_and_join`](Executor::shutdown_and_join);
    /// workers observe it after draining the queues.
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// The owning runtime's counter scope; worker-side events (steals,
    /// parks) are attributed here as well as globally.
    scope: Arc<obs::Scope>,
}

impl Executor {
    pub(crate) fn new(max_workers: usize, scope: Arc<obs::Scope>) -> Arc<Executor> {
        let max = max_workers.max(1);
        let sockets = schedule::configured_sockets();
        Arc::new(Executor {
            queues: (0..max).map(|_| Mutex::new(VecDeque::new())).collect(),
            steal_order: (0..max)
                .map(|i| schedule::steal_order(i, max, sockets))
                .collect(),
            inner: Mutex::new(Ctl {
                idle: 0,
                claims: 0,
                live: 0,
            }),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            max_workers: max,
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
            scope,
        })
    }

    /// Try to run `task` on the pool. `Err` hands the task back when the
    /// pool is saturated (no parked worker to claim and no room to
    /// grow), shutting down, or a needed worker could not be spawned —
    /// the caller decides the fallback.
    pub(crate) fn try_submit(self: &Arc<Self>, task: Task) -> Result<(), Task> {
        if self.shutdown.load(Ordering::Acquire) {
            obs::count(Counter::TaskRefusedSaturated);
            return Err(task);
        }
        let mut g = self.inner.lock();
        if g.idle > g.claims {
            g.claims += 1;
            self.enqueue(task);
            self.pending.fetch_add(1, Ordering::Relaxed);
            drop(g);
            self.cv.notify_one();
            obs::count(Counter::TaskPooled);
            self.scope.bump(Counter::TaskPooled);
            return Ok(());
        }
        if g.live < self.max_workers {
            let id = g.live;
            g.live += 1;
            drop(g);
            let ex = Arc::clone(self);
            let spawned = std::thread::Builder::new()
                .name(format!("aomp-exec-{id}"))
                .spawn(move || worker_loop(ex, id));
            match spawned {
                Ok(h) => {
                    self.handles.lock().push(h);
                    self.enqueue(task);
                    let g = self.inner.lock();
                    self.pending.fetch_add(1, Ordering::Relaxed);
                    drop(g);
                    self.cv.notify_one();
                    obs::count(Counter::TaskPooled);
                    self.scope.bump(Counter::TaskPooled);
                    Ok(())
                }
                Err(_) => {
                    self.inner.lock().live -= 1;
                    obs::count(Counter::TaskRefusedSaturated);
                    Err(task)
                }
            }
        } else {
            drop(g);
            obs::count(Counter::TaskRefusedSaturated);
            Err(task)
        }
    }

    /// Stop accepting work, wake every parked worker, and join them all.
    /// Workers drain already-enqueued tasks before exiting; a task
    /// blocked in user code delays the join for as long as it blocks.
    /// Called from `Runtime` teardown (at most once matters; idempotent).
    pub(crate) fn shutdown_and_join(&self) {
        {
            // Flip under `inner` so a worker deciding to park either sees
            // the flag before sleeping or is woken by the notify below —
            // no lost-shutdown window.
            let _g = self.inner.lock();
            self.shutdown.store(true, Ordering::Release);
        }
        self.cv.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        let me = std::thread::current().id();
        for h in handles {
            // Teardown can run *on* a worker (a task's entered-runtime
            // guard dropping the last handle): never self-join — the
            // dropped handle detaches and the worker exits on its own
            // (it holds its own `Arc<Executor>`, so nothing dangles).
            if h.thread().id() == me {
                continue;
            }
            let _ = h.join();
        }
    }

    fn enqueue(&self, task: Task) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i].lock().push_back(task);
    }

    /// Pop a task: the worker's own queue from the front; when that is
    /// empty, steal the back half of the nearest non-empty victim's
    /// deque (near victims first), run the newest stolen task and adopt
    /// the rest into the own queue. Adopted tasks stay enqueued —
    /// `pending` drops only for the task actually returned.
    fn pop_any(&self, own: usize) -> Option<Task> {
        if let Some(t) = self.queues[own].lock().pop_front() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(t);
        }
        for &v in &self.steal_order[own] {
            // Cut the batch under the victim's lock alone, then append
            // under the own lock alone: never two queue locks at once.
            let mut batch = {
                let mut q = self.queues[v].lock();
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len - len.div_ceil(2))
            };
            let t = batch.pop_back().expect("stolen batch is non-empty");
            self.pending.fetch_sub(1, Ordering::Relaxed);
            if !batch.is_empty() {
                self.queues[own].lock().append(&mut batch);
            }
            obs::count(Counter::TaskStolen);
            self.scope.bump(Counter::TaskStolen);
            return Some(t);
        }
        None
    }
}

fn run_task(task: Task) {
    // A panicking task must not kill its worker. The spawn surfaces that
    // report panics (futures, groups) catch inside the closure and this
    // payload is already-handled or a detached `spawn`'s (whose contract
    // is the thread-per-task one: the panic is printed by the hook and
    // otherwise lost).
    let _ = catch_unwind(AssertUnwindSafe(task));
}

/// Owns its `Arc` (not `&'static`) so the executor — and with it the
/// runtime that owns it — is droppable once every worker has exited.
fn worker_loop(ex: Arc<Executor>, id: usize) {
    loop {
        while let Some(t) = ex.pop_any(id) {
            run_task(t);
        }
        let mut g = ex.inner.lock();
        // Queues drained and shutdown requested: exit. Checked under
        // `inner` (where the flag is flipped) so this cannot miss a
        // shutdown and park unwoken.
        if ex.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Loss-free park: `pending` is only incremented under `inner`,
        // so a task enqueued since the scan above is visible here.
        if ex.pending.load(Ordering::Relaxed) > 0 {
            drop(g);
            continue;
        }
        g.idle += 1;
        obs::count(Counter::ExecParks);
        ex.scope.bump(Counter::ExecParks);
        ex.cv.wait_for(&mut g, IDLE_PARK);
        g.idle -= 1;
        g.claims = g.claims.saturating_sub(1);
        obs::count(Counter::ExecUnparks);
        ex.scope.bump(Counter::ExecUnparks);
    }
}

/// Run a task the executor refused (or was never offered, pool
/// disabled): a dedicated thread named `name` — the classic
/// thread-per-task path — else, when even that spawn fails, inline on
/// the caller. Inline degradation is the sequential semantics the paper
/// guarantees for unplugged annotations, and strictly better than the
/// panic it replaces: the task still runs, completion counters still
/// reach zero, futures still get their value.
pub(crate) fn fallback_dispatch(name: &'static str, task: Task) {
    // `Builder::spawn` consumes the closure even on error, so park the
    // task in a shared slot the caller can reclaim if the spawn fails.
    let slot = Arc::new(Mutex::new(Some(task)));
    let runner = Arc::clone(&slot);
    let spawned = std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let t = runner.lock().take();
            if let Some(t) = t {
                t();
            }
        });
    match spawned {
        Ok(_) => obs::count(Counter::TaskDedicated),
        Err(_) => {
            let t = slot.lock().take();
            if let Some(t) = t {
                obs::count(Counter::TaskInline);
                t();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn test_exec(max: usize) -> Arc<Executor> {
        Executor::new(max, Arc::new(obs::Scope::new(true)))
    }

    fn submit_or_fallback(ex: &Arc<Executor>, task: Task) {
        if let Err(t) = ex.try_submit(task) {
            fallback_dispatch("aomp-task", t);
        }
    }

    #[test]
    fn submitted_tasks_all_run() {
        let ex = test_exec(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            submit_or_fallback(
                &ex,
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 64 {
            assert!(t0.elapsed() < Duration::from_secs(30), "tasks stuck");
            std::thread::yield_now();
        }
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let ex = test_exec(2);
        let done = Arc::new(AtomicUsize::new(0));
        submit_or_fallback(&ex, Box::new(|| panic!("task dies")));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            submit_or_fallback(
                &ex,
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 8 {
            assert!(t0.elapsed() < Duration::from_secs(30), "pool wedged");
            std::thread::yield_now();
        }
    }

    #[test]
    fn steal_takes_half_and_keeps_victims_front() {
        // Deterministic: queues are manipulated directly, no worker
        // threads ever start (try_submit is never called).
        let ex = test_exec(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..6 {
            let log = Arc::clone(&log);
            ex.queues[2]
                .lock()
                .push_back(Box::new(move || log.lock().push(i)) as Task);
            ex.pending.fetch_add(1, Ordering::Relaxed);
        }
        // Worker 0's own queue is empty: in (single-socket) ring order
        // 1, 2, 3 the first non-empty victim is queue 2. Of its 6
        // tasks the thief cuts the back half [3, 4, 5], runs the
        // newest and adopts the rest.
        let t = ex.pop_any(0).expect("steal must find the batch");
        t();
        assert_eq!(
            log.lock().as_slice(),
            &[5],
            "thief runs the newest stolen task"
        );
        assert_eq!(ex.queues[2].lock().len(), 3, "victim keeps its front half");
        assert_eq!(ex.queues[0].lock().len(), 2, "thief adopts the rest");
        assert_eq!(
            ex.pending.load(Ordering::Relaxed),
            5,
            "adopted tasks stay pending"
        );
        // The adopted tasks drain from the thief's own front, in order.
        ex.pop_any(0).unwrap()();
        ex.pop_any(0).unwrap()();
        assert_eq!(log.lock().as_slice(), &[5, 3, 4]);
        // Thief dry again: next steal comes from the victim's remainder.
        ex.pop_any(0).unwrap()();
        assert_eq!(log.lock().as_slice(), &[5, 3, 4, 2]);
    }

    #[test]
    fn own_queue_has_priority_over_stealing() {
        let ex = test_exec(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (q, tag) in [(0usize, "own"), (1, "other")] {
            let log = Arc::clone(&log);
            ex.queues[q]
                .lock()
                .push_back(Box::new(move || log.lock().push(tag)) as Task);
            ex.pending.fetch_add(1, Ordering::Relaxed);
        }
        ex.pop_any(0).unwrap()();
        assert_eq!(log.lock().as_slice(), &["own"]);
    }

    #[test]
    fn steal_orders_are_rings_on_one_socket() {
        // AOMP_SOCKETS defaults to 1 in the test environment: every
        // worker's victim order is the plain ring after itself.
        let ex = test_exec(4);
        assert_eq!(ex.steal_order[0], vec![1, 2, 3]);
        assert_eq!(ex.steal_order[1], vec![2, 3, 0]);
        assert_eq!(ex.steal_order[3], vec![0, 1, 2]);
    }

    #[test]
    fn shutdown_refuses_submission_and_joins_workers() {
        let ex = test_exec(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            submit_or_fallback(
                &ex,
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        ex.shutdown_and_join();
        assert_eq!(ex.handles.lock().len(), 0, "all workers joined");
        let r = ex.try_submit(Box::new(|| {}));
        assert!(r.is_err(), "shut-down executor must hand the task back");
    }
}
