//! `aomp::nr` — node replication: scale past a single lock by replicating
//! critical-guarded state.
//!
//! The paper's `@Critical` (§III-C) serialises *every* thread in the
//! process through one lock, so a hot shared structure stops scaling the
//! moment the lock is contended. This module offers a drop-in upgrade
//! borrowed from node-replication designs (Calciu et al., *Black-box
//! Concurrent Data Structures for NUMA Architectures*, ASPLOS '17): keep
//! the structure single-threaded, but
//!
//! 1. record every mutating operation in a **shared bounded operation
//!    log** (a ring of slots stamped with absolute positions),
//! 2. keep one **replica** of the structure per "node" (NUMA socket or
//!    just a contention domain), each replaying the log independently,
//! 3. funnel writers through per-replica **flat combining**: a writer
//!    publishes its op in a preassigned slot; whichever writer holds the
//!    replica's combiner lock batches all published ops, appends the
//!    batch to the log with one reservation, replays the log through the
//!    local replica, and hands each poster its response,
//! 4. serve readers from the local replica after it has caught up with
//!    the log tail observed at the start of the read — the standard
//!    node-replication linearizability condition.
//!
//! Writers on different replicas contend only on the log tail (one CAS
//! per *batch*); readers on different replicas do not contend at all.
//!
//! Two front ends share the machinery:
//!
//! * [`Replicated<T>`] — the typed API: implement [`Dispatch`] for a
//!   plain single-threaded structure (an enum of read/write ops mapped to
//!   responses) and `Replicated` makes it concurrent.
//! * [`Combiner`] — an untyped flat-combining *section* lock for closure
//!   bodies: `combiner.run(|| ...)` is a scalability upgrade for
//!   [`critical_named`](crate::critical::critical_named), used by the
//!   weaver's `replicated` mechanism and the `#[replicated]` macro. It
//!   has a single "replica" (the section body runs once), so it provides
//!   flat combining without replication.
//!
//! # Configuration
//!
//! | Env var            | Meaning                               | Default |
//! |--------------------|---------------------------------------|---------|
//! | `AOMP_NR_REPLICAS` | replicas per [`Replicated`]           | by core count (1 / 2 / 4) |
//! | `AOMP_NR_LOG`      | operation-log size in slots (min 128) | 1024    |
//!
//! # Checker integration
//!
//! Every protocol transition is reported to the [hook layer](crate::hook)
//! so `aomp-check` can replay schedules and extend its happens-before
//! relation: [`NrAppend`](crate::hook::HookEvent::NrAppend) when an op is
//! published, [`NrCombine`](crate::hook::HookEvent::NrCombine) when a
//! combiner starts replaying a log range into a replica, and
//! [`NrSync`](crate::hook::HookEvent::NrSync) when a thread synchronises
//! with a replica (combiner release, poster response pickup, reader
//! catch-up). Blocked protocol waits park at
//! [`WaitSite::Replicated`] and are visible to the stall watchdog.
//!
//! # Limitations
//!
//! * [`Dispatch::dispatch_mut`] must not panic: a panic mid-batch unwinds
//!   the combiner with responses undelivered. Inside a team the panic
//!   poisons the team and blocked posters unwind too; outside a team
//!   they would wait forever.
//! * A [`Combiner`] section body runs on *some* combining thread, not
//!   necessarily the posting thread — thread-identity-dependent bodies
//!   (thread-locals, [`thread_id`](crate::ctx::thread_id)) see the
//!   combiner's identity, exactly like flat-combining in general.

use parking_lot::{Mutex, RwLock};
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::ctx;
use crate::error::WaitSite;
use crate::hook::{self, HookEvent};
use crate::obs;

/// A single-threaded structure made concurrent by [`Replicated`].
///
/// Model the structure's interface as two op enums: `ReadOp` for
/// operations that do not change state and `WriteOp` for those that do.
/// `Replicated` replays every `WriteOp` on every replica in one global
/// order (the operation log), so `dispatch_mut` must be deterministic —
/// same op + same state must produce the same state on every replica.
pub trait Dispatch {
    /// Read-only operations; executed against one replica's state.
    type ReadOp;
    /// Mutating operations; appended to the shared log and replayed on
    /// every replica (hence `Clone`), possibly by other threads (hence
    /// `Send + Sync`).
    type WriteOp: Clone + Send + Sync;
    /// The result of either kind of operation; handed back across
    /// threads from the combiner to the poster.
    type Response: Send;

    /// Execute a read-only operation against the current state.
    fn dispatch(&self, op: &Self::ReadOp) -> Self::Response;

    /// Execute a mutating operation. Must be deterministic and must not
    /// panic (see module docs).
    fn dispatch_mut(&mut self, op: &Self::WriteOp) -> Self::Response;
}

// --------------------------------------------------------------------
// Shared plumbing
// --------------------------------------------------------------------

/// Flat-combining slot states. EMPTY → PENDING (poster publishes) →
/// TAKEN (combiner claimed the op) → DONE (response ready) → EMPTY
/// (poster consumed). The PENDING→EMPTY retract transition lets a
/// poster withdraw an op no combiner has claimed yet (cancellation).
const EMPTY: u8 = 0;
const PENDING: u8 = 1;
const TAKEN: u8 = 2;
const DONE: u8 = 3;

/// Combining slots per replica. Threads beyond this fall back to a
/// slotless path (acquire the combiner lock, self-execute) — correct,
/// just without the batching win.
const NR_SLOTS: usize = 64;
/// Sentinel assignment for threads that did not get a combining slot.
const SLOTLESS: usize = usize::MAX;
/// Smallest permitted operation log: must fit the largest possible
/// batch (every slot plus one inline op) with room to spare.
const MIN_LOG: usize = 2 * NR_SLOTS;

/// Process-unique monotonic identity for replicated structures, shared
/// by [`Replicated`] and [`Combiner`]. Never address-derived and never
/// reused: hook events key happens-before state by this id, and a
/// dropped-and-reallocated structure must not inherit the clock history
/// of whatever previously lived at its address.
fn next_nr_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
}

/// Replicas a [`Replicated::new`] structure gets: `AOMP_NR_REPLICAS`, or
/// a core-count heuristic (1 below 4 cores, 2 below 16, 4 beyond —
/// stand-ins for NUMA nodes on machines where we cannot ask).
pub fn default_replicas() -> usize {
    env_usize("AOMP_NR_REPLICAS").unwrap_or_else(|| {
        let p = std::thread::available_parallelism().map_or(1, |n| n.get());
        match p {
            0..=3 => 1,
            4..=15 => 2,
            _ => 4,
        }
    })
}

/// Operation-log size (slots) a [`Replicated::new`] structure gets:
/// `AOMP_NR_LOG` (clamped to at least 128), default 1024.
pub fn default_log_size() -> usize {
    env_usize("AOMP_NR_LOG").unwrap_or(1024).max(MIN_LOG)
}

/// Block until `ready` yields a value. Outside a team: spin, then yield.
/// Inside a team: register at [`WaitSite::Replicated`] for the stall
/// watchdog, offer every park to a registered scheduler hook, and when
/// the team is poisoned/cancelled ask `retract` whether it is safe to
/// unwind (a poster must first withdraw its published op — or, for a
/// [`Combiner`] task that points into the poster's stack frame, may only
/// unwind once the op can no longer be claimed).
fn block_on<R>(mut ready: impl FnMut() -> Option<R>, mut retract: impl FnMut() -> bool) -> R {
    if let Some(r) = ready() {
        return r;
    }
    ctx::with_current(|c| match c {
        None => {
            let mut spins = 0u32;
            loop {
                if let Some(r) = ready() {
                    break r;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        Some(c) => {
            let team = c.shared.token();
            let tid = c.tid;
            let _w = c.shared.begin_wait(tid, WaitSite::Replicated);
            loop {
                if let Some(r) = ready() {
                    break r;
                }
                let interrupted = c.shared.poisoned.load(Ordering::Acquire)
                    || c.shared.cancelled.load(Ordering::Acquire);
                if interrupted && retract() {
                    c.shared.check_interrupt(); // unwinds
                }
                if !hook::yield_blocked(team, tid, WaitSite::Replicated) {
                    if hook::active() {
                        // Hook declined the park: bound the probe loop.
                        std::thread::sleep(Duration::from_millis(1));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    })
}

/// A stable per-thread token (the address of a thread-local), used for
/// re-entrancy detection. Never zero.
fn thread_token() -> usize {
    thread_local! {
        static TOKEN: u8 = const { 0 };
    }
    TOKEN.with(|t| t as *const u8 as usize)
}

// --------------------------------------------------------------------
// Operation log
// --------------------------------------------------------------------

/// One ring slot. `seq == pos + 1` (for the absolute log position `pos`
/// the slot currently holds) published with Release once `op` is
/// written; 0 means never filled. Absolute stamps disambiguate ring
/// generations without a separate epoch.
struct LogSlot<O> {
    seq: AtomicU64,
    op: UnsafeCell<Option<O>>,
}

// SAFETY: `op` is written only by the appender that reserved the slot's
// current position (exclusive by the tail CAS) and read by repliers only
// after observing the matching `seq` stamp (Acquire); the space check
// keeps a position from being reassigned until every replica has
// consumed it. `O: Send + Sync` lets ops be written and replayed from
// any thread.
unsafe impl<O: Send + Sync> Sync for LogSlot<O> {}

struct Log<O> {
    slots: Box<[LogSlot<O>]>,
    tail: AtomicU64,
}

impl<O> Log<O> {
    fn new(size: usize) -> Self {
        Self {
            slots: (0..size)
                .map(|_| LogSlot {
                    seq: AtomicU64::new(0),
                    op: UnsafeCell::new(None),
                })
                .collect(),
            tail: AtomicU64::new(0),
        }
    }

    fn size(&self) -> u64 {
        self.slots.len() as u64
    }

    fn slot(&self, pos: u64) -> &LogSlot<O> {
        &self.slots[(pos % self.size()) as usize]
    }
}

// --------------------------------------------------------------------
// Replicated<T>
// --------------------------------------------------------------------

struct OpCell<T: Dispatch> {
    op: Option<T::WriteOp>,
    resp: Option<T::Response>,
}

/// A typed flat-combining slot: one writer thread publishes here, the
/// replica's combiner claims, executes and answers.
struct OpSlot<T: Dispatch> {
    state: AtomicU8,
    cell: UnsafeCell<OpCell<T>>,
}

// SAFETY: `cell` ownership follows `state` (see the state constants):
// the poster owns it at EMPTY/DONE, the combiner between a successful
// PENDING→TAKEN claim and its DONE store. `WriteOp`/`Response` are
// `Send`, so handing the contents across that protocol is sound.
unsafe impl<T: Dispatch> Sync for OpSlot<T> {}

struct Replica<T: Dispatch> {
    data: RwLock<T>,
    /// Log prefix replayed into `data`; mutated only by the thread
    /// holding `combiner`.
    applied: AtomicU64,
    /// Combiner election: whoever try-locks this batches the replica's
    /// pending ops. Never blocked on while holding another replica's
    /// combiner lock (helpers use `try_lock`), so no lock-order cycles.
    combiner: Mutex<()>,
    slots: Box<[OpSlot<T>]>,
    /// High-water mark of assigned slots (scan bound).
    registered: AtomicUsize,
    /// Slot indices returned by dropped [`ReplicatedHandle`]s.
    free: Mutex<Vec<usize>>,
}

/// A single-threaded [`Dispatch`] structure replicated per contention
/// domain behind a shared operation log — a scalable replacement for
/// guarding the structure with one `@Critical` lock.
///
/// ```
/// use aomp::nr::{Dispatch, Replicated};
///
/// #[derive(Clone)]
/// struct Counter(u64);
/// enum Read { Get }
/// #[derive(Clone)]
/// enum Write { Add(u64) }
///
/// impl Dispatch for Counter {
///     type ReadOp = Read;
///     type WriteOp = Write;
///     type Response = u64;
///     fn dispatch(&self, _op: &Read) -> u64 { self.0 }
///     fn dispatch_mut(&mut self, op: &Write) -> u64 {
///         let Write::Add(n) = op;
///         self.0 += n;
///         self.0
///     }
/// }
///
/// let c = Replicated::new(Counter(0));
/// assert_eq!(c.execute(Write::Add(2)), 2);
/// assert_eq!(c.execute(Write::Add(3)), 5);
/// assert_eq!(c.execute_ro(&Read::Get), 5);
/// ```
pub struct Replicated<T: Dispatch> {
    id: usize,
    log: Log<T::WriteOp>,
    replicas: Box<[Replica<T>]>,
    next_replica: AtomicUsize,
}

thread_local! {
    /// This thread's `(replica, slot)` assignment per structure id, made
    /// on first use. Entries for dropped structures linger (ids are
    /// never reused, so they are merely unused); a thread's slots are
    /// not returned when the thread exits — slot exhaustion degrades to
    /// the slotless path, never to an error.
    static NR_REG: RefCell<HashMap<usize, (usize, usize)>> = RefCell::new(HashMap::new());
}

impl<T: Dispatch + Clone> Replicated<T> {
    /// Replicate `initial` with the [configured](crate::nr#configuration)
    /// replica count and log size.
    pub fn new(initial: T) -> Self {
        Self::with_config(initial, default_replicas(), default_log_size())
    }

    /// Replicate `initial` with an explicit replica count and log size
    /// (clamped to at least 1 replica / 128 log slots).
    pub fn with_config(initial: T, replicas: usize, log_size: usize) -> Self {
        let n = replicas.max(1);
        let replicas = (0..n)
            .map(|_| Replica {
                data: RwLock::new(initial.clone()),
                applied: AtomicU64::new(0),
                combiner: Mutex::new(()),
                slots: (0..NR_SLOTS)
                    .map(|_| OpSlot {
                        state: AtomicU8::new(EMPTY),
                        cell: UnsafeCell::new(OpCell {
                            op: None,
                            resp: None,
                        }),
                    })
                    .collect(),
                registered: AtomicUsize::new(0),
                free: Mutex::new(Vec::new()),
            })
            .collect();
        Self {
            id: next_nr_id(),
            log: Log::new(log_size.max(MIN_LOG)),
            replicas,
            next_replica: AtomicUsize::new(0),
        }
    }
}

impl<T: Dispatch> Replicated<T> {
    /// The structure's process-unique id (the `nr` field of its hook
    /// events). Monotonic, never reused.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Current log tail: total mutating ops appended so far.
    pub fn tail(&self) -> u64 {
        self.log.tail.load(Ordering::Acquire)
    }

    /// Log prefix replica `r` has replayed. Always a prefix: ops are
    /// applied in log order, so `applied(r) == n` means exactly ops
    /// `0..n` are reflected in that replica's state.
    pub fn applied(&self, r: usize) -> u64 {
        self.replicas[r].applied.load(Ordering::Acquire)
    }

    /// Register the calling context on a replica (round-robin) and
    /// reserve it a combining slot. The handle is cheaper than the
    /// thread-keyed [`execute`](Self::execute) path in hot loops, and
    /// returns its slot when dropped. Not `Sync`: a handle's slot admits
    /// one posting thread at a time.
    pub fn handle(&self) -> ReplicatedHandle<'_, T> {
        let (replica, slot) = self.assign();
        ReplicatedHandle {
            nr: self,
            replica,
            slot,
            _not_sync: PhantomData,
        }
    }

    /// Apply a mutating op: publish it for this thread's replica
    /// combiner, combining ourselves if the combiner lock is free, and
    /// return its response once some combiner has replayed it. A
    /// cancellation point inside a team.
    pub fn execute(&self, op: T::WriteOp) -> T::Response {
        let (r, s) = self.thread_assignment();
        self.write_at(r, s, op)
    }

    /// Execute a read-only op against this thread's replica after it has
    /// caught up with the log tail observed at the call — the standard
    /// node-replication condition making reads linearizable. Readers of
    /// an up-to-date replica share a read lock (no mutual exclusion).
    pub fn execute_ro(&self, op: &T::ReadOp) -> T::Response {
        let (r, _) = self.thread_assignment();
        self.read_at(r, op)
    }

    /// Bring this thread's replica up to the current log tail without
    /// reading — e.g. before a direct [`read_direct`](Self::read_direct)
    /// sweep at a quiescent point.
    pub fn sync(&self) {
        let (r, _) = self.thread_assignment();
        self.catch_up(r, self.log.tail.load(Ordering::Acquire));
    }

    /// Run `f` against this thread's replica state *without* syncing to
    /// the tail first — the caller asserts quiescence (e.g. after a team
    /// join preceded by [`sync`](Self::sync)). Blocks only if a combiner
    /// is mid-apply.
    pub fn read_direct<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let (r, _) = self.thread_assignment();
        let data = block_on(|| self.replicas[r].data.try_read(), || true);
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: r,
            upto: self.replicas[r].applied.load(Ordering::Relaxed),
        });
        f(&data)
    }

    fn thread_assignment(&self) -> (usize, usize) {
        NR_REG.with(|m| {
            *m.borrow_mut()
                .entry(self.id)
                .or_insert_with(|| self.assign())
        })
    }

    fn assign(&self) -> (usize, usize) {
        let r = self.next_replica.fetch_add(1, Ordering::Relaxed) % self.replicas.len();
        let rep = &self.replicas[r];
        let slot = rep.free.lock().pop().unwrap_or_else(|| {
            let i = rep.registered.fetch_add(1, Ordering::Relaxed);
            if i < NR_SLOTS {
                i
            } else {
                SLOTLESS
            }
        });
        (r, slot)
    }

    fn write_at(&self, r: usize, si: usize, op: T::WriteOp) -> T::Response {
        if si == SLOTLESS {
            return self.write_slotless(r, op);
        }
        let rep = &self.replicas[r];
        let slot = &rep.slots[si];
        // Quiesce a slot a cancelled predecessor on this thread left
        // mid-flight: consume a stale DONE, and wait out a TAKEN op the
        // active combiner is still committed to answering.
        if slot.state.load(Ordering::Acquire) != EMPTY {
            block_on(
                || match slot.state.load(Ordering::Acquire) {
                    EMPTY => Some(()),
                    DONE => {
                        // SAFETY: DONE hands the cell back to the poster
                        // side, and the slot is assigned to us.
                        unsafe { (*slot.cell.get()).resp = None };
                        slot.state.store(EMPTY, Ordering::Release);
                        Some(())
                    }
                    _ => None,
                },
                || true, // nothing published yet: unwinding is safe
            );
        }
        // SAFETY: EMPTY slot assigned to this thread — we own the cell.
        unsafe {
            let cell = &mut *slot.cell.get();
            cell.op = Some(op);
            cell.resp = None;
        }
        // Publish. The NrAppend release edge is recorded before the
        // PENDING store so no combiner can claim the op first.
        hook::emit_team(|team, tid| {
            let t = self.log.tail.load(Ordering::Relaxed);
            HookEvent::NrAppend {
                team,
                tid,
                nr: self.id,
                lo: t,
                hi: t,
            }
        });
        slot.state.store(PENDING, Ordering::Release);
        let resp = block_on(
            || loop {
                match slot.state.load(Ordering::Acquire) {
                    DONE => {
                        // SAFETY: DONE hands the cell back to us.
                        let resp = unsafe { (*slot.cell.get()).resp.take() };
                        slot.state.store(EMPTY, Ordering::Release);
                        break Some(resp.expect("replicated op completed without a response"));
                    }
                    st => {
                        if let Some(_g) = rep.combiner.try_lock() {
                            self.combine_locked(r, Some(si), None);
                            // Our own op was part of the batch (it was
                            // PENDING): re-check. A slot still TAKEN with
                            // the lock free is orphaned — a dispatch
                            // panic unwound its combiner — so park
                            // rather than spin.
                            if st == PENDING || slot.state.load(Ordering::Acquire) != TAKEN {
                                continue;
                            }
                        }
                        break None;
                    }
                }
            },
            || {
                // Withdraw the op if no combiner claimed it; either way
                // unwinding is safe (the op is owned by the slot, not
                // borrowed from our stack) — a late DONE is reclaimed by
                // this thread's next write.
                if slot
                    .state
                    .compare_exchange(PENDING, EMPTY, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: the CAS re-acquired cell ownership.
                    unsafe { (*slot.cell.get()).op = None };
                }
                true
            },
        );
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: r,
            upto: rep.applied.load(Ordering::Relaxed),
        });
        obs::count(obs::Counter::NrWrites);
        resp
    }

    /// No combining slot: serialise on the combiner lock and self-append.
    fn write_slotless(&self, r: usize, op: T::WriteOp) -> T::Response {
        let rep = &self.replicas[r];
        hook::emit_team(|team, tid| {
            let t = self.log.tail.load(Ordering::Relaxed);
            HookEvent::NrAppend {
                team,
                tid,
                nr: self.id,
                lo: t,
                hi: t,
            }
        });
        let g = block_on(|| rep.combiner.try_lock(), || true);
        let resp = self
            .combine_locked(r, None, Some(op))
            .expect("inline replicated op executed without a response");
        drop(g);
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: r,
            upto: rep.applied.load(Ordering::Relaxed),
        });
        obs::count(obs::Counter::NrWrites);
        resp
    }

    fn read_at(&self, r: usize, op: &T::ReadOp) -> T::Response {
        let rep = &self.replicas[r];
        let t = self.log.tail.load(Ordering::Acquire);
        if rep.applied.load(Ordering::Acquire) < t {
            self.catch_up(r, t);
        }
        let data = block_on(|| rep.data.try_read(), || true);
        // Join the replica's release history *before* reading: holding
        // the read lock excludes combiners, so no apply intervenes
        // between this edge and the dispatch below.
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: r,
            upto: rep.applied.load(Ordering::Relaxed),
        });
        let resp = data.dispatch(op);
        obs::count(obs::Counter::NrReads);
        resp
    }

    fn catch_up(&self, r: usize, t: u64) {
        let rep = &self.replicas[r];
        block_on(
            || {
                if rep.applied.load(Ordering::Acquire) >= t {
                    return Some(());
                }
                if let Some(_g) = rep.combiner.try_lock() {
                    // Reader-turned-combiner: also batches any pending
                    // writes on this replica (flat combining).
                    self.combine_locked(r, None, None);
                    return Some(());
                }
                None
            },
            || true,
        );
    }

    /// The combining pass. Caller holds `replicas[r].combiner`.
    ///
    /// Claims every published op on `r`, appends the batch (plus an
    /// optional `inline` op from a slotless caller) to the log with one
    /// tail reservation, replays the log through the replica up to at
    /// least the batch end, answers the batched posters and returns the
    /// inline op's response.
    fn combine_locked(
        &self,
        r: usize,
        own_slot: Option<usize>,
        inline: Option<T::WriteOp>,
    ) -> Option<T::Response> {
        let rep = &self.replicas[r];
        let mut idxs: Vec<usize> = Vec::new();
        let mut ops: Vec<T::WriteOp> = Vec::new();
        let bound = rep.registered.load(Ordering::Acquire).min(NR_SLOTS);
        for i in 0..bound {
            let s = &rep.slots[i];
            if s.state.load(Ordering::Relaxed) == PENDING
                && s.state
                    .compare_exchange(PENDING, TAKEN, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: the CAS claimed the cell from the poster (and
                // beat any concurrent retract).
                let op = unsafe { (*s.cell.get()).op.take() };
                idxs.push(i);
                ops.push(op.expect("PENDING slot without an op"));
            }
        }
        let inline_pos_rel = inline.is_some().then_some(ops.len());
        ops.extend(inline);
        let k = ops.len() as u64;
        let mut inline_resp = None;
        if k == 0 {
            // Nothing to append — just bring the replica up to date (the
            // reader catch-up path).
            let t = self.log.tail.load(Ordering::Acquire);
            self.apply_locked(r, t, u64::MAX, &[], None, &mut inline_resp);
            return None;
        }
        let (lo, hi) = self.reserve(r, k);
        for (j, op) in ops.into_iter().enumerate() {
            let pos = lo + j as u64;
            let ls = self.log.slot(pos);
            // SAFETY: position `pos` was reserved to us by the tail CAS
            // and its ring slot is past every replica's applied prefix
            // (the reserve space check), so no replayer is reading it.
            unsafe { *ls.op.get() = Some(op) };
            ls.seq.store(pos + 1, Ordering::Release);
        }
        hook::emit_team(|team, tid| HookEvent::NrAppend {
            team,
            tid,
            nr: self.id,
            lo,
            hi,
        });
        let target = self.log.tail.load(Ordering::Acquire).max(hi);
        let inline_pos = inline_pos_rel.map(|o| lo + o as u64);
        self.apply_locked(r, target, lo, &idxs, inline_pos, &mut inline_resp);
        // Wake the batched posters — after the apply pass recorded its
        // NrSync release edge, so a poster's own sync joins this pass.
        for &i in &idxs {
            rep.slots[i].state.store(DONE, Ordering::Release);
        }
        if obs::metrics_enabled() {
            obs::count(obs::Counter::NrCombines);
            obs::nr_combine_batch((idxs.len() + usize::from(inline_pos.is_some())) as u64);
            for &i in &idxs {
                if Some(i) != own_slot {
                    obs::count(obs::Counter::NrCombinedOps);
                }
            }
        }
        inline_resp
    }

    /// Replay the log into replica `r` up to `target`. Caller holds the
    /// replica's combiner lock. Positions `lo + j` (for `j <
    /// slot_of.len()`) answer slot `slot_of[j]`; `inline_pos` answers
    /// into `inline_resp`; responses of foreign ops are dropped (their
    /// posters are answered by their own replica's combiner).
    fn apply_locked(
        &self,
        r: usize,
        target: u64,
        lo: u64,
        slot_of: &[usize],
        inline_pos: Option<u64>,
        inline_resp: &mut Option<T::Response>,
    ) {
        let rep = &self.replicas[r];
        let from = rep.applied.load(Ordering::Acquire);
        if from >= target {
            return;
        }
        // Cooperative acquisition: a native blocking `write()` would
        // wedge checker explorations (the serialised scheduler may have
        // parked the reader that holds the lock). Never unwinds — the
        // combiner owns claimed ops (`retract` = false).
        let mut data = block_on(|| rep.data.try_write(), || false);
        // Acquire edge for the pass — emitted *after* taking the data
        // write lock, so it also orders this pass after every reader
        // that released the lock (and merged with the replica clock)
        // before us.
        hook::emit_team(|team, tid| HookEvent::NrCombine {
            team,
            tid,
            nr: self.id,
            replica: r,
            lo: from,
            hi: target,
        });
        let mut pos = from;
        while pos < target {
            let ls = self.log.slot(pos);
            // The appender that reserved `pos` fills it with no blocking
            // operation in between, so this wait is always serviceable.
            block_on(
                || (ls.seq.load(Ordering::Acquire) == pos + 1).then_some(()),
                || false,
            );
            // SAFETY: the seq stamp (Acquire) publishes the op, and the
            // slot cannot be reused for `pos + size` until our `applied`
            // (≥ min_applied) passes `pos`.
            let resp = data.dispatch_mut(unsafe {
                (*ls.op.get())
                    .as_ref()
                    .expect("stamped log slot without an op")
            });
            if inline_pos == Some(pos) {
                *inline_resp = Some(resp);
            } else if pos >= lo && ((pos - lo) as usize) < slot_of.len() {
                let si = slot_of[(pos - lo) as usize];
                // SAFETY: slot `si` is TAKEN — the combiner owns its cell.
                unsafe { (*rep.slots[si].cell.get()).resp = Some(resp) };
            }
            pos += 1;
            rep.applied.store(pos, Ordering::Release);
        }
        // Release edge for everything this pass executed; recorded while
        // the write lock still excludes readers.
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: r,
            upto: pos,
        });
        drop(data);
    }

    /// Reserve `k` consecutive log positions, waiting (and helping
    /// laggard replicas) while the ring is full. Caller holds replica
    /// `r`'s combiner lock, so waiting never unwinds — claimed ops must
    /// be delivered.
    fn reserve(&self, r: usize, k: u64) -> (u64, u64) {
        debug_assert!(k <= self.log.size());
        block_on(
            || {
                let t = self.log.tail.load(Ordering::Acquire);
                if t + k <= self.min_applied() + self.log.size() {
                    return self
                        .log
                        .tail
                        .compare_exchange(t, t + k, Ordering::AcqRel, Ordering::Relaxed)
                        .ok()
                        .map(|_| (t, t + k));
                }
                // Ring full: our own replica may be the laggard (we hold
                // its lock, nobody else can advance it), and stalled
                // replicas with no active combiner need a helping hand.
                let mut none = None;
                self.apply_locked(r, t, u64::MAX, &[], None, &mut none);
                self.help(t, r);
                None
            },
            || false,
        )
    }

    fn min_applied(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.applied.load(Ordering::Acquire))
            .min()
            .expect("at least one replica")
    }

    /// Advance every laggard replica whose combiner lock is free to
    /// `target`. `try_lock` only — never blocks holding our own lock.
    fn help(&self, target: u64, me: usize) {
        for (i, rep) in self.replicas.iter().enumerate() {
            if i != me && rep.applied.load(Ordering::Acquire) < target {
                if let Some(_g) = rep.combiner.try_lock() {
                    let mut none = None;
                    self.apply_locked(i, target, u64::MAX, &[], None, &mut none);
                    obs::count(obs::Counter::NrHelps);
                }
            }
        }
    }
}

/// A per-thread posting handle for a [`Replicated`] structure: a fixed
/// `(replica, slot)` assignment, skipping the thread-local lookup of
/// [`Replicated::execute`]. Returns the slot on drop.
pub struct ReplicatedHandle<'a, T: Dispatch> {
    nr: &'a Replicated<T>,
    replica: usize,
    slot: usize,
    /// One slot admits one posting thread: `!Sync` (moving the handle to
    /// another thread is fine, sharing it is not).
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<T: Dispatch> ReplicatedHandle<'_, T> {
    /// The replica this handle posts to.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// [`Replicated::execute`] through this handle's assignment.
    pub fn execute(&self, op: T::WriteOp) -> T::Response {
        self.nr.write_at(self.replica, self.slot, op)
    }

    /// [`Replicated::execute_ro`] through this handle's assignment.
    pub fn execute_ro(&self, op: &T::ReadOp) -> T::Response {
        self.nr.read_at(self.replica, op)
    }
}

impl<T: Dispatch> Drop for ReplicatedHandle<'_, T> {
    fn drop(&mut self) {
        if self.slot != SLOTLESS {
            let rep = &self.nr.replicas[self.replica];
            // Only a quiescent slot is reusable; an in-flight one (the
            // owner unwound mid-protocol) stays retired.
            if rep.slots[self.slot].state.load(Ordering::Acquire) == EMPTY {
                rep.free.lock().push(self.slot);
            }
        }
    }
}

// --------------------------------------------------------------------
// Combiner: untyped flat-combining section lock
// --------------------------------------------------------------------

/// Type-erased pointer to a poster's stack-held task. The combiner
/// dereferences it on another thread; the poster's wait protocol (never
/// unwind while the task is claimable) keeps the frame alive.
struct FcTask {
    run: unsafe fn(*mut ()),
    data: *mut (),
}

// SAFETY: posters guarantee the pointee is safe to run from another
// thread — `Combiner::run` by its `Send` bounds, `run_unchecked` by its
// caller contract.
unsafe impl Send for FcTask {}

struct FcSlot {
    state: AtomicU8,
    task: UnsafeCell<Option<FcTask>>,
}

// SAFETY: `task` ownership follows `state` exactly like [`OpSlot`].
unsafe impl Sync for FcSlot {}

/// Clears [`Combiner::owner`] on drop — including on unwind out of an
/// inline section — so a panicking body never leaves the combiner
/// looking owned by a thread that no longer holds the lock.
struct OwnerReset<'a>(&'a AtomicUsize);

impl Drop for OwnerReset<'_> {
    fn drop(&mut self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

struct TaskData<F, R> {
    f: Option<F>,
    result: Option<std::thread::Result<R>>,
}

/// Run the poster's closure, capturing panics so they unwind on the
/// poster (via `resume_unwind`), never through the combiner.
unsafe fn run_task<F: FnOnce() -> R, R>(p: *mut ()) {
    // SAFETY: `p` is the `TaskData` the poster published and still keeps
    // alive on its stack.
    let d = unsafe { &mut *(p as *mut TaskData<F, R>) };
    let f = d.f.take().expect("replicated section task run twice");
    d.result = Some(catch_unwind(AssertUnwindSafe(f)));
}

/// A flat-combining *section* lock: `run(f)` executes `f` in mutual
/// exclusion with every other section on the same `Combiner`, but under
/// contention one thread (the combiner) executes whole batches of
/// waiters' sections back-to-back while they wait — one lock handoff per
/// batch instead of one per section. A drop-in scalability upgrade for
/// [`critical_named`](crate::critical::critical_named); the weaver's
/// `replicated` mechanism and the `#[replicated]` macro compile to this.
///
/// Section bodies run on the combining thread (see module docs), and —
/// unlike a poster *waiting* at a critical lock — a poster whose section
/// has been claimed cannot be cancelled until it executes.
pub struct Combiner {
    id: usize,
    lock: Mutex<()>,
    /// [`thread_token`] of the thread currently combining (0 = none);
    /// lets a section body re-enter sections on the same `Combiner`
    /// inline, matching re-entrant `@Critical`.
    owner: AtomicUsize,
    /// Sections executed — the log-tail analogue for hook events.
    ops: AtomicU64,
    slots: Box<[FcSlot]>,
    registered: AtomicUsize,
}

thread_local! {
    /// This thread's slot per combiner id (see [`NR_REG`]).
    static FC_REG: RefCell<HashMap<usize, usize>> = RefCell::new(HashMap::new());
}

impl Default for Combiner {
    fn default() -> Self {
        Self::new()
    }
}

impl Combiner {
    /// A fresh, unshared combiner.
    pub fn new() -> Self {
        Self {
            id: next_nr_id(),
            lock: Mutex::new(()),
            owner: AtomicUsize::new(0),
            ops: AtomicU64::new(0),
            slots: (0..NR_SLOTS)
                .map(|_| FcSlot {
                    state: AtomicU8::new(EMPTY),
                    task: UnsafeCell::new(None),
                })
                .collect(),
            registered: AtomicUsize::new(0),
        }
    }

    /// The process-wide combiner named `id` — the replicated analogue of
    /// a named critical lock. Sections with equal names exclude each
    /// other; entries are never removed (names are program structure).
    pub fn named(id: &str) -> Arc<Combiner> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Combiner>>>> = OnceLock::new();
        let mut reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new())).lock();
        if let Some(c) = reg.get(id) {
            return Arc::clone(c);
        }
        let c = Arc::new(Combiner::new());
        reg.insert(id.to_owned(), Arc::clone(&c));
        c
    }

    /// The combiner's process-unique id (the `nr` field of its hook
    /// events). Monotonic, never reused.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Sections executed so far.
    pub fn sections(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// Run `f` in mutual exclusion with all other sections on this
    /// combiner. `f` may execute on another (combining) thread; the
    /// `Send` bounds make that sound. Panics in `f` unwind on the
    /// calling thread. A cancellation point inside a team *until* the
    /// section is claimed by a combiner.
    pub fn run<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        // SAFETY: `F: Send` and `R: Send` — the closure and its result
        // may cross to the combining thread.
        unsafe { self.run_erased(f) }
    }

    /// Run `f` in mutual exclusion with all other sections on this
    /// combiner, *on the calling thread* — no flat combining for this
    /// section, so no `Send` bounds. Other threads' published sections
    /// are batched first while we hold the lock, keeping them from
    /// starving behind inline sections. Used by the weaver for value
    /// join points, whose closures may not be `Send`.
    pub fn run_inline<R>(&self, f: impl FnOnce() -> R) -> R {
        let token = thread_token();
        if self.owner.load(Ordering::Relaxed) == token {
            return f();
        }
        let _g = block_on(|| self.lock.try_lock(), || true);
        self.owner.store(token, Ordering::Relaxed);
        let _reset = OwnerReset(&self.owner);
        self.fc_combine(None);
        let lo = self.ops.load(Ordering::Relaxed);
        hook::emit_team(|team, tid| HookEvent::NrCombine {
            team,
            tid,
            nr: self.id,
            replica: 0,
            lo,
            hi: lo + 1,
        });
        let r = f();
        self.ops.store(lo + 1, Ordering::Release);
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: 0,
            upto: lo + 1,
        });
        r
    }

    /// [`run`](Self::run) without the `Send` bounds.
    ///
    /// # Safety
    ///
    /// `f` (with everything it captures) and its result must be safe to
    /// move to and run on another thread of this process while the
    /// caller blocks — i.e. the caller asserts the `Send` bounds that
    /// [`run`](Self::run) would require. The weaver uses this for woven
    /// section bodies, which are `Fn + Sync` closures run by reference.
    pub unsafe fn run_unchecked<R>(&self, f: impl FnOnce() -> R) -> R {
        unsafe { self.run_erased(f) }
    }

    unsafe fn run_erased<F: FnOnce() -> R, R>(&self, f: F) -> R {
        let token = thread_token();
        if self.owner.load(Ordering::Relaxed) == token {
            // Re-entrant: we *are* the combiner; the lock is ours.
            return f();
        }
        let mut data = TaskData {
            f: Some(f),
            result: None,
        };
        match self.slot_for_thread() {
            None => {
                // Slotless overflow path: plain lock + inline execution.
                let _g = block_on(|| self.lock.try_lock(), || true);
                self.owner.store(token, Ordering::Relaxed);
                let _reset = OwnerReset(&self.owner);
                let lo = self.ops.load(Ordering::Relaxed);
                hook::emit_team(|team, tid| HookEvent::NrCombine {
                    team,
                    tid,
                    nr: self.id,
                    replica: 0,
                    lo,
                    hi: lo + 1,
                });
                // SAFETY: `data` is alive on this very stack frame.
                unsafe { run_task::<F, R>(&mut data as *mut TaskData<F, R> as *mut ()) };
                self.ops.store(lo + 1, Ordering::Release);
                hook::emit_team(|team, tid| HookEvent::NrSync {
                    team,
                    tid,
                    nr: self.id,
                    replica: 0,
                    upto: lo + 1,
                });
            }
            Some(si) => {
                let slot = &self.slots[si];
                // A poster leaves its slot EMPTY on every exit path: a
                // retract empties it, and the no-retract path always
                // consumes the DONE before unwinding.
                debug_assert_eq!(slot.state.load(Ordering::Acquire), EMPTY);
                // SAFETY: EMPTY slot assigned to this thread — we own
                // the cell.
                unsafe {
                    *slot.task.get() = Some(FcTask {
                        run: run_task::<F, R>,
                        data: &mut data as *mut TaskData<F, R> as *mut (),
                    })
                };
                hook::emit_team(|team, tid| {
                    let t = self.ops.load(Ordering::Relaxed);
                    HookEvent::NrAppend {
                        team,
                        tid,
                        nr: self.id,
                        lo: t,
                        hi: t,
                    }
                });
                slot.state.store(PENDING, Ordering::Release);
                block_on(
                    || loop {
                        match slot.state.load(Ordering::Acquire) {
                            DONE => {
                                slot.state.store(EMPTY, Ordering::Release);
                                break Some(());
                            }
                            _ => {
                                if let Some(_g) = self.lock.try_lock() {
                                    self.owner.store(token, Ordering::Relaxed);
                                    let _reset = OwnerReset(&self.owner);
                                    self.fc_combine(Some(si));
                                    // Our own task was in the batch.
                                    continue;
                                }
                                break None;
                            }
                        }
                    },
                    || {
                        // The combiner dereferences our stack frame: we
                        // may unwind only while the task is still ours
                        // to withdraw. Once TAKEN, the active combiner
                        // is committed to finishing it — keep waiting.
                        if slot
                            .state
                            .compare_exchange(PENDING, EMPTY, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            // SAFETY: the CAS re-acquired cell ownership.
                            unsafe { (*slot.task.get()).take() };
                            true
                        } else {
                            false
                        }
                    },
                );
                hook::emit_team(|team, tid| HookEvent::NrSync {
                    team,
                    tid,
                    nr: self.id,
                    replica: 0,
                    upto: self.ops.load(Ordering::Relaxed),
                });
            }
        }
        match data
            .result
            .take()
            .expect("replicated section finished without a result")
        {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// The batching pass. Caller holds `lock` and has set `owner`.
    fn fc_combine(&self, own: Option<usize>) {
        let bound = self
            .registered
            .load(Ordering::Acquire)
            .min(self.slots.len());
        let mut batch: Vec<(usize, FcTask)> = Vec::new();
        for i in 0..bound {
            let s = &self.slots[i];
            if s.state.load(Ordering::Relaxed) == PENDING
                && s.state
                    .compare_exchange(PENDING, TAKEN, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // SAFETY: the CAS claimed the cell from the poster.
                let t = unsafe { (*s.task.get()).take() };
                batch.push((i, t.expect("PENDING fc slot without a task")));
            }
        }
        if batch.is_empty() {
            return;
        }
        let lo = self.ops.load(Ordering::Relaxed);
        let hi = lo + batch.len() as u64;
        hook::emit_team(|team, tid| HookEvent::NrCombine {
            team,
            tid,
            nr: self.id,
            replica: 0,
            lo,
            hi,
        });
        for (_, t) in &batch {
            // SAFETY: the poster is parked until we mark its slot DONE;
            // its stack frame (holding the task state) is pinned, and
            // `run_task` confines panics to the poster.
            unsafe { (t.run)(t.data) };
        }
        self.ops.store(hi, Ordering::Release);
        // Release edge before DONE wake-ups, so every poster's follow-up
        // sync joins this pass (same order as `combine_locked`).
        hook::emit_team(|team, tid| HookEvent::NrSync {
            team,
            tid,
            nr: self.id,
            replica: 0,
            upto: hi,
        });
        for (i, _) in &batch {
            self.slots[*i].state.store(DONE, Ordering::Release);
        }
        if obs::metrics_enabled() {
            obs::count(obs::Counter::NrCombines);
            obs::nr_combine_batch(batch.len() as u64);
            for (i, _) in &batch {
                if Some(*i) != own {
                    obs::count(obs::Counter::NrCombinedOps);
                }
            }
        }
    }

    fn slot_for_thread(&self) -> Option<usize> {
        FC_REG.with(|m| {
            let mut m = m.borrow_mut();
            let e = m.entry(self.id).or_insert_with(|| {
                let i = self.registered.fetch_add(1, Ordering::Relaxed);
                if i < self.slots.len() {
                    i
                } else {
                    SLOTLESS
                }
            });
            (*e != SLOTLESS).then_some(*e)
        })
    }
}

/// Run `f` as a replicated section under the process-wide combiner named
/// `id` — `@Replicated(id = name)`, the flat-combining counterpart of
/// [`critical_named`](crate::critical::critical_named). Call sites that
/// run hot should cache [`Combiner::named`] instead (the `#[replicated]`
/// macro does).
pub fn replicated_named<R: Send>(id: &str, f: impl FnOnce() -> R + Send) -> R {
    Combiner::named(id).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{parallel_with, RegionConfig};

    #[derive(Clone)]
    struct Counter(u64);
    enum CRead {
        Get,
    }
    #[derive(Clone)]
    enum CWrite {
        Add(u64),
    }
    impl Dispatch for Counter {
        type ReadOp = CRead;
        type WriteOp = CWrite;
        type Response = u64;
        fn dispatch(&self, CRead::Get: &CRead) -> u64 {
            self.0
        }
        fn dispatch_mut(&mut self, CWrite::Add(n): &CWrite) -> u64 {
            self.0 += n;
            self.0
        }
    }

    #[test]
    fn sequential_counter_round_trip() {
        let c = Replicated::with_config(Counter(0), 2, 128);
        assert_eq!(c.execute(CWrite::Add(2)), 2);
        assert_eq!(c.execute(CWrite::Add(3)), 5);
        assert_eq!(c.execute_ro(&CRead::Get), 5);
        assert_eq!(c.tail(), 2);
    }

    #[test]
    fn responses_are_distinct_prefix_sums() {
        // fetch-add responses under any linearization are a permutation
        // of the distinct prefix sums 1..=N — the linearizability oracle
        // the checker suite leans on, verified here under real threads.
        let c = Replicated::with_config(Counter(0), 2, 128);
        let threads = 4;
        let per = 100u64;
        let responses = Mutex::new(Vec::new());
        parallel_with(RegionConfig::new().threads(threads), || {
            let h = c.handle();
            let mut mine = Vec::with_capacity(per as usize);
            for _ in 0..per {
                mine.push(h.execute(CWrite::Add(1)));
            }
            responses.lock().extend(mine);
        });
        let mut all = responses.into_inner();
        all.sort_unstable();
        let expect: Vec<u64> = (1..=threads as u64 * per).collect();
        assert_eq!(all, expect, "every prefix sum exactly once");
        assert_eq!(c.execute_ro(&CRead::Get), threads as u64 * per);
    }

    #[test]
    fn reads_observe_a_prefix_at_least_the_tail() {
        let c = Replicated::with_config(Counter(0), 3, 128);
        parallel_with(RegionConfig::new().threads(4), || {
            for i in 0..200 {
                let before = c.tail();
                let v = c.execute_ro(&CRead::Get);
                assert!(
                    v >= before,
                    "read ({v}) behind the tail ({before}) observed before it"
                );
                if i % 3 == 0 {
                    c.execute(CWrite::Add(1));
                }
            }
        });
    }

    #[test]
    fn log_wraparound_with_lagging_replica() {
        // A tiny log plus a replica nobody posts to forces the ring to
        // fill; appenders must help the laggard forward rather than
        // deadlock.
        let c = Replicated::with_config(Counter(0), 2, 128);
        // Pin every poster to replica 0 by registering handles round-robin
        // and keeping only even ones: simpler — single thread, many ops.
        let h = c.handle();
        for _ in 0..10_000 {
            h.execute(CWrite::Add(1));
        }
        assert_eq!(c.execute_ro(&CRead::Get), 10_000);
        assert_eq!(c.tail(), 10_000);
        // The helper advanced the idle replica past the ring boundary.
        for r in 0..c.num_replicas() {
            assert!(
                c.applied(r) + c.log.size() >= c.tail(),
                "replica {r} applied {} vs tail {}",
                c.applied(r),
                c.tail()
            );
        }
    }

    #[test]
    fn handles_recycle_slots() {
        let c = Replicated::with_config(Counter(0), 1, 128);
        for _ in 0..1000 {
            let h = c.handle();
            h.execute(CWrite::Add(1));
        }
        // 1000 handles on 64 slots: without recycling most would be
        // slotless; with it the high-water mark stays tiny.
        assert!(c.replicas[0].registered.load(Ordering::Relaxed) <= 2);
        assert_eq!(c.execute_ro(&CRead::Get), 1000);
    }

    #[test]
    fn read_direct_after_sync_sees_everything() {
        let c = Replicated::with_config(Counter(0), 2, 128);
        parallel_with(RegionConfig::new().threads(4), || {
            let h = c.handle();
            for _ in 0..50 {
                h.execute(CWrite::Add(1));
            }
        });
        c.sync();
        assert_eq!(c.read_direct(|s| s.0), 200);
    }

    #[test]
    fn combiner_serialises_sections() {
        struct Unsync(UnsafeCell<u64>);
        unsafe impl Sync for Unsync {}
        impl Unsync {
            fn bump(&self) {
                // Data race unless callers exclude each other.
                unsafe { *self.0.get() += 1 }
            }
        }
        let counter = Unsync(UnsafeCell::new(0));
        let fc = Combiner::new();
        parallel_with(RegionConfig::new().threads(4), || {
            for _ in 0..1000 {
                fc.run(|| counter.bump());
            }
        });
        assert_eq!(unsafe { *counter.0.get() }, 4000);
        assert_eq!(fc.sections(), 4000);
    }

    #[test]
    fn combiner_returns_values_and_is_reentrant() {
        let fc = Combiner::new();
        let v = fc.run(|| fc.run(|| 41) + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn combiner_panics_unwind_on_the_poster() {
        let fc = Arc::new(Combiner::new());
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fc.run(|| panic!("section panic"));
        }));
        assert!(r.is_err());
        // The combiner survives for later sections.
        assert_eq!(fc.run(|| 7), 7);
    }

    #[test]
    fn named_combiners_are_shared() {
        let a = Combiner::named("nr-test-shared");
        let b = Combiner::named("nr-test-shared");
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), Combiner::named("nr-test-other").id());
    }

    #[test]
    fn nr_ids_are_monotonic_and_never_reused() {
        let first = Replicated::with_config(Counter(0), 1, 128).id();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let c = Replicated::with_config(Counter(0), 1, 128);
            assert!(seen.insert(c.id()), "id {} reused", c.id());
            assert!(c.id() > first);
        }
        // Combiners draw from the same sequence: no collisions either.
        assert!(seen.insert(Combiner::new().id()));
    }
}
