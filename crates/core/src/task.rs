//! `@Task`, `@TaskWait`, `@FutureTask` and `@FutureResult`.
//!
//! The paper's `@Task` "spawns a new parallel activity to execute the
//! annotated method" and can be used inside or outside parallel regions;
//! an additional method acts as the join point between spawning and
//! spawned activity (`@TaskWait`). `@FutureTask` targets methods with a
//! return value: the result object's getter/setter act as synchronisation
//! points (`@FutureResult`).
//!
//! Mapping: [`spawn`] creates a new activity; [`TaskGroup`] is the join
//! point for `@TaskWait`; [`FutureTask`] is the future whose
//! [`get`](FutureTask::get) is the `@FutureResult`-getter
//! synchronisation point, backed by a hand-built one-shot channel.
//!
//! Activities run on the shared work-stealing
//! [`executor`](crate::executor) (parked workers, per-worker deques) —
//! not one OS thread per task as in the paper's literal model. The
//! executor admits a task only when a worker is free or the pool can
//! grow; otherwise the spawn falls back to a dedicated thread, and on
//! thread exhaustion to *inline* execution on the caller (sequential
//! semantics) instead of panicking. `AOMP_NO_POOL=1` /
//! [`runtime::set_pool_enabled(false)`](crate::runtime::set_pool_enabled)
//! restores thread-per-task.
//!
//! Dispatch outcomes are observable: with `AOMP_METRICS` on, the
//! [`obs`](crate::obs) registry counts spawned/pooled/dedicated/inline
//! tasks, steals, admission refusals and executor park cycles
//! ([`obs::Counter::TaskSpawned`](crate::obs::Counter) and friends).
//!
//! Failure semantics: a producer's panic poisons its one-shot cell *with
//! the original payload*, which [`FutureTask::get`] re-raises
//! (`resume_unwind`) and [`FutureTask::try_get`] reports as a value.
//! Called inside a team, [`FutureTask::get`], [`TaskGroup::wait`] and
//! [`TaskGroup::spawn`] are cancellation points, and the two waits
//! register [`WaitSite::FutureGet`] / [`WaitSite::TaskWait`] for the
//! stall watchdog. [`FutureTask::get_timeout`] and
//! [`TaskGroup::wait_timeout`] bound the waits explicitly.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::barrier::PARK_TIMEOUT;
use crate::ctx;
use crate::error::{self, TaskPanicked, WaitSite, WaitTimedOut};
use crate::hook::{self, HookEvent};

/// One-shot rendezvous cell: written once by the producer, consumed once
/// by `get`.
enum ShotState<T> {
    Empty,
    Ready(T),
    Taken,
    /// Producer panicked before publishing; carries the panic payload
    /// when one was captured (a dropped unfulfilled promise has none).
    Poisoned(Option<Box<dyn Any + Send>>),
}

/// How a [`OneShot::take_inner`] ended.
enum TakeOutcome<T> {
    Value(T),
    Failed(Option<Box<dyn Any + Send>>),
    TimedOut(WaitTimedOut),
}

struct OneShot<T> {
    state: Mutex<ShotState<T>>,
    cv: Condvar,
}

impl<T> OneShot<T> {
    fn new() -> Self {
        Self {
            state: Mutex::new(ShotState::Empty),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, v: T) {
        let mut s = self.state.lock();
        debug_assert!(matches!(*s, ShotState::Empty));
        *s = ShotState::Ready(v);
        drop(s);
        self.cv.notify_all();
    }

    fn poison(&self, payload: Option<Box<dyn Any + Send>>) {
        let mut s = self.state.lock();
        if matches!(*s, ShotState::Empty) {
            *s = ShotState::Poisoned(payload);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Consume the cell. `check` runs on every park tick (it aborts by
    /// unwinding — poison/cancel); `park` (the scheduler hook's blocked
    /// callback) is offered each would-be park first; `timeout` bounds
    /// the wait. Both callbacks run with the cell unlocked so they may
    /// block or unwind freely.
    ///
    /// Panics only on double consumption (a programming error).
    fn take_inner(
        &self,
        timeout: Option<Duration>,
        check: &dyn Fn(),
        park: &dyn Fn() -> bool,
    ) -> TakeOutcome<T> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            {
                let mut s = self.state.lock();
                match std::mem::replace(&mut *s, ShotState::Taken) {
                    ShotState::Ready(v) => return TakeOutcome::Value(v),
                    ShotState::Poisoned(p) => return TakeOutcome::Failed(p),
                    ShotState::Taken => panic!("aomp future result consumed twice"),
                    ShotState::Empty => *s = ShotState::Empty,
                }
            }
            check();
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return TakeOutcome::TimedOut(WaitTimedOut {
                        timeout: timeout.unwrap(),
                    });
                }
            }
            if !park() {
                let mut s = self.state.lock();
                if matches!(*s, ShotState::Empty) {
                    self.cv.wait_for(&mut s, PARK_TIMEOUT);
                }
            }
        }
    }

    fn is_ready(&self) -> bool {
        matches!(
            *self.state.lock(),
            ShotState::Ready(_) | ShotState::Poisoned(_)
        )
    }
}

/// Spawn a detached parallel activity executing `f` — `@Task` without a
/// join point. Prefer [`TaskGroup::spawn`] when completion must be
/// awaited.
///
/// The task runs on the calling context's
/// [`Runtime`](crate::runtime::Runtime) — the innermost entered one
/// (inside a region: the region's), else the default runtime — and the
/// task body itself runs *in* that runtime, so regions and tasks it
/// starts inherit it too.
///
/// Never panics on resource exhaustion: with the executor saturated and
/// no thread to be had, `f` runs inline on the caller before `spawn`
/// returns (sequential semantics).
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    spawn_in(&crate::runtime::current(), f)
}

pub(crate) fn spawn_in<F>(rt: &crate::runtime::Runtime, f: F)
where
    F: FnOnce() + Send + 'static,
{
    hook::emit_team(|team, tid| HookEvent::TaskSpawn { team, tid });
    rt.dispatch_task("aomp-task", in_runtime(rt, f));
}

/// Spawn an activity computing a value — `@FutureTask`. The returned
/// [`FutureTask`] is the `@FutureResult` object. Runtime resolution as
/// in [`spawn`].
pub fn spawn_future<T, F>(f: F) -> FutureTask<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    spawn_future_in(&crate::runtime::current(), f)
}

pub(crate) fn spawn_future_in<T, F>(rt: &crate::runtime::Runtime, f: F) -> FutureTask<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    hook::emit_team(|team, tid| HookEvent::TaskSpawn { team, tid });
    let shot = Arc::new(OneShot::new());
    let shot2 = Arc::clone(&shot);
    rt.dispatch_task(
        "aomp-future-task",
        // Capture the panic payload so `get` can re-raise the *original*
        // panic instead of a generic "producer died" message.
        in_runtime(rt, move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => shot2.publish(v),
            Err(p) => shot2.poison(Some(p)),
        }),
    );
    FutureTask { shot }
}

/// Wrap a task body so it executes with `rt` entered: anything the task
/// starts (nested tasks, regions) inherits the spawning context's
/// runtime instead of the default one. Weakly captured — a task that
/// outlives its runtime falls back to the surrounding resolution.
pub(crate) fn in_runtime<F>(rt: &crate::runtime::Runtime, f: F) -> crate::executor::Task
where
    F: FnOnce() + Send + 'static,
{
    let weak = rt.downgrade();
    Box::new(move || {
        let _g = weak.upgrade().map(|rt| rt.enter());
        f()
    })
}

/// Handle to a value being computed by a spawned activity
/// (`@FutureTask`). [`get`](Self::get) blocks until the value is set —
/// the `@FutureResult` getter synchronisation point.
#[derive(Debug)]
pub struct FutureTask<T> {
    shot: Arc<OneShot<T>>,
}

impl<T> std::fmt::Debug for OneShot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match *self.state.lock() {
            ShotState::Empty => "Empty",
            ShotState::Ready(_) => "Ready",
            ShotState::Taken => "Taken",
            ShotState::Poisoned(_) => "Poisoned",
        };
        write!(f, "OneShot({s})")
    }
}

impl<T> FutureTask<T> {
    /// Block until the producing activity publishes the value, then take
    /// it. If the producer panicked, re-raises its original panic
    /// payload. A cancellation point (and a [`WaitSite::FutureGet`] for
    /// the stall watchdog) when called inside a team.
    pub fn get(self) -> T {
        match self.take(None) {
            TakeOutcome::Value(v) => v,
            TakeOutcome::Failed(Some(p)) => resume_unwind(p),
            TakeOutcome::Failed(None) => {
                panic!("aomp future task panicked before producing a result")
            }
            TakeOutcome::TimedOut(_) => unreachable!("unbounded future get cannot time out"),
        }
    }

    /// Non-panicking variant of [`get`](Self::get): a producer panic is
    /// reported as [`TaskPanicked`] (with the payload summarised as a
    /// message) instead of unwinding the consumer.
    pub fn try_get(self) -> Result<T, TaskPanicked> {
        match self.take(None) {
            TakeOutcome::Value(v) => Ok(v),
            TakeOutcome::Failed(p) => Err(TaskPanicked {
                payload_msg: p.map_or_else(
                    || "producer dropped without publishing".to_owned(),
                    |p| error::payload_msg(p.as_ref()),
                ),
            }),
            TakeOutcome::TimedOut(_) => unreachable!("unbounded future get cannot time out"),
        }
    }

    /// Bounded variant of [`get`](Self::get): gives up after `timeout`.
    /// The future is consumed either way — on `Err` the producer's
    /// eventual value is discarded. Producer panics re-raise as in
    /// [`get`](Self::get).
    pub fn get_timeout(self, timeout: Duration) -> Result<T, WaitTimedOut> {
        match self.take(Some(timeout)) {
            TakeOutcome::Value(v) => Ok(v),
            TakeOutcome::Failed(Some(p)) => resume_unwind(p),
            TakeOutcome::Failed(None) => {
                panic!("aomp future task panicked before producing a result")
            }
            TakeOutcome::TimedOut(e) => Err(e),
        }
    }

    /// Deadline form of [`get_timeout`](Self::get_timeout): waits until
    /// the absolute instant `deadline`. An already-expired deadline
    /// still takes a value that is ready right now (one lock-free
    /// check) before reporting [`WaitTimedOut`] — the semantics a
    /// request server wants when propagating a request's time budget
    /// through chained waits.
    pub fn get_by(self, deadline: Instant) -> Result<T, WaitTimedOut> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.get_timeout(remaining)
    }

    fn take(self, timeout: Option<Duration>) -> TakeOutcome<T> {
        ctx::with_current(|c| match c {
            None => self.shot.take_inner(timeout, &|| {}, &|| false),
            Some(c) => {
                let team = c.shared.token();
                let tid = c.tid;
                let r = {
                    let _w = c.shared.begin_wait(tid, WaitSite::FutureGet);
                    self.shot
                        .take_inner(timeout, &|| c.shared.check_interrupt(), &|| {
                            hook::yield_blocked(team, tid, WaitSite::FutureGet)
                        })
                };
                hook::emit(|| HookEvent::TaskJoin {
                    team,
                    tid,
                    site: WaitSite::FutureGet,
                });
                r
            }
        })
    }

    /// True when the value is available (or the producer failed) and
    /// [`get`](Self::get) would not block.
    pub fn is_ready(&self) -> bool {
        self.shot.is_ready()
    }
}

/// A manually-created future: the `@FutureResult` setter/getter pair
/// without a spawning activity. `promise()` gives the setter side.
pub fn future_pair<T: Send>() -> (FuturePromise<T>, FutureTask<T>) {
    let shot = Arc::new(OneShot::new());
    (
        FuturePromise {
            shot: Arc::clone(&shot),
        },
        FutureTask { shot },
    )
}

/// Setter side of a [`future_pair`] — the `@FutureResult` setter
/// synchronisation point.
#[derive(Debug)]
pub struct FuturePromise<T> {
    shot: Arc<OneShot<T>>,
}

impl<T> FuturePromise<T> {
    /// Publish the value, releasing all `get` waiters.
    pub fn set(self, v: T) {
        self.shot.publish(v);
    }
}

impl<T> Drop for FuturePromise<T> {
    fn drop(&mut self) {
        // If set() consumed self, state is Ready/Taken and poison is a
        // no-op; if the promise is dropped unfulfilled, wake getters.
        self.shot.poison(None);
    }
}

/// Inner state of a [`TaskGroup`].
#[derive(Default)]
struct GroupState {
    outstanding: AtomicUsize,
    failed: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A join point between spawning and spawned activities — `@TaskWait`.
///
/// Tasks spawned through the group are counted; [`wait`](Self::wait)
/// blocks until all of them completed and panics if any of them panicked.
#[derive(Clone, Default)]
pub struct TaskGroup {
    state: Arc<GroupState>,
}

impl std::fmt::Debug for TaskGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGroup")
            .field(
                "outstanding",
                &self.state.outstanding.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl TaskGroup {
    /// New, empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawn `f` as a new activity tracked by this group (`@Task` with a
    /// join point). A cancellation point inside a team: once the team is
    /// cancelled no further tasks are spawned.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        ctx::with_current(|c| {
            if let Some(c) = c {
                c.shared.check_interrupt();
            }
        });
        hook::emit_team(|team, tid| HookEvent::TaskSpawn { team, tid });
        let state = Arc::clone(&self.state);
        state.outstanding.fetch_add(1, Ordering::AcqRel);
        let rt = crate::runtime::current();
        rt.dispatch_task(
            "aomp-task",
            in_runtime(&rt, move || {
                let ok = std::panic::catch_unwind(AssertUnwindSafe(f)).is_ok();
                if !ok {
                    state.failed.store(true, Ordering::Release);
                }
                let prev = state.outstanding.fetch_sub(1, Ordering::AcqRel);
                if prev == 1 {
                    let _g = state.lock.lock();
                    drop(_g);
                    state.cv.notify_all();
                }
            }),
        );
    }

    /// Number of not-yet-finished tasks.
    pub fn outstanding(&self) -> usize {
        self.state.outstanding.load(Ordering::Acquire)
    }

    /// Block until every task spawned so far has finished — `@TaskWait`.
    /// Panics if any task panicked. A cancellation point (and a
    /// [`WaitSite::TaskWait`]) when called inside a team.
    pub fn wait(&self) {
        self.wait_inner(None)
            .expect("unbounded task wait cannot time out");
    }

    /// Bounded variant of [`wait`](Self::wait): gives up after `timeout`,
    /// leaving the group intact (tasks keep running; a later
    /// [`wait`](Self::wait) can still join them).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<(), WaitTimedOut> {
        self.wait_inner(Some(timeout))
    }

    /// Deadline form of [`wait_timeout`](Self::wait_timeout): waits
    /// until the absolute instant `deadline`. An expired deadline still
    /// observes a group that is already drained before reporting
    /// [`WaitTimedOut`] — see
    /// [`FutureTask::get_by`](crate::task::FutureTask::get_by).
    pub fn wait_until(&self, deadline: Instant) -> Result<(), WaitTimedOut> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.wait_inner(Some(remaining))
    }

    fn wait_inner(&self, timeout: Option<Duration>) -> Result<(), WaitTimedOut> {
        // Empty group: nothing to join. Return before registering a wait
        // site or consulting the stall watchdog — a no-op join must not
        // look like a blocked member (and must not cost a park). The
        // failed flag is still honoured so a zero-outstanding group whose
        // last task panicked reports it at the next join, as before.
        if self.state.outstanding.load(Ordering::Acquire) == 0 {
            if self.state.failed.swap(false, Ordering::AcqRel) {
                panic!("aomp task group: a task panicked");
            }
            return Ok(());
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        ctx::with_current(|c| {
            let ids = c.map(|c| (c.shared.token(), c.tid));
            {
                let _w = c.map(|c| c.shared.begin_wait(c.tid, WaitSite::TaskWait));
                // Completion is an atomic decrement; the lock is only
                // taken to make the condvar park loss-free (finishing
                // tasks notify under it), so checks and the hook park
                // run with it released.
                loop {
                    if self.state.outstanding.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    if let Some(c) = c {
                        c.shared.check_interrupt();
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Err(WaitTimedOut {
                                timeout: timeout.unwrap(),
                            });
                        }
                    }
                    let hooked = match ids {
                        Some((team, tid)) => hook::yield_blocked(team, tid, WaitSite::TaskWait),
                        None => false,
                    };
                    if !hooked {
                        let mut g = self.state.lock.lock();
                        if self.state.outstanding.load(Ordering::Acquire) != 0 {
                            self.state.cv.wait_for(&mut g, PARK_TIMEOUT);
                        }
                    }
                }
            }
            if self.state.failed.swap(false, Ordering::AcqRel) {
                panic!("aomp task group: a task panicked");
            }
            if let Some((team, tid)) = ids {
                hook::emit(|| HookEvent::TaskJoin {
                    team,
                    tid,
                    site: WaitSite::TaskWait,
                });
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn task_group_waits_for_all() {
        let group = TaskGroup::new();
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..8u64 {
            let sum = Arc::clone(&sum);
            group.spawn(move || {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        group.wait();
        assert_eq!(sum.load(Ordering::SeqCst), (0..8).sum::<u64>());
        assert_eq!(group.outstanding(), 0);
    }

    #[test]
    fn task_group_reusable_after_wait() {
        let group = TaskGroup::new();
        let hits = Arc::new(AtomicU64::new(0));
        for _round in 0..3 {
            for _ in 0..4 {
                let hits = Arc::clone(&hits);
                group.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            group.wait();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn future_task_returns_value() {
        let fut = spawn_future(|| 6 * 7);
        assert_eq!(fut.get(), 42);
    }

    #[test]
    fn future_task_many_producers() {
        let futures: Vec<FutureTask<u64>> =
            (0..10u64).map(|i| spawn_future(move || i * i)).collect();
        let total: u64 = futures.into_iter().map(|f| f.get()).sum();
        assert_eq!(total, (0..10u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn future_pair_set_get() {
        let (promise, fut) = future_pair::<&'static str>();
        let t = std::thread::spawn(move || fut.get());
        promise.set("done");
        assert_eq!(t.join().unwrap(), "done");
    }

    #[test]
    fn future_task_panics_propagate_original_payload() {
        let fut = spawn_future(|| -> u32 { panic!("producer dies: {}", 13) });
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| fut.get()));
        let p = r.expect_err("get must re-raise the producer panic");
        assert_eq!(error::payload_msg(p.as_ref()), "producer dies: 13");
    }

    #[test]
    fn try_get_reports_panic_without_unwinding() {
        let fut = spawn_future(|| -> u32 { panic!("deliberate task failure") });
        match fut.try_get() {
            Err(TaskPanicked { payload_msg }) => {
                assert_eq!(payload_msg, "deliberate task failure");
            }
            Ok(v) => panic!("expected failure, got {v}"),
        }
    }

    #[test]
    fn try_get_returns_value() {
        let fut = spawn_future(|| 11u32);
        assert_eq!(fut.try_get(), Ok(11));
    }

    #[test]
    fn get_timeout_expires_without_producer() {
        let (_promise, fut) = future_pair::<u32>();
        let t0 = Instant::now();
        let r = fut.get_timeout(Duration::from_millis(30));
        assert_eq!(
            r,
            Err(WaitTimedOut {
                timeout: Duration::from_millis(30)
            })
        );
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn get_timeout_returns_value_in_time() {
        let fut = spawn_future(|| 5u8);
        assert_eq!(fut.get_timeout(Duration::from_secs(10)), Ok(5));
    }

    #[test]
    fn dropped_promise_poisons_future() {
        let (promise, fut) = future_pair::<u32>();
        drop(promise);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| fut.get()));
        assert!(r.is_err());
    }

    #[test]
    fn dropped_promise_try_get_is_err() {
        let (promise, fut) = future_pair::<u32>();
        drop(promise);
        let e = fut.try_get().expect_err("unfulfilled promise");
        assert!(e.payload_msg.contains("without publishing"), "{e}");
    }

    #[test]
    fn task_group_wait_panics_if_task_failed() {
        let group = TaskGroup::new();
        group.spawn(|| panic!("task dies"));
        let g2 = group.clone();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| g2.wait()));
        assert!(r.is_err());
        // Group must be reusable after the failure was reported.
        group.spawn(|| {});
        group.wait();
    }

    #[test]
    fn task_group_wait_timeout_leaves_group_intact() {
        let group = TaskGroup::new();
        let release = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&release);
        group.spawn(move || {
            while !r2.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let r = group.wait_timeout(Duration::from_millis(20));
        assert!(r.is_err(), "task still running: wait must time out");
        assert_eq!(group.outstanding(), 1);
        release.store(true, Ordering::Release);
        group.wait();
        assert_eq!(group.outstanding(), 0);
    }

    #[test]
    fn get_by_takes_ready_value_despite_expired_deadline() {
        let (promise, fut) = future_pair::<u8>();
        promise.set(9);
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(fut.get_by(past), Ok(9));
    }

    #[test]
    fn get_by_times_out_without_producer() {
        let (_promise, fut) = future_pair::<u8>();
        let r = fut.get_by(Instant::now() + Duration::from_millis(20));
        assert!(r.is_err());
    }

    #[test]
    fn wait_until_on_drained_group_is_ok_despite_expired_deadline() {
        let group = TaskGroup::new();
        group.spawn(|| {});
        group.wait();
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(group.wait_until(past), Ok(()));
    }

    #[test]
    fn is_ready_transitions() {
        let (promise, fut) = future_pair::<u8>();
        assert!(!fut.is_ready());
        promise.set(1);
        assert!(fut.is_ready());
        assert_eq!(fut.get(), 1);
    }

    #[test]
    fn empty_group_wait_skips_wait_site_and_watchdog() {
        // A watched team's progress counter bumps on every wait-site
        // entry/exit: joining an empty group must leave it untouched
        // (no registration, no watchdog consult) on all three wait
        // surfaces.
        let group = TaskGroup::new();
        let shared = Arc::new(crate::ctx::TeamShared::with_robustness(1, 1, false, true));
        let _g = crate::ctx::CtxGuard::enter(Arc::clone(&shared), 0);
        let p0 = shared.progress();
        group.wait();
        assert_eq!(group.wait_timeout(Duration::from_millis(5)), Ok(()));
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(group.wait_until(past), Ok(()));
        assert_eq!(
            shared.progress(),
            p0,
            "empty join must not register a wait site"
        );
        assert!(shared.blocked_snapshot().is_empty());
    }

    #[test]
    fn detached_spawn_runs() {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        spawn(move || {
            f2.store(7, Ordering::SeqCst);
        });
        while flag.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }
}
