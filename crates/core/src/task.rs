//! `@Task`, `@TaskWait`, `@FutureTask` and `@FutureResult`.
//!
//! The paper's `@Task` "spawns a new parallel activity to execute the
//! annotated method" and can be used inside or outside parallel regions;
//! an additional method acts as the join point between spawning and
//! spawned activity (`@TaskWait`). `@FutureTask` targets methods with a
//! return value: the result object's getter/setter act as synchronisation
//! points (`@FutureResult`).
//!
//! Mapping: [`spawn`] creates a new activity (a thread, literally the
//! paper's model); [`TaskGroup`] is the join point for `@TaskWait`;
//! [`FutureTask`] is the future whose [`get`](FutureTask::get) is the
//! `@FutureResult`-getter synchronisation point, backed by a hand-built
//! one-shot channel.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One-shot rendezvous cell: written once by the producer, consumed once
/// by `get`.
enum ShotState<T> {
    Empty,
    Ready(T),
    Taken,
    /// Producer panicked before publishing.
    Poisoned,
}

struct OneShot<T> {
    state: Mutex<ShotState<T>>,
    cv: Condvar,
}

impl<T> OneShot<T> {
    fn new() -> Self {
        Self { state: Mutex::new(ShotState::Empty), cv: Condvar::new() }
    }

    fn publish(&self, v: T) {
        let mut s = self.state.lock();
        debug_assert!(matches!(*s, ShotState::Empty));
        *s = ShotState::Ready(v);
        drop(s);
        self.cv.notify_all();
    }

    fn poison(&self) {
        let mut s = self.state.lock();
        if matches!(*s, ShotState::Empty) {
            *s = ShotState::Poisoned;
        }
        drop(s);
        self.cv.notify_all();
    }

    fn take(&self) -> T {
        let mut s = self.state.lock();
        loop {
            match std::mem::replace(&mut *s, ShotState::Taken) {
                ShotState::Ready(v) => return v,
                ShotState::Empty => {
                    *s = ShotState::Empty;
                    self.cv.wait(&mut s);
                }
                ShotState::Poisoned => panic!("aomp future task panicked before producing a result"),
                ShotState::Taken => panic!("aomp future result consumed twice"),
            }
        }
    }

    fn is_ready(&self) -> bool {
        matches!(*self.state.lock(), ShotState::Ready(_) | ShotState::Poisoned)
    }
}

/// Spawn a detached parallel activity executing `f` — `@Task` without a
/// join point. Prefer [`TaskGroup::spawn`] when completion must be
/// awaited.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name("aomp-task".into())
        .spawn(f)
        .expect("failed to spawn aomp task");
}

/// Spawn an activity computing a value — `@FutureTask`. The returned
/// [`FutureTask`] is the `@FutureResult` object.
pub fn spawn_future<T, F>(f: F) -> FutureTask<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let shot = Arc::new(OneShot::new());
    let shot2 = Arc::clone(&shot);
    std::thread::Builder::new()
        .name("aomp-future-task".into())
        .spawn(move || {
            // Poison the cell if `f` unwinds so `get` fails loudly instead
            // of blocking forever.
            struct Guard<T>(Arc<OneShot<T>>, bool);
            impl<T> Drop for Guard<T> {
                fn drop(&mut self) {
                    if !self.1 {
                        self.0.poison();
                    }
                }
            }
            let mut guard = Guard(shot2, false);
            let v = f();
            guard.0.publish(v);
            guard.1 = true;
        })
        .expect("failed to spawn aomp future task");
    FutureTask { shot }
}

/// Handle to a value being computed by a spawned activity
/// (`@FutureTask`). [`get`](Self::get) blocks until the value is set —
/// the `@FutureResult` getter synchronisation point.
#[derive(Debug)]
pub struct FutureTask<T> {
    shot: Arc<OneShot<T>>,
}

impl<T> std::fmt::Debug for OneShot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match *self.state.lock() {
            ShotState::Empty => "Empty",
            ShotState::Ready(_) => "Ready",
            ShotState::Taken => "Taken",
            ShotState::Poisoned => "Poisoned",
        };
        write!(f, "OneShot({s})")
    }
}

impl<T> FutureTask<T> {
    /// Block until the producing activity publishes the value, then take
    /// it. Panics if the producer panicked.
    pub fn get(self) -> T {
        self.shot.take()
    }

    /// True when the value is available (or the producer failed) and
    /// [`get`](Self::get) would not block.
    pub fn is_ready(&self) -> bool {
        self.shot.is_ready()
    }
}

/// A manually-created future: the `@FutureResult` setter/getter pair
/// without a spawning activity. `promise()` gives the setter side.
pub fn future_pair<T: Send>() -> (FuturePromise<T>, FutureTask<T>) {
    let shot = Arc::new(OneShot::new());
    (FuturePromise { shot: Arc::clone(&shot) }, FutureTask { shot })
}

/// Setter side of a [`future_pair`] — the `@FutureResult` setter
/// synchronisation point.
#[derive(Debug)]
pub struct FuturePromise<T> {
    shot: Arc<OneShot<T>>,
}

impl<T> FuturePromise<T> {
    /// Publish the value, releasing all `get` waiters.
    pub fn set(self, v: T) {
        self.shot.publish(v);
    }
}

impl<T> Drop for FuturePromise<T> {
    fn drop(&mut self) {
        // If set() consumed self, state is Ready/Taken and poison is a
        // no-op; if the promise is dropped unfulfilled, wake getters.
        self.shot.poison();
    }
}

/// Inner state of a [`TaskGroup`].
#[derive(Default)]
struct GroupState {
    outstanding: AtomicUsize,
    failed: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A join point between spawning and spawned activities — `@TaskWait`.
///
/// Tasks spawned through the group are counted; [`wait`](Self::wait)
/// blocks until all of them completed and panics if any of them panicked.
#[derive(Clone, Default)]
pub struct TaskGroup {
    state: Arc<GroupState>,
}

impl std::fmt::Debug for TaskGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGroup")
            .field("outstanding", &self.state.outstanding.load(Ordering::Relaxed))
            .finish()
    }
}

impl TaskGroup {
    /// New, empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawn `f` as a new activity tracked by this group (`@Task` with a
    /// join point).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let state = Arc::clone(&self.state);
        state.outstanding.fetch_add(1, Ordering::AcqRel);
        std::thread::Builder::new()
            .name("aomp-task".into())
            .spawn(move || {
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_ok();
                if !ok {
                    state.failed.store(true, Ordering::Release);
                }
                let prev = state.outstanding.fetch_sub(1, Ordering::AcqRel);
                if prev == 1 {
                    let _g = state.lock.lock();
                    drop(_g);
                    state.cv.notify_all();
                }
            })
            .expect("failed to spawn aomp task");
    }

    /// Number of not-yet-finished tasks.
    pub fn outstanding(&self) -> usize {
        self.state.outstanding.load(Ordering::Acquire)
    }

    /// Block until every task spawned so far has finished — `@TaskWait`.
    /// Panics if any task panicked.
    pub fn wait(&self) {
        let mut g = self.state.lock.lock();
        while self.state.outstanding.load(Ordering::Acquire) != 0 {
            self.state.cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        }
        drop(g);
        if self.state.failed.swap(false, Ordering::AcqRel) {
            panic!("aomp task group: a task panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn task_group_waits_for_all() {
        let group = TaskGroup::new();
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..8u64 {
            let sum = Arc::clone(&sum);
            group.spawn(move || {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        group.wait();
        assert_eq!(sum.load(Ordering::SeqCst), (0..8).sum::<u64>());
        assert_eq!(group.outstanding(), 0);
    }

    #[test]
    fn task_group_reusable_after_wait() {
        let group = TaskGroup::new();
        let hits = Arc::new(AtomicU64::new(0));
        for _round in 0..3 {
            for _ in 0..4 {
                let hits = Arc::clone(&hits);
                group.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            group.wait();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn future_task_returns_value() {
        let fut = spawn_future(|| 6 * 7);
        assert_eq!(fut.get(), 42);
    }

    #[test]
    fn future_task_many_producers() {
        let futures: Vec<FutureTask<u64>> = (0..10u64).map(|i| spawn_future(move || i * i)).collect();
        let total: u64 = futures.into_iter().map(|f| f.get()).sum();
        assert_eq!(total, (0..10u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn future_pair_set_get() {
        let (promise, fut) = future_pair::<&'static str>();
        let t = std::thread::spawn(move || fut.get());
        promise.set("done");
        assert_eq!(t.join().unwrap(), "done");
    }

    #[test]
    fn future_task_panics_propagate_to_get() {
        let fut = spawn_future(|| -> u32 { panic!("producer dies") });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.get()));
        assert!(r.is_err());
    }

    #[test]
    fn dropped_promise_poisons_future() {
        let (promise, fut) = future_pair::<u32>();
        drop(promise);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.get()));
        assert!(r.is_err());
    }

    #[test]
    fn task_group_wait_panics_if_task_failed() {
        let group = TaskGroup::new();
        group.spawn(|| panic!("task dies"));
        let g2 = group.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g2.wait()));
        assert!(r.is_err());
        // Group must be reusable after the failure was reported.
        group.spawn(|| {});
        group.wait();
    }

    #[test]
    fn is_ready_transitions() {
        let (promise, fut) = future_pair::<u8>();
        assert!(!fut.is_ready());
        promise.set(1);
        assert!(fut.is_ready());
        assert_eq!(fut.get(), 1);
    }

    #[test]
    fn detached_spawn_runs() {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        spawn(move || {
            f2.store(7, Ordering::SeqCst);
        });
        while flag.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }
}
