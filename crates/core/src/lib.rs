//! # aomp — an OpenMP-mimic runtime for Rust
//!
//! This crate is the execution-model substrate of the AOmpLib reproduction
//! (Medeiros & Sobral, *AOmpLib: An Aspect Library for Large-Scale
//! Multi-Core Parallel Programming*, ICPP 2013).
//!
//! The paper's execution model is OpenMP's, bound to *method executions*:
//!
//! * **Parallel regions** ([`region::parallel`]) — the master thread creates
//!   a team of threads; every thread in the team executes the region body
//!   and implicitly joins at the end.
//! * **Work sharing** ([`workshare::ForConstruct`]) — *for methods* expose a
//!   loop's iteration space as `(start, end, step)` parameters; the
//!   construct rewrites the range per thread according to a
//!   [`schedule::Schedule`] (static by blocks, static cyclic, dynamic, or
//!   the guided extension).
//! * **Synchronisation** — team [`barrier`]s, named [`critical`] sections
//!   whose scope is *all* threads in the process (as in the paper),
//!   [`sync::Single`] / [`sync::Master`] constructs with result broadcast,
//!   readers/writer constructs, and [`workshare::Ordered`] sections.
//! * **Tasks** ([`task`]) — `@Task`-style spawned activities, `@TaskWait`
//!   groups and `@FutureTask`/`@FutureResult` futures backed by a one-shot
//!   channel.
//! * **Data sharing** ([`threadlocal`]) — `@ThreadLocalField` per-thread
//!   copies with the paper's read-initialisation rule and `@Reduce` merge
//!   points via the [`threadlocal::Reducer`] trait.
//! * **Observability** ([`obs`]) — opt-in runtime counters, latency
//!   histograms and chrome://tracing export (`AOMP_METRICS=1`,
//!   `AOMP_TRACE=out.json`), one relaxed atomic load per site when off.
//! * **Robustness** ([`error`], [`region::try_parallel`]) — panic
//!   poisoning, OpenMP 4.0-style team cancellation
//!   ([`ctx::cancel_team`] / [`ctx::cancellation_point`]), bounded waits,
//!   and a stall watchdog
//!   ([`RegionConfig::stall_deadline`](region::RegionConfig::stall_deadline))
//!   that converts deadlocks and hung workers into
//!   [`RegionError::Stalled`](error::RegionError) diagnoses.
//! * **Runtime instances** ([`Runtime`]) — every process-global above
//!   (defaults, kill switches, hot-team cache, task executor, counters)
//!   lives on an instantiable handle; the free functions are wrappers
//!   over a lazily-built default runtime, and [`Runtime::builder`] gives
//!   isolated runtimes that coexist without sharing workers or state and
//!   tear down (joining their threads) on drop.
//!
//! Sequential semantics are intrinsic: every construct degrades to plain
//! sequential execution when no team is active, so a program whose
//! parallelism modules are unplugged (see the `aomp-weaver` crate) is a
//! valid sequential program — the property the paper calls *sequential
//! semantics / incremental development*.
//!
//! ## Quick start
//!
//! ```
//! use aomp::prelude::*;
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! let sum = AtomicI64::new(0);
//! let for_c = ForConstruct::new(Schedule::StaticBlock);
//! region::parallel_with(RegionConfig::new().threads(4), || {
//!     // A "for method": first three parameters are (start, end, step).
//!     for_c.execute(LoopRange::new(0, 100, 1), |lo, hi, step| {
//!         let mut local = 0;
//!         let mut i = lo;
//!         while i < hi {
//!             local += i;
//!             i += step;
//!         }
//!         sum.fetch_add(local, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<i64>());
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod cell;
pub mod check;
pub mod clock;
pub mod critical;
pub mod ctx;
pub mod deps;
pub mod error;
pub(crate) mod executor;
pub mod hook;
pub mod nr;
pub mod obs;
pub mod pool;
pub mod range;
pub mod reduction;
pub mod region;
pub mod runtime;
pub mod schedule;
pub mod sync;
pub mod task;
pub mod threadlocal;
pub mod workshare;

pub use crate::runtime::{Runtime, RuntimeBuilder, RuntimeGuard};

/// Convenient glob import for typical AOmpLib-style programs.
pub mod prelude {
    pub use crate::critical::{critical, critical_named, CriticalHandle};
    pub use crate::ctx::{
        barrier, cancel_team, cancellation_point, in_parallel, team_size, thread_id,
    };
    pub use crate::deps::{Dep, DepError, DepGroup, DepMode, Tag, TaskNode, TaskloopConstruct};
    pub use crate::error::{Cancelled, RegionError, TaskPanicked, WaitSite, WaitTimedOut};
    pub use crate::nr::{replicated_named, Combiner, Dispatch, Replicated, ReplicatedHandle};
    pub use crate::pool::TeamPool;
    pub use crate::range::LoopRange;
    pub use crate::reduction::{
        FnReducer, MaxReducer, MinReducer, ProdReducer, SumReducer, VecSumReducer,
    };
    pub use crate::region::{self, RegionConfig};
    pub use crate::runtime::{self, Runtime};
    pub use crate::schedule::Schedule;
    pub use crate::sync::{Master, RwConstruct, Single};
    pub use crate::task::{self, FutureTask, TaskGroup};
    pub use crate::threadlocal::{Reducer, ThreadLocalField};
    pub use crate::workshare::{ForConstruct, Ordered};
}
