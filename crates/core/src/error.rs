//! Error, cancellation and panic-propagation support for teams.
//!
//! A parallel region joins all spawned threads before returning. Three
//! failure paths are handled:
//!
//! * **Panic-poisoning** — if any team thread panics, the team is
//!   *poisoned* so siblings blocked in team-wide synchronisation
//!   (barriers, single/master broadcasts, ordered sections) unblock
//!   promptly instead of deadlocking, and the panic is re-raised on the
//!   caller of the region (or reported as [`RegionError::Panicked`] by
//!   the fallible API).
//! * **Cancellation** — the OpenMP 4.0 `cancel` model: any member of a
//!   [cancellable](crate::region::RegionConfig::cancellable) team can
//!   request team cancellation ([`cancel_team`](crate::ctx::cancel_team));
//!   siblings observe it at every cancellation point (barrier entry,
//!   chunk handout, critical entry, broadcasts, task joins) and skip to
//!   the end of the region.
//! * **Stall detection** — a watchdog armed by
//!   [`RegionConfig::stall_deadline`](crate::region::RegionConfig::stall_deadline)
//!   cancels a team that stops making progress while members sit blocked
//!   at wait sites, converting a would-be deadlock into
//!   [`RegionError::Stalled`].

use std::fmt;
use std::time::Duration;

/// Raised (via `panic!`) inside team synchronisation primitives when a
/// sibling thread of the same team has panicked.
///
/// This keeps a panicking region from deadlocking: blocked siblings are
/// woken, observe the poison flag and unwind too; the region join then
/// propagates the original panic to the caller of
/// [`region::parallel`](crate::region::parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPoisoned;

impl fmt::Display for TeamPoisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aomp team poisoned: a sibling thread panicked inside the parallel region"
        )
    }
}

impl std::error::Error for TeamPoisoned {}

/// The team was cancelled (OpenMP 4.0 `cancel parallel`).
///
/// Returned by [`cancellation_point`](crate::ctx::cancellation_point) so
/// user code can short-circuit with `?`, and used as the (benign) unwind
/// payload when a blocking primitive observes the cancel flag. A
/// `Cancelled` unwind is *not* a failure: the fallible region API maps it
/// to [`RegionError::Cancelled`], and the panicking API swallows it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aomp team cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Which blocking construct a thread was parked in when a stall was
/// declared — the per-thread diagnosis inside
/// [`RegionError::Stalled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaitSite {
    /// Team barrier entry (explicit `barrier()` or a schedule's implicit
    /// trailing barrier).
    Barrier,
    /// Entry to a `@Critical` lock.
    Critical,
    /// Waiting for a `@Single` body's broadcast value.
    SingleBroadcast,
    /// Waiting for the `@Master` body's broadcast value.
    MasterBroadcast,
    /// Waiting for an `@Ordered` section's turn.
    Ordered,
    /// `TaskGroup::wait` (`@TaskWait`).
    TaskWait,
    /// Waiting on a replicated structure ([`nr`](crate::nr)): for a
    /// flat-combining slot to be executed, for the combiner lock, or for
    /// operation-log space while a lagging replica catches up.
    Replicated,
    /// `FutureTask::get` (`@FutureResult` getter).
    FutureGet,
    /// The master joining its workers at the region end — registered so
    /// the stall watchdog can adjudicate a stall in which no member is
    /// parked in a library primitive (e.g. every sibling either exited
    /// or is wedged in user code).
    Join,
}

impl fmt::Display for WaitSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WaitSite::Barrier => "barrier",
            WaitSite::Critical => "critical",
            WaitSite::SingleBroadcast => "single-broadcast",
            WaitSite::MasterBroadcast => "master-broadcast",
            WaitSite::Ordered => "ordered",
            WaitSite::TaskWait => "task-wait",
            WaitSite::Replicated => "replicated",
            WaitSite::FutureGet => "future-get",
            WaitSite::Join => "region-join",
        };
        f.write_str(s)
    }
}

/// How a fallible parallel region ([`region::try_parallel`](crate::region::try_parallel))
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegionError {
    /// A team thread panicked; the region was poisoned and joined. The
    /// original payload is summarised as a message (string payloads are
    /// kept verbatim).
    Panicked {
        /// Message extracted from the panic payload.
        payload_msg: String,
    },
    /// The team was cancelled via [`cancel_team`](crate::ctx::cancel_team)
    /// and every member reached a cancellation point or the region end.
    Cancelled,
    /// The stall watchdog declared the region stuck: no team-wide
    /// progress for at least the configured
    /// [`stall_deadline`](crate::region::RegionConfig::stall_deadline)
    /// while members sat blocked at synchronisation wait sites.
    Stalled {
        /// `(thread id, wait site)` for every member that was blocked in
        /// a team synchronisation primitive when the stall was declared.
        /// Members stuck in user code (e.g. an unbounded sleep) cannot be
        /// named — their absence from this list is itself the hint.
        blocked: Vec<(usize, WaitSite)>,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Panicked { payload_msg } => {
                write!(f, "parallel region panicked: {payload_msg}")
            }
            RegionError::Cancelled => write!(f, "parallel region cancelled"),
            RegionError::Stalled { blocked } => {
                write!(f, "parallel region stalled; blocked threads: [")?;
                for (i, (tid, site)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{tid}@{site}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Extract a human-readable message from a panic payload (`&str` and
/// `String` payloads verbatim, known library payloads by Display).
pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if payload.downcast_ref::<TeamPoisoned>().is_some() {
        TeamPoisoned.to_string()
    } else if payload.downcast_ref::<Cancelled>().is_some() {
        Cancelled.to_string()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Panic with [`TeamPoisoned`]; used by primitives when they observe the
/// team poison flag.
#[cold]
pub(crate) fn poisoned() -> ! {
    std::panic::panic_any(TeamPoisoned)
}

/// Panic with [`Cancelled`]; used by primitives when they observe the
/// team cancel flag. The region executor treats this unwind as a benign
/// early exit, not a failure.
#[cold]
pub(crate) fn cancelled() -> ! {
    std::panic::panic_any(Cancelled)
}

/// A spawned task's producer panicked — returned by
/// [`FutureTask::try_get`](crate::task::FutureTask::try_get) instead of
/// re-raising the panic on the consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanicked {
    /// Message extracted from the producer's panic payload (or a note
    /// that the promise was dropped unfulfilled).
    pub payload_msg: String,
}

impl fmt::Display for TaskPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aomp future task failed: {}", self.payload_msg)
    }
}

impl std::error::Error for TaskPanicked {}

/// A timeout expired before the awaited event happened. Returned by the
/// bounded-wait variants ([`FutureTask::get_timeout`](crate::task::FutureTask::get_timeout),
/// [`TaskGroup::wait_timeout`](crate::task::TaskGroup::wait_timeout),
/// [`SenseBarrier::wait_timeout`](crate::barrier::SenseBarrier::wait_timeout)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimedOut {
    /// The timeout that expired.
    pub timeout: Duration,
}

impl fmt::Display for WaitTimedOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aomp bounded wait timed out after {:?}", self.timeout)
    }
}

impl std::error::Error for WaitTimedOut {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalled_display_names_threads_and_sites() {
        let e = RegionError::Stalled {
            blocked: vec![(1, WaitSite::Barrier), (3, WaitSite::Critical)],
        };
        let s = e.to_string();
        assert!(s.contains("t1@barrier"), "{s}");
        assert!(s.contains("t3@critical"), "{s}");
    }

    #[test]
    fn payload_msg_extracts_strings() {
        assert_eq!(payload_msg(&"boom"), "boom");
        assert_eq!(payload_msg(&"boom".to_string()), "boom");
        assert_eq!(payload_msg(&12345u32), "non-string panic payload");
        assert!(payload_msg(&TeamPoisoned).contains("poisoned"));
    }
}
