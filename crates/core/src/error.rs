//! Error and panic-propagation support for teams.
//!
//! A parallel region joins all spawned threads before returning; if any
//! team thread panics, the team is *poisoned* so that siblings blocked in
//! team-wide synchronisation (barriers, single/master broadcasts, ordered
//! sections) unblock promptly instead of deadlocking, and the panic is
//! re-raised on the master after the join.

use std::fmt;

/// Raised (via `panic!`) inside team synchronisation primitives when a
/// sibling thread of the same team has panicked.
///
/// This keeps a panicking region from deadlocking: blocked siblings are
/// woken, observe the poison flag and unwind too; `std::thread::scope`
/// then propagates the original panic to the caller of
/// [`region::parallel`](crate::region::parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPoisoned;

impl fmt::Display for TeamPoisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aomp team poisoned: a sibling thread panicked inside the parallel region")
    }
}

impl std::error::Error for TeamPoisoned {}

/// Panic with [`TeamPoisoned`]; used by primitives when they observe the
/// team poison flag.
#[cold]
pub(crate) fn poisoned() -> ! {
    std::panic::panic_any(TeamPoisoned)
}
