//! Scheduler hook layer: the test-only instrumentation surface that the
//! deterministic schedule-exploration harness (`aomp-check`) plugs into.
//!
//! Every scheduling decision the runtime owns — barrier entry/exit,
//! critical acquire/release, chunk handout in every schedule, single and
//! master broadcast publishes, ordered-section turns, task spawn/join,
//! cancellation points and wait-site registration — reports through this
//! module when (and only when) a [`SchedHook`] is registered.
//!
//! # Zero cost when unregistered
//!
//! The fast path is a single relaxed atomic load plus a predictable
//! branch ([`active`]), and every call site already sits on a slow path
//! (a blocking primitive, a chunk dispenser, a region spawn). Release
//! builds with no hook registered pay one cold branch per decision site;
//! `overhead_fig13` guards that this stays inside the noise floor.
//!
//! # Contract for hook implementations
//!
//! * [`SchedHook::event`] is called *outside* all runtime locks: a hook
//!   may block the calling thread (that is how the checker serialises a
//!   team) without deadlocking the runtime.
//! * [`SchedHook::blocked`] is consulted by bounded wait loops *instead
//!   of* a timed park, again with no runtime lock held. Returning `true`
//!   means the hook parked the thread itself and the caller should
//!   re-check its wake condition immediately; returning `false` falls
//!   back to the normal bounded park.
//! * Hooks must never panic from [`SchedHook::event`]: events are also
//!   emitted while a thread unwinds (member exit), where a second panic
//!   would abort the process.
//!
//! # Scope across runtime instances
//!
//! The registry is deliberately *process-global*, not per
//! [`Runtime`](crate::Runtime): a registered hook observes decisions
//! from every runtime instance in the process. The checker wants exactly
//! that (nothing escapes observation), and it serialises explorations
//! behind a session lock while pinning each one to a private runtime, so
//! per-runtime attribution is never needed here.

use parking_lot::Mutex;

use crate::error::WaitSite;
use crate::obs;

/// Opaque identity of one team (one parallel-region execution). Stable
/// for the lifetime of the region; ids may be reused by later teams.
pub type TeamId = usize;

/// One scheduling decision site, as observed by a registered
/// [`SchedHook`]. All payloads are `Copy` so recording a trace never
/// allocates per event on the runtime side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HookEvent {
    /// A parallel region is about to execute (emitted on the master
    /// thread, before any member starts).
    RegionStart {
        /// Team identity.
        team: TeamId,
        /// Team size after resolving the configuration.
        size: usize,
        /// Nesting level (1 = top-level region).
        level: usize,
    },
    /// The region completed (all members joined; emitted on the master).
    RegionEnd {
        /// Team identity.
        team: TeamId,
    },
    /// A member thread entered the team context.
    MemberStart {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
    },
    /// A member thread left the team context (normal exit *or* unwind).
    MemberEnd {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
    },
    /// A member returned from a team barrier round.
    BarrierExit {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Whether this member was the round's last arriver.
        leader: bool,
    },
    /// A member acquired a critical lock.
    CriticalAcquire {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Identity of the lock (stable per lock object).
        lock: usize,
    },
    /// A member released a critical lock.
    CriticalRelease {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Identity of the lock (stable per lock object).
        lock: usize,
    },
    /// A work-sharing construct handed a chunk of iterations to a member.
    ChunkHandout {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Schedule kind (`"static-block"`, `"static-cyclic"`,
        /// `"dynamic"`, `"guided"`, `"block-cyclic"`).
        kind: &'static str,
        /// Chunk start: a logical iteration number in `0..count`, for
        /// every schedule kind (element values are recovered with
        /// [`LoopRange::element`](crate::range::LoopRange::element)).
        /// `static-cyclic` assignments are non-contiguous, so that kind
        /// emits one single-iteration handout (`hi == lo + 1`) per
        /// assigned iteration.
        lo: u64,
        /// Chunk end (exclusive), same iteration-number coordinates as
        /// `lo`. The handouts of one work-sharing loop partition
        /// `0..count`: each iteration appears in exactly one chunk.
        hi: u64,
    },
    /// A single/master body published its broadcast value.
    BroadcastPublish {
        /// Team identity.
        team: TeamId,
        /// Member id of the publishing thread.
        tid: usize,
        /// Which broadcast ([`WaitSite::SingleBroadcast`] or
        /// [`WaitSite::MasterBroadcast`]).
        site: WaitSite,
    },
    /// A member returned from waiting on a single/master broadcast with
    /// the published value in hand. Together with
    /// [`BroadcastPublish`](Self::BroadcastPublish) this is the
    /// publisher→reader happens-before edge the race detector needs: the
    /// receiver is ordered after the publish, other members are not.
    BroadcastReceive {
        /// Team identity.
        team: TeamId,
        /// Member id of the receiving thread.
        tid: usize,
        /// Which broadcast ([`WaitSite::SingleBroadcast`] or
        /// [`WaitSite::MasterBroadcast`]).
        site: WaitSite,
    },
    /// A member won its ordered-section turn and is about to run it.
    OrderedEnter {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// The ordered ticket (logical iteration number).
        ticket: u64,
    },
    /// A member finished an ordered section, releasing the next ticket.
    OrderedExit {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// The ordered ticket (logical iteration number).
        ticket: u64,
    },
    /// A task was spawned from inside a team (`@Task` / `@FutureTask`).
    TaskSpawn {
        /// Team identity.
        team: TeamId,
        /// Member id of the spawning thread.
        tid: usize,
    },
    /// A member completed a task join (`TaskGroup::wait` or
    /// `FutureTask::get`).
    TaskJoin {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Which join ([`WaitSite::TaskWait`] or [`WaitSite::FutureGet`]).
        site: WaitSite,
    },
    /// A member *released* toward dependence node `node`
    /// ([`deps`](crate::deps)): the spawner publishing a freshly created
    /// task, a completing task satisfying one successor's dependence, or
    /// a completing task signalling its group's join sink. The release
    /// half of the per-dependence happens-before edge — everything the
    /// releasing member did so far is ordered before whoever becomes
    /// ready through `node`.
    TaskDepRelease {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Process-unique dependence-node identity (a task node or a
        /// group's join sink).
        node: usize,
    },
    /// A member *acquired* dependence node `node`: a runner about to
    /// execute a task whose dependences are all satisfied, or a joiner
    /// returning from a group wait through the join sink. The acquire
    /// half — the member is ordered after every
    /// [`TaskDepRelease`](Self::TaskDepRelease) previously published
    /// toward the same node, and after nothing else (no conservative
    /// whole-group spawn→join edge).
    TaskDepReady {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Process-unique dependence-node identity.
        node: usize,
    },
    /// A member requested team cancellation (`cancel_team` succeeded).
    CancelRequested {
        /// Team identity.
        team: TeamId,
        /// Member id of the requesting thread.
        tid: usize,
    },
    /// A member passed an explicit cancellation point.
    CancellationPoint {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
    },
    /// A member registered at a wait site and is about to block.
    WaitRegister {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// The wait site it is about to block at.
        site: WaitSite,
    },
    /// A member published one or more operations toward a replicated
    /// structure ([`nr`](crate::nr)): either a direct log append or a
    /// flat-combining slot publication that a combiner will append on its
    /// behalf. The release half of the publish→sync happens-before edge.
    NrAppend {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Identity of the replicated structure (monotonic, never
        /// address-derived — see [`CriticalAcquire`](Self::CriticalAcquire)).
        nr: usize,
        /// First appended log position (inclusive).
        lo: u64,
        /// Last appended log position (exclusive). A slot publication
        /// whose log position is not yet known uses `hi == lo`.
        hi: u64,
    },
    /// A member became the combiner for one replica and is about to apply
    /// log entries `[lo, hi)` to the local copy. The acquire half: the
    /// combiner observes every append up to `hi` plus everything earlier
    /// combiners published into this replica.
    NrCombine {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Identity of the replicated structure.
        nr: usize,
        /// Replica index the batch is applied to.
        replica: usize,
        /// First applied log position (inclusive).
        lo: u64,
        /// End of the applied range (exclusive).
        hi: u64,
    },
    /// A member synchronised with a replica: a combiner publishing its
    /// applied batch, a reader that observed the replica at the log tail,
    /// or a writer that observed its operation's response. Orders the
    /// member after every combine previously published into the replica.
    NrSync {
        /// Team identity.
        team: TeamId,
        /// Member id within the team.
        tid: usize,
        /// Identity of the replicated structure.
        nr: usize,
        /// Replica index synchronised with.
        replica: usize,
        /// Log position (exclusive) the replica had applied up to.
        upto: u64,
    },
}

impl HookEvent {
    /// The team this event belongs to.
    pub fn team(&self) -> TeamId {
        match *self {
            HookEvent::RegionStart { team, .. }
            | HookEvent::RegionEnd { team }
            | HookEvent::MemberStart { team, .. }
            | HookEvent::MemberEnd { team, .. }
            | HookEvent::BarrierExit { team, .. }
            | HookEvent::CriticalAcquire { team, .. }
            | HookEvent::CriticalRelease { team, .. }
            | HookEvent::ChunkHandout { team, .. }
            | HookEvent::BroadcastPublish { team, .. }
            | HookEvent::BroadcastReceive { team, .. }
            | HookEvent::OrderedEnter { team, .. }
            | HookEvent::OrderedExit { team, .. }
            | HookEvent::TaskSpawn { team, .. }
            | HookEvent::TaskJoin { team, .. }
            | HookEvent::TaskDepRelease { team, .. }
            | HookEvent::TaskDepReady { team, .. }
            | HookEvent::CancelRequested { team, .. }
            | HookEvent::CancellationPoint { team, .. }
            | HookEvent::WaitRegister { team, .. }
            | HookEvent::NrAppend { team, .. }
            | HookEvent::NrCombine { team, .. }
            | HookEvent::NrSync { team, .. } => team,
        }
    }

    /// The member id this event belongs to, if it is member-scoped
    /// (`RegionStart`/`RegionEnd` are region-scoped and return `None`).
    pub fn tid(&self) -> Option<usize> {
        match *self {
            HookEvent::RegionStart { .. } | HookEvent::RegionEnd { .. } => None,
            HookEvent::MemberStart { tid, .. }
            | HookEvent::MemberEnd { tid, .. }
            | HookEvent::BarrierExit { tid, .. }
            | HookEvent::CriticalAcquire { tid, .. }
            | HookEvent::CriticalRelease { tid, .. }
            | HookEvent::ChunkHandout { tid, .. }
            | HookEvent::BroadcastPublish { tid, .. }
            | HookEvent::BroadcastReceive { tid, .. }
            | HookEvent::OrderedEnter { tid, .. }
            | HookEvent::OrderedExit { tid, .. }
            | HookEvent::TaskSpawn { tid, .. }
            | HookEvent::TaskJoin { tid, .. }
            | HookEvent::TaskDepRelease { tid, .. }
            | HookEvent::TaskDepReady { tid, .. }
            | HookEvent::CancelRequested { tid, .. }
            | HookEvent::CancellationPoint { tid, .. }
            | HookEvent::WaitRegister { tid, .. }
            | HookEvent::NrAppend { tid, .. }
            | HookEvent::NrCombine { tid, .. }
            | HookEvent::NrSync { tid, .. } => Some(tid),
        }
    }
}

/// A scheduler hook: receives every runtime decision site while
/// registered. See the module docs for the locking/panic contract.
pub trait SchedHook: Send + Sync {
    /// A decision site was reached. May block the calling thread; must
    /// not panic (events are also emitted during unwinds).
    fn event(&self, ev: &HookEvent);

    /// A member found its wake condition unmet and is about to park.
    /// Return `true` to take over the park (the caller re-checks its
    /// condition immediately); `false` to fall back to the bounded park.
    fn blocked(&self, team: TeamId, tid: usize, site: WaitSite) -> bool {
        let _ = (team, tid, site);
        false
    }
}

/// The registered hook. Only read on the cold path, and the reference is
/// copied out before the hook is called so emitters never hold this lock
/// while a hook blocks them. The fast-path gate is the shared
/// [`obs`] gate byte: one relaxed load covers "hook registered?",
/// "metrics on?" and "trace running?" together.
static HOOK: Mutex<Option<&'static dyn SchedHook>> = Mutex::new(None);

/// Register `hook` process-wide. Replaces any previous hook. Test-only
/// by intent: the hook observes every team in the process.
pub fn register(hook: &'static dyn SchedHook) {
    *HOOK.lock() = Some(hook);
    obs::gate_set(obs::F_HOOK);
}

/// Unregister the current hook, restoring the zero-cost fast path.
pub fn unregister() {
    obs::gate_clear(obs::F_HOOK);
    *HOOK.lock() = None;
}

/// Whether a hook is registered (the one-branch fast path).
#[inline(always)]
pub fn active() -> bool {
    obs::gate() & obs::F_HOOK != 0
}

/// Whether *any* event consumer is on — a registered hook, the metrics
/// registry ([`obs::set_metrics`]/`AOMP_METRICS`), or the trace recorder.
/// When this is `false`, event emission does not even build the event.
#[inline(always)]
pub fn instrumented() -> bool {
    obs::gate() & obs::F_EVENTS != 0
}

#[cold]
fn current() -> Option<&'static dyn SchedHook> {
    *HOOK.lock()
}

/// Emit an event if anything is listening (hook, metrics or trace). The
/// closure only runs on the cold path, so building the event costs one
/// relaxed load when nothing is.
#[inline]
pub(crate) fn emit(f: impl FnOnce() -> HookEvent) {
    let g = obs::gate();
    if g & obs::F_EVENTS != 0 {
        emit_slow(g, f());
    }
}

/// [`emit`] for call sites that already loaded the gate byte `g` (wait
/// registration loads it once for the event *and* the wait timer).
#[inline]
pub(crate) fn emit_gated(g: u8, f: impl FnOnce() -> HookEvent) {
    if g & obs::F_EVENTS != 0 {
        emit_slow(g, f());
    }
}

#[cold]
fn emit_slow(g: u8, ev: HookEvent) {
    // Metrics/trace first: they never block, while a hook may park the
    // thread for an arbitrary slice of the schedule exploration.
    obs::record_event(g, &ev);
    if g & obs::F_HOOK != 0 {
        if let Some(h) = current() {
            h.event(&ev);
        }
    }
}

/// Emit an event carrying the calling thread's innermost team identity,
/// if anything is listening *and* the caller is inside a team.
#[inline]
pub(crate) fn emit_team(f: impl FnOnce(TeamId, usize) -> HookEvent) {
    let g = obs::gate();
    if g & obs::F_EVENTS != 0 {
        crate::ctx::with_current(|c| {
            if let Some(c) = c {
                emit_slow(g, f(c.shared.token(), c.tid));
            }
        });
    }
}

/// Offer the park of a blocked member to the hook. Returns `true` when
/// the hook took over (caller re-checks its condition immediately).
#[inline]
pub(crate) fn yield_blocked(team: TeamId, tid: usize, site: WaitSite) -> bool {
    if !active() {
        return false;
    }
    match current() {
        Some(h) => h.blocked(team, tid, site),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingHook {
        events: AtomicUsize,
    }

    impl SchedHook for CountingHook {
        fn event(&self, _ev: &HookEvent) {
            self.events.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn inactive_hook_emits_nothing() {
        // With no consumer on (hook, metrics or trace — other tests in
        // this binary may flip those concurrently, hence the guard),
        // emit must not even build the event.
        let built = AtomicUsize::new(0);
        if !instrumented() {
            emit(|| {
                built.fetch_add(1, Ordering::SeqCst);
                HookEvent::RegionEnd { team: 0 }
            });
            assert_eq!(built.load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn event_accessors_cover_all_variants() {
        let ev = HookEvent::BarrierExit {
            team: 7,
            tid: 2,
            leader: true,
        };
        assert_eq!(ev.team(), 7);
        assert_eq!(ev.tid(), Some(2));
        let ev = HookEvent::RegionStart {
            team: 9,
            size: 4,
            level: 1,
        };
        assert_eq!(ev.team(), 9);
        assert_eq!(ev.tid(), None);
    }

    #[test]
    fn blocked_default_is_fallthrough() {
        static H: CountingHook = CountingHook {
            events: AtomicUsize::new(0),
        };
        assert!(!H.blocked(1, 0, WaitSite::Barrier));
    }
}
